//! SPMD cycle detection — the back-path algorithm (§4, and the authors'
//! LCPC'94 SPMD reduction, reference 11).
//!
//! A delay `(u, v)` is required for a program edge `u ≤_P v` iff the graph
//! `P ∪ C` contains a *back-path* from `v` to `u` whose interior lies on
//! other processors. Because the program is SPMD, two copies of the program
//! suffice: a violation cycle spanning any number of processors folds onto
//!
//! * the **home copy** holding only `u` and `v`, and
//! * the **mirror copy** holding the remote accesses, connected internally
//!   by program-order edges (`P`, the remote processor executes the same
//!   code) and by conflict edges (`C`, for cycles through ≥ 3 processors).
//!
//! So `(u, v)` is a delay iff there exist accesses `x`, `y` with directed
//! conflict edges `v → x` and `y → u` such that `x = y` or `y'` is
//! reachable from `x'` inside the mirror copy.
//!
//! We check for *any* back-path rather than Shasha & Snir's *simple* paths
//! (testing simple paths is NP-hard in general). This yields a sufficient,
//! possibly slightly larger delay set — the standard practical compromise,
//! and exact for the two-processor patterns the paper's figures exercise.
//!
//! # Throughput (see docs/PERFORMANCE.md)
//!
//! The oracle is built for scaled inputs (unrolled kernels, large machine
//! sizes):
//!
//! * mirror-copy reachability is a Tarjan SCC condensation plus a
//!   word-parallel row-OR closure in reverse topological order
//!   ([`syncopt_ir::order::reachability_counted`]), not per-start BFS;
//! * candidate pairs with no conflict fan-out at `v` or fan-in at `u` are
//!   pruned before touching the oracle — a back-path must leave `v` and
//!   re-enter `u` through conflict edges, so such pairs can never be
//!   delays regardless of removals (removals only shrink the graph);
//! * `has_back_path` works on bitsets held in a reusable
//!   [`BackPathScratch`]: conflict successor/predecessor rows intersected
//!   word-parallel against the removal set, with a blocked-node BFS kept
//!   only as the fallback for queries whose removal set actually cuts the
//!   cached reachability;
//! * the candidate loop shards deterministically over row ranges and runs
//!   on `std::thread::scope` threads when [`DelayOptions::threads`] > 1.

use crate::conflict::ConflictSet;
use crate::delay::DelaySet;
use syncopt_ir::access::AccessKind;
use syncopt_ir::cfg::Cfg;
use syncopt_ir::ids::AccessId;
use syncopt_ir::order::{reachability_counted, BitMatrix, BitSet, ProgramOrder};

/// Options controlling one delay-set computation.
#[derive(Default)]
pub struct DelayOptions<'a> {
    /// Restrict candidates to pairs where at least one side is a
    /// synchronization access (used to compute `D1` in §5.1 step 2).
    pub only_sync_pairs: bool,
    /// Per-candidate node removal: given the candidate `(u, v)`, marks
    /// access sites that cannot appear on a back-path and must be excluded
    /// from the mirror copy (§5.1 step 6 refinement, §5.3 lock rule) in
    /// the provided scratch bitset (cleared before each call).
    #[allow(clippy::type_complexity)]
    pub removals: Option<Box<dyn Fn(AccessId, AccessId, &mut BitSet) + Sync + 'a>>,
    /// Worker threads for the candidate loop (0 and 1 both mean serial).
    /// Results are bit-identical for every thread count: shards cover
    /// disjoint `u`-ranges and merge in fixed order.
    pub threads: usize,
}

/// The mirror-copy graph plus cached reachability and conflict fan-in/out
/// bitsets.
pub struct BackPathOracle<'a> {
    conflicts: &'a ConflictSet,
    n: usize,
    /// Adjacency inside the mirror copy: program-order ∪ conflict edges
    /// (used only by the blocked-node BFS fallback).
    mirror_adj: Vec<Vec<usize>>,
    /// Cached reachability over the full mirror copy (no removals):
    /// `reach.get(x, y)` iff `y'` reachable from `x'` via ≥ 1 edge.
    reach: BitMatrix,
    /// Row `a` = directed conflict predecessors of `a` (transpose of the
    /// conflict relation; successors come straight from `conflicts`).
    conf_pred: BitMatrix,
    /// Accesses with ≥ 1 directed conflict successor / predecessor — the
    /// candidate-pruning oracle.
    has_succ: BitSet,
    has_pred: BitSet,
    /// Work done while building (SCCs found, closure words ORed).
    build_stats: syncopt_ir::order::ReachStats,
}

/// Reusable per-worker scratch for [`BackPathOracle::query`] — all
/// allocations happen once, none in the per-candidate hot loop.
pub struct BackPathScratch {
    /// The removal set for the next query; cleared and refilled by the
    /// driver before each call.
    pub removed: BitSet,
    starts: BitSet,
    ends: BitSet,
    seen: BitSet,
    queue: Vec<usize>,
    /// Queries that fell back to the blocked-node BFS (removals cut the
    /// cached reachability).
    pub bfs_fallbacks: u64,
}

impl<'a> BackPathOracle<'a> {
    /// Builds the oracle for the current (possibly partially oriented)
    /// conflict set.
    pub fn new(cfg: &'a Cfg, conflicts: &'a ConflictSet, po: &'a ProgramOrder) -> Self {
        let n = cfg.accesses.len();
        let mut mirror_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (x, adj) in mirror_adj.iter_mut().enumerate() {
            let xa = AccessId::from_index(x);
            for y in 0..n {
                let ya = AccessId::from_index(y);
                let p_edge = x != y && po.access_precedes(cfg, xa, ya);
                let c_edge = conflicts.edge(xa, ya);
                if p_edge || c_edge {
                    adj.push(y);
                }
            }
        }
        // The adjacency feeds reachability directly — no parallel edge
        // list is materialized.
        let (reach, build_stats) = reachability_counted(&mirror_adj);
        let mut conf_pred = BitMatrix::new(n);
        let mut has_succ = BitSet::new(n);
        let mut has_pred = BitSet::new(n);
        for a in 0..n {
            let row = conflicts.succ_row_words(AccessId::from_index(a));
            if row.iter().any(|&w| w != 0) {
                has_succ.insert(a);
            }
            let mut tmp = BitSet::new(n);
            tmp.union_words(row);
            for b in tmp.iter_ones() {
                conf_pred.set(b, a);
                has_pred.insert(b);
            }
        }
        BackPathOracle {
            conflicts,
            n,
            mirror_adj,
            reach,
            conf_pred,
            has_succ,
            has_pred,
            build_stats,
        }
    }

    /// A scratch sized for this oracle; one per worker thread.
    pub fn scratch(&self) -> BackPathScratch {
        BackPathScratch {
            removed: BitSet::new(self.n),
            starts: BitSet::new(self.n),
            ends: BitSet::new(self.n),
            seen: BitSet::new(self.n),
            queue: Vec::new(),
            bfs_fallbacks: 0,
        }
    }

    /// Whether `v` has at least one directed conflict successor (a
    /// back-path's first hop).
    pub fn has_conflict_succ(&self, v: AccessId) -> bool {
        self.has_succ.contains(v.index())
    }

    /// Whether `u` has at least one directed conflict predecessor (a
    /// back-path's last hop).
    pub fn has_conflict_pred(&self, u: AccessId) -> bool {
        self.has_pred.contains(u.index())
    }

    /// Work counters from building the mirror-copy closure.
    pub fn build_stats(&self) -> syncopt_ir::order::ReachStats {
        self.build_stats
    }

    /// Whether a back-path from `v` to `u` exists, excluding the accesses
    /// in `scratch.removed` from the mirror copy.
    pub fn query(&self, u: AccessId, v: AccessId, scratch: &mut BackPathScratch) -> bool {
        // starts = conflict succs of v, minus removed.
        scratch
            .starts
            .assign_and_not(self.conflicts.succ_row_words(v), &scratch.removed);
        if scratch.starts.is_empty() {
            return false;
        }
        // ends = conflict preds of u, minus removed.
        scratch
            .ends
            .assign_and_not(self.conf_pred.row_words(u.index()), &scratch.removed);
        if scratch.ends.is_empty() {
            return false;
        }
        // Direct two-conflict-edge path through a single remote access.
        if scratch.starts.intersects(&scratch.ends) {
            return true;
        }
        // Word-parallel reachability: ∃ x ∈ starts with reach(x) ∩ ends.
        let reachable = scratch
            .starts
            .iter_ones()
            .any(|x| scratch.ends.intersects_words(self.reach.row_words(x)));
        if scratch.removed.is_empty() || !reachable {
            // No removals: the cached closure is exact. With removals, a
            // path absent from the *unrestricted* graph cannot appear in
            // the restricted one.
            return reachable;
        }
        // Removals might cut every cached path: BFS avoiding removed
        // nodes.
        scratch.bfs_fallbacks += 1;
        scratch.seen.clear();
        scratch.queue.clear();
        for x in scratch.starts.iter_ones() {
            scratch.seen.insert(x);
            scratch.queue.push(x);
        }
        let mut qi = 0;
        while qi < scratch.queue.len() {
            let node = scratch.queue[qi];
            qi += 1;
            if scratch.ends.contains(node) {
                return true;
            }
            for &next in &self.mirror_adj[node] {
                if !scratch.seen.contains(next) && !scratch.removed.contains(next) {
                    scratch.seen.insert(next);
                    scratch.queue.push(next);
                }
            }
        }
        false
    }

    /// Convenience wrapper over [`BackPathOracle::query`] with a removal
    /// slice (tests and one-off callers; the driver uses the scratch form).
    pub fn has_back_path(&self, u: AccessId, v: AccessId, removed: &[AccessId]) -> bool {
        let mut scratch = self.scratch();
        for r in removed {
            scratch.removed.insert(r.index());
        }
        self.query(u, v, &mut scratch)
    }

    /// One concrete back-path from `v` to `u` avoiding `removed`: the
    /// interior (mirror-copy) access chain `[x, …, y]` with conflict edges
    /// `v → x` and `y → u`, or `None` when no back-path exists.
    ///
    /// The chain is a shortest path and deterministic — BFS visits nodes
    /// in ascending id order — so it can serve as a pinned, replayable
    /// provenance witness (`syncoptc explain`).
    pub fn witness(&self, u: AccessId, v: AccessId, removed: &[AccessId]) -> Option<Vec<AccessId>> {
        let mut blocked = vec![false; self.n];
        for r in removed {
            blocked[r.index()] = true;
        }
        let is_end = |x: usize| self.conf_pred.get(u.index(), x);
        let mut parent: Vec<usize> = vec![usize::MAX; self.n];
        let mut seen = vec![false; self.n];
        let mut queue: Vec<usize> = Vec::new();
        let mut succ_of_v = BitSet::new(self.n);
        succ_of_v.union_words(self.conflicts.succ_row_words(v));
        for x in succ_of_v.iter_ones() {
            if !blocked[x] {
                seen[x] = true;
                queue.push(x);
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let node = queue[qi];
            qi += 1;
            if is_end(node) {
                let mut chain = vec![AccessId::from_index(node)];
                let mut cur = node;
                while parent[cur] != usize::MAX {
                    cur = parent[cur];
                    chain.push(AccessId::from_index(cur));
                }
                chain.reverse();
                return Some(chain);
            }
            for &next in &self.mirror_adj[node] {
                if !seen[next] && !blocked[next] {
                    seen[next] = true;
                    parent[next] = node;
                    queue.push(next);
                }
            }
        }
        None
    }
}

/// What one [`compute_delay_set_counted`] run did — the raw material of
/// the pipeline observability report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DelayQueryStats {
    /// Ordered program pairs considered as delay candidates.
    pub candidates: u64,
    /// Candidates skipped by the `only_sync_pairs` restriction.
    pub sync_skipped: u64,
    /// Candidates pruned because `v` has no conflict successor or `u` has
    /// no conflict predecessor (no possible back-path; the oracle is
    /// never consulted).
    pub pruned_candidates: u64,
    /// Back-path oracle queries issued.
    pub backpath_queries: u64,
    /// Queries that fell back to the blocked-node BFS.
    pub bfs_fallbacks: u64,
    /// Mirror-copy nodes excluded across all removal callbacks (§5.1
    /// step 6 / §5.3 lock rule).
    pub removed_nodes: u64,
    /// Queries that found a back-path (delay edges kept).
    pub delays_found: u64,
    /// Oracles built (mirror-copy closures computed).
    pub oracle_builds: u64,
    /// SCCs found while condensing the mirror copy.
    pub sccs: u64,
    /// `u64` words ORed during the mirror-copy closure.
    pub closure_word_ors: u64,
}

impl DelayQueryStats {
    /// Sums `other` into `self` (shard merge; all fields are additive).
    pub fn accumulate(&mut self, other: &DelayQueryStats) {
        self.candidates += other.candidates;
        self.sync_skipped += other.sync_skipped;
        self.pruned_candidates += other.pruned_candidates;
        self.backpath_queries += other.backpath_queries;
        self.bfs_fallbacks += other.bfs_fallbacks;
        self.removed_nodes += other.removed_nodes;
        self.delays_found += other.delays_found;
        self.oracle_builds += other.oracle_builds;
        self.sccs += other.sccs;
        self.closure_word_ors += other.closure_word_ors;
    }
}

/// Computes a delay set by back-path detection over `P ∪ C`.
///
/// With default options and a freshly built (symmetric) conflict set this is
/// the Shasha–Snir set `D_SS`; §5 calls it with oriented conflicts, the
/// sync-pair restriction, and removal callbacks.
pub fn compute_delay_set(
    cfg: &Cfg,
    conflicts: &ConflictSet,
    po: &ProgramOrder,
    opts: &DelayOptions<'_>,
) -> DelaySet {
    compute_delay_set_counted(cfg, conflicts, po, opts).0
}

/// [`compute_delay_set`], additionally reporting how much work the
/// back-path search performed.
///
/// With `opts.threads > 1` the candidate rows are split into contiguous
/// shards processed by scoped worker threads; shard results merge in fixed
/// shard order, so the delay set and every counter are bit-identical to a
/// serial run.
pub fn compute_delay_set_counted(
    cfg: &Cfg,
    conflicts: &ConflictSet,
    po: &ProgramOrder,
    opts: &DelayOptions<'_>,
) -> (DelaySet, DelayQueryStats) {
    let n = cfg.accesses.len();
    let oracle = BackPathOracle::new(cfg, conflicts, po);
    let is_sync: Vec<bool> = cfg
        .accesses
        .iter()
        .map(|(_, info)| info.kind.is_sync())
        .collect();

    // One shard: candidate rows `u ∈ range`, its own scratch and outputs.
    let run_shard = |lo: usize, hi: usize| -> (DelaySet, DelayQueryStats) {
        let mut scratch = oracle.scratch();
        let mut out = DelaySet::new(n);
        let mut stats = DelayQueryStats::default();
        for ui in lo..hi {
            let u = AccessId::from_index(ui);
            let u_has_pred = oracle.has_conflict_pred(u);
            for vi in 0..n {
                let v = AccessId::from_index(vi);
                if !po.access_precedes(cfg, u, v) {
                    continue;
                }
                stats.candidates += 1;
                if opts.only_sync_pairs && !is_sync[ui] && !is_sync[vi] {
                    stats.sync_skipped += 1;
                    continue;
                }
                // Pruning: every back-path leaves v and re-enters u over
                // conflict edges; removals only shrink those sets, so a
                // pair failing here can never be a delay.
                if !u_has_pred || !oracle.has_conflict_succ(v) {
                    stats.pruned_candidates += 1;
                    continue;
                }
                scratch.removed.clear();
                if let Some(f) = &opts.removals {
                    f(u, v, &mut scratch.removed);
                }
                stats.removed_nodes += scratch.removed.count_ones() as u64;
                stats.backpath_queries += 1;
                if oracle.query(u, v, &mut scratch) {
                    stats.delays_found += 1;
                    out.insert(u, v);
                }
            }
        }
        stats.bfs_fallbacks = scratch.bfs_fallbacks;
        (out, stats)
    };

    let threads = opts.threads.clamp(1, n.max(1));
    let (out, mut stats) = if threads <= 1 {
        run_shard(0, n)
    } else {
        let chunk = n.div_ceil(threads);
        let shards = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    let run = &run_shard;
                    s.spawn(move || run(lo, hi))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("delay-set shard panicked"))
                .collect::<Vec<_>>()
        });
        // Merge in fixed shard order: shards cover disjoint u-rows, so
        // the union is identical for any thread count.
        let mut out = DelaySet::new(n);
        let mut stats = DelayQueryStats::default();
        for (shard_out, shard_stats) in &shards {
            out.union_with(shard_out);
            stats.accumulate(shard_stats);
        }
        (out, stats)
    };
    stats.oracle_builds += 1;
    stats.sccs += oracle.build_stats().sccs;
    stats.closure_word_ors += oracle.build_stats().closure_word_ors;
    (out, stats)
}

/// The Shasha–Snir delay set: all-pairs back-path detection on the
/// unoriented conflict set.
pub fn shasha_snir(cfg: &Cfg) -> DelaySet {
    shasha_snir_bounded(cfg, None)
}

/// [`shasha_snir`] with a known processor count (modular subscript
/// disambiguation).
pub fn shasha_snir_bounded(cfg: &Cfg, procs: Option<u32>) -> DelaySet {
    let conflicts = ConflictSet::build_bounded(cfg, procs);
    let po = ProgramOrder::compute(cfg);
    compute_delay_set(cfg, &conflicts, &po, &DelayOptions::default())
}

/// Convenience predicate: is access `a` a data access (read/write)?
pub fn is_data_access(cfg: &Cfg, a: AccessId) -> bool {
    matches!(
        cfg.accesses.info(a).kind,
        AccessKind::Read | AccessKind::Write
    )
}

/// The naive reference oracle — a direct transcription of the original
/// per-query BFS implementation, retained for differential testing only.
#[cfg(test)]
pub(crate) mod naive {
    use super::*;

    /// Naive options: same knobs, `Vec`-based removals.
    #[derive(Default)]
    pub struct NaiveOptions<'a> {
        pub only_sync_pairs: bool,
        #[allow(clippy::type_complexity)]
        pub removals: Option<Box<dyn Fn(AccessId, AccessId) -> Vec<AccessId> + 'a>>,
    }

    /// Per-query BFS over the mirror copy, `Vec::contains` scans and all.
    fn has_back_path_naive(
        cfg: &Cfg,
        conflicts: &ConflictSet,
        mirror_adj: &[Vec<usize>],
        u: AccessId,
        v: AccessId,
        removed: &[AccessId],
    ) -> bool {
        let starts: Vec<AccessId> = conflicts
            .succs(v)
            .into_iter()
            .filter(|x| !removed.contains(x))
            .collect();
        if starts.is_empty() {
            return false;
        }
        let ends: Vec<AccessId> = conflicts
            .preds(u)
            .into_iter()
            .filter(|y| !removed.contains(y))
            .collect();
        if ends.is_empty() {
            return false;
        }
        for &x in &starts {
            if ends.contains(&x) {
                return true;
            }
        }
        let n = cfg.accesses.len();
        let mut blocked = vec![false; n];
        for r in removed {
            blocked[r.index()] = true;
        }
        let mut seen = vec![false; n];
        let mut queue: Vec<usize> = Vec::new();
        for x in &starts {
            seen[x.index()] = true;
            queue.push(x.index());
        }
        let mut qi = 0;
        while qi < queue.len() {
            let node = queue[qi];
            qi += 1;
            if ends.iter().any(|y| y.index() == node) {
                return true;
            }
            for &next in &mirror_adj[node] {
                if !seen[next] && !blocked[next] {
                    seen[next] = true;
                    queue.push(next);
                }
            }
        }
        false
    }

    /// The original all-pairs driver: no pruning, no caching, no threads.
    pub fn compute_delay_set_naive(
        cfg: &Cfg,
        conflicts: &ConflictSet,
        po: &ProgramOrder,
        opts: &NaiveOptions<'_>,
    ) -> DelaySet {
        let n = cfg.accesses.len();
        let mut mirror_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (x, adj) in mirror_adj.iter_mut().enumerate() {
            let xa = AccessId::from_index(x);
            for y in 0..n {
                let ya = AccessId::from_index(y);
                let p_edge = x != y && po.access_precedes(cfg, xa, ya);
                let c_edge = conflicts.edge(xa, ya);
                if p_edge || c_edge {
                    adj.push(y);
                }
            }
        }
        let mut out = DelaySet::new(n);
        let is_sync: Vec<bool> = cfg
            .accesses
            .iter()
            .map(|(_, info)| info.kind.is_sync())
            .collect();
        for u in cfg.accesses.ids() {
            for v in cfg.accesses.ids() {
                if !po.access_precedes(cfg, u, v) {
                    continue;
                }
                if opts.only_sync_pairs && !is_sync[u.index()] && !is_sync[v.index()] {
                    continue;
                }
                let removed = match &opts.removals {
                    Some(f) => f(u, v),
                    None => Vec::new(),
                };
                if has_back_path_naive(cfg, conflicts, &mirror_adj, u, v, &removed) {
                    out.insert(u, v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    fn delays(src: &str) -> (Cfg, DelaySet) {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let d = shasha_snir(&cfg);
        (cfg, d)
    }

    /// Finds the n-th access id (in program order of the table).
    fn a(cfg: &Cfg, i: usize) -> AccessId {
        cfg.accesses.ids().nth(i).unwrap()
    }

    #[test]
    fn figure1_flag_idiom_requires_both_delays() {
        // Figure 1: the figure-eight. Producer writes Data then Flag;
        // consumer reads Flag then Data. Both program edges need delays.
        let (cfg, d) = delays(
            r#"
            shared int Data; shared int Flag;
            fn main() {
                int v;
                if (MYPROC == 0) { Data = 1; Flag = 1; }
                else { v = Flag; v = Data; }
            }
            "#,
        );
        // a0 = Write Data, a1 = Write Flag, a2 = Read Flag, a3 = Read Data.
        assert!(d.contains(a(&cfg, 0), a(&cfg, 1)), "write side delay");
        assert!(d.contains(a(&cfg, 2), a(&cfg, 3)), "read side delay");
    }

    #[test]
    fn figure4_no_cycle_no_delay() {
        // Figure 4: both processors touch Data and then Flag in the *same*
        // order (writer writes both, reader reads both). P ∪ C has no
        // figure-eight, so no delay constraints are required.
        let (cfg, d) = delays(
            r#"
            shared int Data; shared int Flag;
            fn main() {
                int v;
                if (MYPROC == 0) { Data = 1; Flag = 1; }
                else { v = Data; v = Flag; }
            }
            "#,
        );
        assert_eq!(cfg.accesses.len(), 4);
        assert!(d.is_empty(), "unexpected delays: {:?}", d.pairs());
    }

    #[test]
    fn independent_variables_need_no_delay() {
        // Each processor works on its own array slot: no conflicts at all.
        let (cfg, d) = delays("shared int A[64]; fn main() { A[MYPROC] = 1; A[MYPROC] = 2; }");
        assert!(d.is_empty(), "unexpected delays: {:?}", d.pairs());
        assert_eq!(cfg.accesses.len(), 2);
    }

    #[test]
    fn racy_accumulate_requires_delays() {
        // Two unsynchronized writes to the same scalar from all processors,
        // interleaved with reads — classic cycle.
        let (_cfg, d) =
            delays("shared int X; shared int Y; fn main() { int v; X = 1; v = Y; Y = 2; }");
        assert!(!d.is_empty());
    }

    #[test]
    fn three_processor_cycle_detected() {
        // A cycle that needs ≥3 processors: proc 0 writes X reads Y, proc 1
        // writes Y reads Z, proc 2 writes Z reads X. As SPMD all branches
        // exist; the mirror-copy C edges make the multi-hop path visible.
        let (cfg, d) = delays(
            r#"
            shared int X; shared int Y; shared int Z;
            fn main() {
                int v;
                if (MYPROC == 0) { X = 1; v = Y; }
                else if (MYPROC == 1) { Y = 1; v = Z; }
                else { Z = 1; v = X; }
            }
            "#,
        );
        // The write-X-then-read-Y edge needs a delay: back-path
        // v=readY →C writeY' →P readZ' →C writeZ'' →P readX'' →C writeX=u.
        let wx = cfg
            .accesses
            .iter()
            .find(|(_, i)| i.kind == AccessKind::Write && cfg.vars.info(i.var.unwrap()).name == "X")
            .unwrap()
            .0;
        let ry = cfg
            .accesses
            .iter()
            .find(|(_, i)| i.kind == AccessKind::Read && cfg.vars.info(i.var.unwrap()).name == "Y")
            .unwrap()
            .0;
        assert!(d.contains(wx, ry));
    }

    #[test]
    fn loop_carried_self_delay() {
        // A read and write of the same scalar inside a loop: successive
        // iterations are ordered both ways, and both delay directions hold.
        let (cfg, d) = delays(
            r#"
            shared int X;
            fn main() {
                int i; int v;
                for (i = 0; i < 4; i = i + 1) { v = X; X = v + 1; }
            }
            "#,
        );
        let read = cfg
            .accesses
            .iter()
            .find(|(_, i)| i.kind == AccessKind::Read)
            .unwrap()
            .0;
        let write = cfg
            .accesses
            .iter()
            .find(|(_, i)| i.kind == AccessKind::Write)
            .unwrap()
            .0;
        assert!(d.contains(read, write));
        assert!(d.contains(write, read), "loop-carried direction");
    }

    #[test]
    fn sync_pair_restriction_filters_data_pairs() {
        let src = r#"
            shared int Data; shared int Flag; flag f;
            fn main() {
                int v;
                if (MYPROC == 0) { Data = 1; post f; Flag = 1; }
                else { v = Flag; wait f; v = Data; }
            }
        "#;
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let conflicts = ConflictSet::build(&cfg);
        let po = ProgramOrder::compute(&cfg);
        let d1 = compute_delay_set(
            &cfg,
            &conflicts,
            &po,
            &DelayOptions {
                only_sync_pairs: true,
                ..DelayOptions::default()
            },
        );
        let is_sync = |x: AccessId| cfg.accesses.info(x).kind.is_sync();
        assert!(!d1.is_empty());
        for (u, v) in d1.pairs() {
            assert!(is_sync(u) || is_sync(v), "non-sync pair ({u}, {v}) in D1");
        }
    }

    #[test]
    fn removals_can_break_back_paths() {
        let src = r#"
            shared int Data; shared int Flag;
            fn main() {
                int v;
                if (MYPROC == 0) { Data = 1; Flag = 1; }
                else { v = Flag; v = Data; }
            }
        "#;
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let conflicts = ConflictSet::build(&cfg);
        let po = ProgramOrder::compute(&cfg);
        // Removing the consumer-side reads destroys every back-path for the
        // producer edge (Write Data, Write Flag).
        let all: Vec<AccessId> = cfg.accesses.ids().collect();
        let reads: Vec<AccessId> = all
            .iter()
            .copied()
            .filter(|&x| cfg.accesses.info(x).kind == AccessKind::Read)
            .collect();
        let d = compute_delay_set(
            &cfg,
            &conflicts,
            &po,
            &DelayOptions {
                only_sync_pairs: false,
                removals: Some(Box::new(move |_u, _v, out| {
                    for r in &reads {
                        out.insert(r.index());
                    }
                })),
                threads: 0,
            },
        );
        let writes: Vec<AccessId> = all
            .iter()
            .copied()
            .filter(|&x| cfg.accesses.info(x).kind == AccessKind::Write)
            .collect();
        assert!(!d.contains(writes[0], writes[1]));
    }

    #[test]
    fn pruning_skips_conflict_free_candidates_without_changing_results() {
        // Owner-computed array accesses have no conflicts; the interleaved
        // scalar pair does. Pruned candidates must not change the answer.
        let src = r#"
            shared int A[64]; shared int X;
            fn main() {
                int v;
                A[MYPROC] = 1;
                v = A[MYPROC];
                X = v;
                A[MYPROC] = 2;
                v = X;
            }
        "#;
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let conflicts = ConflictSet::build(&cfg);
        let po = ProgramOrder::compute(&cfg);
        let (d, stats) = compute_delay_set_counted(&cfg, &conflicts, &po, &DelayOptions::default());
        assert!(stats.pruned_candidates > 0, "{stats:?}");
        assert_eq!(
            stats.candidates,
            stats.pruned_candidates + stats.backpath_queries + stats.sync_skipped
        );
        let reference =
            naive::compute_delay_set_naive(&cfg, &conflicts, &po, &naive::NaiveOptions::default());
        assert_eq!(d.pairs(), reference.pairs());
    }

    #[test]
    fn threaded_driver_is_bit_deterministic() {
        let src = r#"
            shared int X; shared int Y; shared int Z; flag F;
            fn main() {
                int v;
                if (MYPROC == 0) { X = 1; Y = 2; post F; }
                else { wait F; v = Y; Z = v; v = X; v = Z; }
            }
        "#;
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let conflicts = ConflictSet::build(&cfg);
        let po = ProgramOrder::compute(&cfg);
        let (serial, serial_stats) =
            compute_delay_set_counted(&cfg, &conflicts, &po, &DelayOptions::default());
        for threads in 2..=4 {
            let (threaded, threaded_stats) = compute_delay_set_counted(
                &cfg,
                &conflicts,
                &po,
                &DelayOptions {
                    threads,
                    ..DelayOptions::default()
                },
            );
            assert_eq!(serial.pairs(), threaded.pairs(), "threads={threads}");
            assert_eq!(serial_stats, threaded_stats, "threads={threads}");
        }
    }

    #[test]
    fn oracle_stats_report_sccs_and_closure_work() {
        let src = "shared int X; fn main() { int v; X = 1; v = X; }";
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let conflicts = ConflictSet::build(&cfg);
        let po = ProgramOrder::compute(&cfg);
        let (_, stats) = compute_delay_set_counted(&cfg, &conflicts, &po, &DelayOptions::default());
        assert_eq!(stats.oracle_builds, 1);
        assert!(stats.sccs >= 1);
        assert!(stats.closure_word_ors > 0);
    }
}
