//! Differential tests: the SCC/bitset back-path oracle against the naive
//! per-query BFS reference ([`crate::cycle::naive`]), over random programs
//! and the five evaluation kernels.
//!
//! The random programs come from the shared seeded corpus in
//! [`crate::corpus`], so every run exercises the same ≥200 programs with
//! no external crates and no flakiness.

use crate::conflict::ConflictSet;
use crate::corpus::{corpus_program, CORPUS_SEEDS};
use crate::cycle::{compute_delay_set_counted, naive, DelayOptions};
use crate::sync::{analyze_sync, SyncOptions};
use syncopt_frontend::prepare_program;
use syncopt_ir::cfg::Cfg;
use syncopt_ir::ids::AccessId;
use syncopt_ir::lower::lower_main;
use syncopt_ir::order::ProgramOrder;

fn lower(src: &str) -> Cfg {
    lower_main(&prepare_program(src).unwrap_or_else(|e| panic!("generator bug: {e}\n{src}")))
        .unwrap_or_else(|e| panic!("generator bug: {e}\n{src}"))
}

/// Asserts the fast and naive drivers agree on `cfg` for plain,
/// sync-restricted, and removal-bearing computations.
fn assert_equivalent(cfg: &Cfg, label: &str) {
    let po = ProgramOrder::compute(cfg);
    let conflicts = ConflictSet::build(cfg);

    // Plain Shasha–Snir (symmetric conflicts, no removals).
    for only_sync_pairs in [false, true] {
        let (fast, _) = compute_delay_set_counted(
            cfg,
            &conflicts,
            &po,
            &DelayOptions {
                only_sync_pairs,
                ..DelayOptions::default()
            },
        );
        let slow = naive::compute_delay_set_naive(
            cfg,
            &conflicts,
            &po,
            &naive::NaiveOptions {
                only_sync_pairs,
                removals: None,
            },
        );
        assert_eq!(
            fast.pairs(),
            slow.pairs(),
            "{label}: sync_pairs={only_sync_pairs} divergence"
        );
    }

    // Oriented conflicts + the §5.1-step-6 removal rule, both drivers
    // deriving removals from the same precedence relation.
    let sa = analyze_sync(cfg, &SyncOptions::default());
    let oriented = sa.oriented.clone();
    let n = cfg.accesses.len();
    let r_fast = sa.precedence.clone();
    let r_fast_t = r_fast.transpose();
    let guards_fast = sa.guards.clone();
    let (fast, _) = compute_delay_set_counted(
        cfg,
        &oriented,
        &po,
        &DelayOptions {
            only_sync_pairs: false,
            removals: Some(Box::new(move |u, v, out| {
                out.union_words(r_fast.row_words(u));
                out.union_words(r_fast_t.row_words(v));
                guards_fast.mark_removable_for_pair(u, v, out);
                out.remove(u.index());
                out.remove(v.index());
            })),
            threads: 0,
        },
    );
    let r_slow = sa.precedence.clone();
    let guards_slow = sa.guards.clone();
    let slow = naive::compute_delay_set_naive(
        cfg,
        &oriented,
        &po,
        &naive::NaiveOptions {
            only_sync_pairs: false,
            removals: Some(Box::new(move |u, v| {
                let mut out = Vec::new();
                for idx in 0..n {
                    let w = AccessId::from_index(idx);
                    if w != u && w != v && (r_slow.contains(u, w) || r_slow.contains(w, v)) {
                        out.push(w);
                    }
                }
                for w in guards_slow.removable_for_pair(u, v) {
                    if w != u && w != v && !out.contains(&w) {
                        out.push(w);
                    }
                }
                out
            })),
        },
    );
    assert_eq!(fast.pairs(), slow.pairs(), "{label}: removal divergence");

    // Threaded runs must be byte-identical to serial.
    for threads in 2..=4 {
        let (threaded, _) = compute_delay_set_counted(
            cfg,
            &conflicts,
            &po,
            &DelayOptions {
                threads,
                ..DelayOptions::default()
            },
        );
        let (serial, _) = compute_delay_set_counted(cfg, &conflicts, &po, &DelayOptions::default());
        assert_eq!(
            serial.pairs(),
            threaded.pairs(),
            "{label}: threads={threads} divergence"
        );
    }
}

#[test]
fn random_programs_match_naive_reference() {
    for seed in 0..CORPUS_SEEDS {
        let src = corpus_program(seed);
        let cfg = lower(&src);
        assert_equivalent(&cfg, &format!("seed {seed}\n{src}"));
    }
}

#[test]
fn evaluation_kernels_match_naive_reference() {
    for kernel in syncopt_kernels::all_kernels(4) {
        let cfg = lower(&kernel.source);
        assert_equivalent(&cfg, kernel.name);
    }
}

#[test]
fn scaling_idioms_match_naive_reference() {
    use syncopt_kernels::scaling::{generate, ScalingIdiom, ScalingParams};
    for idiom in [ScalingIdiom::Stencil, ScalingIdiom::Flag] {
        let p = ScalingParams {
            idiom,
            unroll: 8,
            procs: 4,
        };
        let cfg = lower(&generate(&p).source);
        assert_equivalent(&cfg, &p.id());
    }
}
