//! Differential tests: the SCC/bitset back-path oracle against the naive
//! per-query BFS reference ([`crate::cycle::naive`]), over random programs
//! and the five evaluation kernels.
//!
//! The generator is seeded SplitMix64, so every run exercises the same
//! ≥200 programs with no external crates and no flakiness.

use crate::conflict::ConflictSet;
use crate::cycle::{compute_delay_set_counted, naive, DelayOptions};
use crate::sync::{analyze_sync, SyncOptions};
use std::fmt::Write;
use syncopt_frontend::prepare_program;
use syncopt_ir::cfg::Cfg;
use syncopt_ir::ids::AccessId;
use syncopt_ir::lower::lower_main;
use syncopt_ir::order::ProgramOrder;

/// Seeded PRNG (SplitMix64), the same generator the litmus explorer uses.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Emits one random statement (possibly a compound one) at `depth`.
fn gen_stmt(rng: &mut SplitMix64, out: &mut String, indent: usize, depth: usize) {
    let pad = "    ".repeat(indent);
    let choice = rng.below(if depth > 0 { 12 } else { 9 });
    match choice {
        0 => writeln!(out, "{pad}X = {};", rng.below(9) + 1).unwrap(),
        1 => writeln!(out, "{pad}v = X;").unwrap(),
        2 => writeln!(out, "{pad}Y = {};", rng.below(9) + 1).unwrap(),
        3 => writeln!(out, "{pad}v = Y;").unwrap(),
        4 => writeln!(out, "{pad}A[MYPROC] = {};", rng.below(9)).unwrap(),
        5 => writeln!(out, "{pad}v = A[MYPROC + 1];").unwrap(),
        6 => writeln!(out, "{pad}post F;").unwrap(),
        7 => writeln!(out, "{pad}wait F;").unwrap(),
        8 => writeln!(out, "{pad}barrier;").unwrap(),
        9 => {
            // Balanced critical section.
            writeln!(out, "{pad}lock l;").unwrap();
            for _ in 0..=rng.below(2) {
                gen_stmt(rng, out, indent, 0);
            }
            writeln!(out, "{pad}unlock l;").unwrap();
        }
        10 => {
            writeln!(out, "{pad}if (MYPROC == 0) {{").unwrap();
            for _ in 0..=rng.below(3) {
                gen_stmt(rng, out, indent + 1, depth - 1);
            }
            writeln!(out, "{pad}}} else {{").unwrap();
            for _ in 0..=rng.below(3) {
                gen_stmt(rng, out, indent + 1, depth - 1);
            }
            writeln!(out, "{pad}}}").unwrap();
        }
        _ => {
            writeln!(out, "{pad}for (i = 0; i < 2; i = i + 1) {{").unwrap();
            for _ in 0..=rng.below(2) {
                gen_stmt(rng, out, indent + 1, depth - 1);
            }
            writeln!(out, "{pad}}}").unwrap();
        }
    }
}

/// A random synchronization-heavy SPMD program for `seed`.
fn gen_program(seed: u64) -> String {
    let mut rng = SplitMix64::new(seed);
    let mut s = String::new();
    s.push_str("shared int X; shared int Y; shared int A[64];\n");
    s.push_str("flag F; lock l;\n");
    s.push_str("fn main() {\n    int v; int i;\n");
    let stmts = 3 + rng.below(8);
    for _ in 0..stmts {
        gen_stmt(&mut rng, &mut s, 1, 2);
    }
    s.push_str("}\n");
    s
}

fn lower(src: &str) -> Cfg {
    lower_main(&prepare_program(src).unwrap_or_else(|e| panic!("generator bug: {e}\n{src}")))
        .unwrap_or_else(|e| panic!("generator bug: {e}\n{src}"))
}

/// Asserts the fast and naive drivers agree on `cfg` for plain,
/// sync-restricted, and removal-bearing computations.
fn assert_equivalent(cfg: &Cfg, label: &str) {
    let po = ProgramOrder::compute(cfg);
    let conflicts = ConflictSet::build(cfg);

    // Plain Shasha–Snir (symmetric conflicts, no removals).
    for only_sync_pairs in [false, true] {
        let (fast, _) = compute_delay_set_counted(
            cfg,
            &conflicts,
            &po,
            &DelayOptions {
                only_sync_pairs,
                ..DelayOptions::default()
            },
        );
        let slow = naive::compute_delay_set_naive(
            cfg,
            &conflicts,
            &po,
            &naive::NaiveOptions {
                only_sync_pairs,
                removals: None,
            },
        );
        assert_eq!(
            fast.pairs(),
            slow.pairs(),
            "{label}: sync_pairs={only_sync_pairs} divergence"
        );
    }

    // Oriented conflicts + the §5.1-step-6 removal rule, both drivers
    // deriving removals from the same precedence relation.
    let sa = analyze_sync(cfg, &SyncOptions::default());
    let oriented = sa.oriented.clone();
    let n = cfg.accesses.len();
    let r_fast = sa.precedence.clone();
    let r_fast_t = r_fast.transpose();
    let guards_fast = sa.guards.clone();
    let (fast, _) = compute_delay_set_counted(
        cfg,
        &oriented,
        &po,
        &DelayOptions {
            only_sync_pairs: false,
            removals: Some(Box::new(move |u, v, out| {
                out.union_words(r_fast.row_words(u));
                out.union_words(r_fast_t.row_words(v));
                guards_fast.mark_removable_for_pair(u, v, out);
                out.remove(u.index());
                out.remove(v.index());
            })),
            threads: 0,
        },
    );
    let r_slow = sa.precedence.clone();
    let guards_slow = sa.guards.clone();
    let slow = naive::compute_delay_set_naive(
        cfg,
        &oriented,
        &po,
        &naive::NaiveOptions {
            only_sync_pairs: false,
            removals: Some(Box::new(move |u, v| {
                let mut out = Vec::new();
                for idx in 0..n {
                    let w = AccessId::from_index(idx);
                    if w != u && w != v && (r_slow.contains(u, w) || r_slow.contains(w, v)) {
                        out.push(w);
                    }
                }
                for w in guards_slow.removable_for_pair(u, v) {
                    if w != u && w != v && !out.contains(&w) {
                        out.push(w);
                    }
                }
                out
            })),
        },
    );
    assert_eq!(fast.pairs(), slow.pairs(), "{label}: removal divergence");

    // Threaded runs must be byte-identical to serial.
    for threads in 2..=4 {
        let (threaded, _) = compute_delay_set_counted(
            cfg,
            &conflicts,
            &po,
            &DelayOptions {
                threads,
                ..DelayOptions::default()
            },
        );
        let (serial, _) = compute_delay_set_counted(cfg, &conflicts, &po, &DelayOptions::default());
        assert_eq!(
            serial.pairs(),
            threaded.pairs(),
            "{label}: threads={threads} divergence"
        );
    }
}

#[test]
fn random_programs_match_naive_reference() {
    for seed in 0..220u64 {
        let src = gen_program(seed);
        let cfg = lower(&src);
        assert_equivalent(&cfg, &format!("seed {seed}\n{src}"));
    }
}

#[test]
fn evaluation_kernels_match_naive_reference() {
    for kernel in syncopt_kernels::all_kernels(4) {
        let cfg = lower(&kernel.source);
        assert_equivalent(&cfg, kernel.name);
    }
}

#[test]
fn scaling_idioms_match_naive_reference() {
    use syncopt_kernels::scaling::{generate, ScalingIdiom, ScalingParams};
    for idiom in [ScalingIdiom::Stencil, ScalingIdiom::Flag] {
        let p = ScalingParams {
            idiom,
            unroll: 8,
            procs: 4,
        };
        let cfg = lower(&generate(&p).source);
        assert_equivalent(&cfg, &p.id());
    }
}

#[test]
fn generator_is_deterministic() {
    assert_eq!(gen_program(42), gen_program(42));
    assert_ne!(gen_program(1), gen_program(2));
}
