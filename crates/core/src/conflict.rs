//! Conflict-set construction (the `C` of `P ∪ C`, §3–§4).
//!
//! `C` conservatively approximates the cross-processor interferences: all
//! unordered pairs of access sites `{a1, a2}` such that two *different*
//! processors could touch the same location through them, with at least one
//! side modifying it. In an SPMD program every site is executed by every
//! processor, so a site can conflict **with itself** (e.g. two processors
//! writing the same shared scalar through the same statement).
//!
//! Following Shasha & Snir, synchronization operations are modeled as
//! conflicting accesses to their synchronization object; §5 then *orients*
//! conflict edges using synchronization semantics. We therefore store the
//! conflict set as a **directed** relation: initially symmetric, with
//! directions removed as precedence information accrues (step 5 of the §5.1
//! algorithm).

use crate::affine::may_conflict_cross_proc_bounded;
use crate::guards::{access_proc_sets, indices_may_collide, ProcSet};
use syncopt_ir::access::AccessKind;
use syncopt_ir::cfg::Cfg;
use syncopt_ir::ids::AccessId;
use syncopt_ir::order::BitMatrix;

/// The (directed) conflict relation over access sites.
#[derive(Debug, Clone)]
pub struct ConflictSet {
    n: usize,
    directed: BitMatrix,
}

impl ConflictSet {
    /// Builds the conflict set for `cfg` (symmetric: both directions set).
    pub fn build(cfg: &Cfg) -> Self {
        Self::build_bounded(cfg, None)
    }

    /// [`ConflictSet::build`] with a known processor count, enabling the
    /// modular subscript disambiguation of
    /// [`crate::affine::may_conflict_cross_proc_bounded`].
    pub fn build_bounded(cfg: &Cfg, procs: Option<u32>) -> Self {
        let n = cfg.accesses.len();
        let mut directed = BitMatrix::new(n);
        let infos: Vec<_> = cfg.accesses.iter().map(|(_, info)| info).collect();
        let guards = access_proc_sets(cfg, procs);
        for i in 0..n {
            for j in i..n {
                if sites_conflict(infos[i], infos[j], &guards[i], &guards[j], procs) {
                    directed.set(i, j);
                    directed.set(j, i);
                }
            }
        }
        ConflictSet { n, directed }
    }

    /// An empty conflict set over `n` accesses (used by tests).
    pub fn empty(n: usize) -> Self {
        ConflictSet {
            n,
            directed: BitMatrix::new(n),
        }
    }

    /// Number of access sites covered.
    pub fn num_accesses(&self) -> usize {
        self.n
    }

    /// Whether the directed conflict edge `a → b` is present (meaning an
    /// execution where `a`'s instance is ordered before `b`'s instance can
    /// be part of a violation path).
    pub fn edge(&self, a: AccessId, b: AccessId) -> bool {
        self.directed.get(a.index(), b.index())
    }

    /// Whether `a` and `b` conflict in at least one direction.
    pub fn conflicts(&self, a: AccessId, b: AccessId) -> bool {
        self.edge(a, b) || self.edge(b, a)
    }

    /// Removes the directed edge `a → b` (because synchronization guarantees
    /// `b`'s instances never race ahead of `a` — step 5 of §5.1).
    pub fn remove_direction(&mut self, a: AccessId, b: AccessId) {
        self.directed.clear(a.index(), b.index());
    }

    /// The directed successors of `a` (all `b` with edge `a → b`).
    pub fn succs(&self, a: AccessId) -> Vec<AccessId> {
        (0..self.n)
            .filter(|&j| self.directed.get(a.index(), j))
            .map(AccessId::from_index)
            .collect()
    }

    /// The directed predecessors of `a` (all `b` with edge `b → a`).
    pub fn preds(&self, a: AccessId) -> Vec<AccessId> {
        (0..self.n)
            .filter(|&j| self.directed.get(j, a.index()))
            .map(AccessId::from_index)
            .collect()
    }

    /// All unordered conflicting pairs `(a, b)` with `a ≤ b`.
    pub fn unordered_pairs(&self) -> Vec<(AccessId, AccessId)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in i..self.n {
                if self.directed.get(i, j) || self.directed.get(j, i) {
                    out.push((AccessId::from_index(i), AccessId::from_index(j)));
                }
            }
        }
        out
    }

    /// Number of directed edges currently present.
    pub fn num_directed_edges(&self) -> usize {
        self.directed.count_ones()
    }

    /// The raw bitset row of `a`'s directed successors, for word-parallel
    /// consumers (the back-path oracle).
    pub fn succ_row_words(&self, a: AccessId) -> &[u64] {
        self.directed.row_words(a.index())
    }
}

/// Do two access *sites* conflict (executed by different processors)?
fn sites_conflict(
    a: &syncopt_ir::access::AccessInfo,
    b: &syncopt_ir::access::AccessInfo,
    ga: &ProcSet,
    gb: &ProcSet,
    procs: Option<u32>,
) -> bool {
    use AccessKind::*;
    match (a.kind, b.kind) {
        // Barriers are global events: every barrier site interferes with
        // every other (and itself).
        (Barrier, Barrier) => true,
        // Plain data accesses: same variable, at least one write, indices
        // may coincide on two *distinct* processors allowed by the guards.
        (Read, Read) => false,
        (Read | Write, Read | Write) => {
            a.var == b.var && a.var.is_some() && guarded_collision(a, b, ga, gb, procs)
        }
        // Event operations: a post modifies the event; two waits only
        // observe it.
        (Wait, Wait) => false,
        (Post | Wait, Post | Wait) => a.var == b.var && guarded_collision(a, b, ga, gb, procs),
        // Lock operations on the same lock all modify it (guards still
        // apply: a lock op under `MYPROC == 0` cannot race with itself).
        (LockAcq | LockRel, LockAcq | LockRel) => {
            a.var == b.var && ga.exists_distinct_pair(gb, procs)
        }
        // Mixed kinds touch different objects.
        _ => false,
    }
}

/// Guard-aware location collision test for two same-variable accesses.
fn guarded_collision(
    a: &syncopt_ir::access::AccessInfo,
    b: &syncopt_ir::access::AccessInfo,
    ga: &ProcSet,
    gb: &ProcSet,
    procs: Option<u32>,
) -> bool {
    if !ga.exists_distinct_pair(gb, procs) {
        return false;
    }
    match (&a.index, &b.index) {
        (Some(e1), Some(e2)) => indices_may_collide(e1, e2, ga, gb, procs),
        // Scalars: the guard test above is the whole story.
        (None, None) => true,
        // Shape mismatch cannot happen for same-variable accesses, but
        // stay conservative.
        _ => may_conflict_cross_proc_bounded(a.index.as_ref(), b.index.as_ref(), procs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    fn conflicts_of(src: &str) -> (Cfg, ConflictSet) {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let c = ConflictSet::build(&cfg);
        (cfg, c)
    }

    fn ids(cfg: &Cfg) -> Vec<AccessId> {
        cfg.accesses.ids().collect()
    }

    #[test]
    fn flag_example_conflicts() {
        // The paper's Figure 1 program.
        let (cfg, c) = conflicts_of(
            r#"
            shared int Data; shared int Flag;
            fn main() {
                int v;
                if (MYPROC == 0) { Data = 1; Flag = 1; }
                else { v = Flag; v = Data; }
            }
            "#,
        );
        let a = ids(&cfg);
        // a0=Write Data, a1=Write Flag, a2=Read Flag, a3=Read Data.
        assert!(c.conflicts(a[0], a[3]), "write/read Data");
        assert!(c.conflicts(a[1], a[2]), "write/read Flag");
        assert!(!c.conflicts(a[0], a[1]), "different variables");
        assert!(!c.conflicts(a[2], a[3]), "different variables");
        // The `MYPROC == 0` guard means only one processor writes: the
        // predicate refinement removes the write's self-conflict.
        assert!(!c.conflicts(a[0], a[0]));
        // Reads never self-conflict.
        assert!(!c.conflicts(a[2], a[2]));
    }

    #[test]
    fn unguarded_writes_self_conflict() {
        let (cfg, c) = conflicts_of("shared int X; fn main() { X = MYPROC; }");
        let a = ids(&cfg);
        assert!(c.conflicts(a[0], a[0]));
    }

    #[test]
    fn guards_disambiguate_same_processor_sites() {
        // Both writes only execute on processor 0: no cross-processor
        // conflict between them.
        let (cfg, c) = conflicts_of(
            r#"
            shared int X;
            fn main() {
                if (MYPROC == 0) { X = 1; }
                work(5);
                if (MYPROC == 0) { X = 2; }
            }
            "#,
        );
        let a = ids(&cfg);
        assert!(!c.conflicts(a[0], a[1]));
        // But different-guard writes do conflict.
        let (cfg2, c2) = conflicts_of(
            r#"
            shared int X;
            fn main() {
                if (MYPROC == 0) { X = 1; }
                if (MYPROC == 1) { X = 2; }
            }
            "#,
        );
        let b = ids(&cfg2);
        assert!(c2.conflicts(b[0], b[1]));
        let _ = cfg2;
    }

    #[test]
    fn owner_computes_writes_do_not_conflict() {
        let (cfg, c) = conflicts_of("shared int A[64]; fn main() { A[MYPROC] = 1; }");
        let a = ids(&cfg);
        assert!(!c.conflicts(a[0], a[0]), "A[MYPROC] is per-processor");
    }

    #[test]
    fn neighbor_read_conflicts_with_owner_write() {
        let (cfg, c) = conflicts_of(
            "shared int A[64]; fn main() { int v; A[MYPROC] = 1; v = A[MYPROC + 1]; }",
        );
        let a = ids(&cfg);
        assert!(c.conflicts(a[0], a[1]));
    }

    #[test]
    fn reads_never_conflict() {
        let (cfg, c) = conflicts_of("shared int X; fn main() { int v; v = X; v = X; }");
        let a = ids(&cfg);
        assert!(!c.conflicts(a[0], a[1]));
        assert_eq!(c.unordered_pairs().len(), 0);
    }

    #[test]
    fn sync_objects_conflict_appropriately() {
        let (cfg, c) = conflicts_of(
            r#"
            flag f; flag g; lock l;
            fn main() {
                if (MYPROC == 0) { post f; } else { wait f; wait g; }
                lock l; unlock l;
            }
            "#,
        );
        let a = ids(&cfg);
        // a0=post f, a1=wait f, a2=wait g, a3=lock, a4=unlock.
        assert!(c.conflicts(a[0], a[1]), "post/wait same flag");
        assert!(!c.conflicts(a[0], a[2]), "different flags");
        assert!(!c.conflicts(a[1], a[1]), "wait/wait no conflict");
        assert!(c.conflicts(a[3], a[4]), "lock ops on same lock");
        assert!(c.conflicts(a[3], a[3]), "acquire self-conflicts");
        assert!(!c.conflicts(a[0], a[3]), "flag vs lock");
    }

    #[test]
    fn barriers_conflict_with_each_other() {
        let (cfg, c) = conflicts_of("fn main() { barrier; barrier; }");
        let a = ids(&cfg);
        assert!(c.conflicts(a[0], a[1]));
        assert!(c.conflicts(a[0], a[0]));
    }

    #[test]
    fn data_and_sync_do_not_conflict() {
        let (cfg, c) = conflicts_of("shared int X; flag f; fn main() { X = 1; post f; barrier; }");
        let a = ids(&cfg);
        assert!(!c.conflicts(a[0], a[1]));
        assert!(!c.conflicts(a[0], a[2]));
        assert!(!c.conflicts(a[1], a[2]));
    }

    #[test]
    fn direction_removal() {
        let (cfg, mut c) = conflicts_of("shared int X; fn main() { int v; X = 1; v = X; }");
        let a = ids(&cfg);
        assert!(c.edge(a[0], a[1]) && c.edge(a[1], a[0]));
        let before = c.num_directed_edges();
        c.remove_direction(a[1], a[0]);
        assert!(c.edge(a[0], a[1]));
        assert!(!c.edge(a[1], a[0]));
        assert!(c.conflicts(a[0], a[1]), "still conflicting one-way");
        assert_eq!(c.num_directed_edges(), before - 1);
        // The write keeps its self-conflict edge (same site, two procs).
        assert_eq!(c.succs(a[0]), vec![a[0], a[1]]);
        assert!(c.succs(a[1]).is_empty());
        assert_eq!(c.preds(a[1]), vec![a[0]]);
    }

    #[test]
    fn flag_arrays_disambiguate_by_index() {
        let (cfg, c) = conflicts_of(
            r#"
            flag f[16];
            fn main() {
                post f[MYPROC];
                wait f[MYPROC];
                wait f[0];
            }
            "#,
        );
        let a = ids(&cfg);
        // post f[MYPROC] vs wait f[MYPROC] on different procs: indices differ.
        assert!(!c.conflicts(a[0], a[1]));
        // post f[MYPROC] vs wait f[0]: processor 0's post matches.
        assert!(c.conflicts(a[0], a[2]));
    }
}
