//! Post-elimination cleanup: dead local assignments and **dead
//! communication**.
//!
//! The elimination passes (§7) leave residue: a forwarded or reused get
//! becomes a local copy whose value may never be read, and lowering's
//! compiler temporaries can end up unused. Beyond tidiness, the
//! interesting case is a split `get` whose destination is dead — that is a
//! whole remote round trip with no observer, so the initiation *and* every
//! sync copy of its counter disappear (reads have no side effects, and a
//! counter with no outstanding operations makes its `sync_ctr`s no-ops).

use crate::OptStats;
use std::collections::HashSet;
use syncopt_ir::cfg::{Cfg, CtrId, Instr};
use syncopt_ir::liveness::{is_dead_assignment, Liveness};

/// Counter for removed dead instructions (reported via [`OptStats`]).
pub fn remove_dead_code(cfg: &mut Cfg, stats: &mut OptStats) {
    // Constant folding first: it exposes dead values (e.g. `v * 0`).
    stats.exprs_folded += syncopt_ir::fold::fold_cfg(cfg);
    let mut changed = true;
    while changed {
        changed = false;
        let live = Liveness::compute(cfg);

        // Pass 1: dead local assignments.
        for b in cfg.block_ids().collect::<Vec<_>>() {
            let mut idx = 0;
            while idx < cfg.block(b).instrs.len() {
                if is_dead_assignment(cfg, &live, b, idx) {
                    cfg.block_mut(b).instrs.remove(idx);
                    stats.dead_locals_removed += 1;
                    changed = true;
                } else {
                    idx += 1;
                }
            }
        }

        // Pass 2: dead gets (destination never read).
        let live = Liveness::compute(cfg);
        let mut dead_ctrs: HashSet<CtrId> = HashSet::new();
        for b in cfg.block_ids().collect::<Vec<_>>() {
            let mut idx = 0;
            while idx < cfg.block(b).instrs.len() {
                let kill = match &cfg.block(b).instrs[idx] {
                    Instr::GetInit { dst, ctr, .. } if !live.live_after(cfg, b, idx, *dst) => {
                        dead_ctrs.insert(*ctr);
                        true
                    }
                    Instr::GetShared { dst, .. } => !live.live_after(cfg, b, idx, *dst),
                    _ => false,
                };
                if kill {
                    cfg.block_mut(b).instrs.remove(idx);
                    stats.dead_gets_removed += 1;
                    changed = true;
                } else {
                    idx += 1;
                }
            }
        }
        // Drop the syncs of fully-dead counters.
        if !dead_ctrs.is_empty() {
            for b in cfg.block_ids().collect::<Vec<_>>() {
                cfg.block_mut(b)
                    .instrs
                    .retain(|i| !matches!(i, Instr::SyncCtr { ctr } if dead_ctrs.contains(ctr)));
            }
        }
    }
    cfg.recompute_access_positions();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elim::{eliminate_redundant_gets, forward_put_values};
    use crate::split::split_phase;
    use syncopt_core::analyze_for;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    fn run(src: &str) -> (Cfg, OptStats) {
        let cfg0 = lower_main(&prepare_program(src).unwrap()).unwrap();
        let analysis = analyze_for(&cfg0, 4);
        let mut cfg = cfg0.clone();
        let mut stats = OptStats::default();
        let _map = split_phase(&mut cfg, &mut stats);
        eliminate_redundant_gets(&mut cfg, &analysis.delay_sync, &analysis, &mut stats);
        forward_put_values(&mut cfg, &analysis.delay_sync, &mut stats);
        remove_dead_code(&mut cfg, &mut stats);
        (cfg, stats)
    }

    fn count(cfg: &Cfg, pred: impl Fn(&Instr) -> bool) -> usize {
        cfg.blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .filter(|i| pred(i))
            .count()
    }

    #[test]
    fn dead_local_chain_is_removed() {
        let (cfg, stats) = run("fn main() { int a; int b; a = 3; b = a + 1; work(7); }");
        assert!(stats.dead_locals_removed >= 2, "{stats:?}");
        assert_eq!(count(&cfg, |i| matches!(i, Instr::AssignLocal { .. })), 0);
    }

    #[test]
    fn unused_remote_get_disappears_entirely() {
        // The value is fetched and never used: no message should remain.
        let (cfg, stats) = run(
            "shared int A[64]; flag F; fn main() { wait F; int v; v = A[MYPROC + 1]; work(5); }",
        );
        assert_eq!(stats.dead_gets_removed, 1, "{stats:?}");
        assert_eq!(count(&cfg, |i| matches!(i, Instr::GetInit { .. })), 0);
        assert_eq!(count(&cfg, |i| matches!(i, Instr::SyncCtr { .. })), 0);
    }

    #[test]
    fn used_gets_survive() {
        let (cfg, stats) = run(
            "shared int A[64]; flag F; fn main() { wait F; int v; v = A[MYPROC + 1]; work(v); }",
        );
        assert_eq!(stats.dead_gets_removed, 0, "{stats:?}");
        assert_eq!(count(&cfg, |i| matches!(i, Instr::GetInit { .. })), 1);
        assert_eq!(count(&cfg, |i| matches!(i, Instr::SyncCtr { .. })), 1);
    }

    #[test]
    fn forwarding_residue_is_cleaned() {
        // After forwarding, the local copy feeding nothing is removed and
        // so is the copy chain behind it.
        let (cfg, stats) = run(r#"
            shared int A[64];
            fn main() {
                int v;
                A[MYPROC] = 5;
                v = A[MYPROC];
            }
            "#);
        // v = A[MYPROC] forwarded to v = 5, then removed as dead.
        assert_eq!(stats.gets_eliminated, 1);
        assert!(stats.dead_locals_removed >= 1, "{stats:?}");
        assert_eq!(count(&cfg, |i| matches!(i, Instr::GetInit { .. })), 0);
        // The put survives (it is observable).
        assert_eq!(count(&cfg, |i| matches!(i, Instr::PutInit { .. })), 1);
    }

    #[test]
    fn puts_are_never_touched_by_dce() {
        let (cfg, _) = run("shared int A[64]; fn main() { A[MYPROC + 1] = 9; }");
        assert_eq!(count(&cfg, |i| matches!(i, Instr::PutInit { .. })), 1);
    }
}
