//! Remote-access elimination (§7, Figures 9–11).
//!
//! Three transformations, all justified by the *absence of a delay edge*
//! between the pair of accesses (no back-path ⇒ reordering them is
//! unobservable ⇒ collapsing them is sequentially consistent):
//!
//! * **redundant-get reuse** — a second `get` of the same location becomes
//!   a local copy of the first `get`'s destination (like keeping the value
//!   in a register);
//! * **write-back elimination** — an earlier `put` overwritten by a later
//!   `put` to the same location is dropped (like a write-back cache);
//! * **value forwarding** — a `get` of a location this processor just
//!   `put` becomes a local re-evaluation of the written value ("reading a
//!   remote variable that has recently been written can be avoided if the
//!   written value is still available", §7 / Figure 11).
//!
//! Both run on the freshly split CFG (initiation and `sync_ctr` still
//! adjacent) and work within basic blocks; the value-correctness conditions
//! additionally require that no same-processor operation touches the
//! location in between and that the operands involved are not redefined.

use crate::OptStats;
use syncopt_core::affine::{may_equal_same_proc, provably_equal_same_proc};
use syncopt_core::{Analysis, DelaySet};
use syncopt_ir::cfg::{Cfg, Instr};
use syncopt_ir::expr::{Expr, SharedRef};
use syncopt_ir::ids::{BlockId, VarId};

/// Replaces redundant `get`s with local copies.
pub fn eliminate_redundant_gets(
    cfg: &mut Cfg,
    delay: &DelaySet,
    _analysis: &Analysis,
    stats: &mut OptStats,
) {
    for b in cfg.block_ids().collect::<Vec<_>>() {
        let mut j = 0;
        while j < cfg.block(b).instrs.len() {
            let Instr::GetInit {
                access: g2_access,
                dst: dst2,
                src: ref2,
                ctr: ctr2,
            } = cfg.block(b).instrs[j].clone()
            else {
                j += 1;
                continue;
            };
            // Scan backward for a matching earlier get.
            let mut found: Option<(usize, VarId)> = None;
            for i in (0..j).rev() {
                let Instr::GetInit {
                    access: g1_access,
                    dst: dst1,
                    src: ref1,
                    ..
                } = cfg.block(b).instrs[i].clone()
                else {
                    continue;
                };
                if ref1.var != ref2.var
                    || !provably_equal_same_proc(ref1.index.as_ref(), ref2.index.as_ref())
                {
                    continue;
                }
                // No delay edge between the two gets (§7's condition).
                if delay.contains(g1_access, g2_access) {
                    break;
                }
                if reuse_invalidated(cfg, b, i, j, &ref1, dst1) {
                    break;
                }
                found = Some((i, dst1));
                break;
            }
            if let Some((_, dst1)) = found {
                // Replace the get with a local copy and drop its adjacent
                // sync (split-phase layout guarantees adjacency here).
                cfg.block_mut(b).instrs[j] = Instr::AssignLocal {
                    dst: dst2,
                    value: Expr::Local(dst1),
                };
                if matches!(
                    cfg.block(b).instrs.get(j + 1),
                    Some(Instr::SyncCtr { ctr }) if *ctr == ctr2
                ) {
                    cfg.block_mut(b).instrs.remove(j + 1);
                }
                stats.gets_eliminated += 1;
            }
            j += 1;
        }
    }
    cfg.recompute_access_positions();
}

/// Is the value produced by the get at `i` stale or unavailable by the
/// point `j` (same block)?
fn reuse_invalidated(
    cfg: &Cfg,
    b: BlockId,
    i: usize,
    j: usize,
    loc: &SharedRef,
    dst1: VarId,
) -> bool {
    let index_vars: Vec<VarId> = loc
        .index
        .as_ref()
        .map(|e| e.vars_used())
        .unwrap_or_default();
    for instr in &cfg.block(b).instrs[i + 1..j] {
        // Redefinition of the cached value or the index computation.
        if let Some(d) = instr.def().or(instr.array_def()) {
            if d == dst1 || index_vars.contains(&d) {
                return true;
            }
        }
        // A same-processor write to (possibly) the same location.
        match instr {
            Instr::PutShared { dst, .. }
            | Instr::PutInit { dst, .. }
            | Instr::StoreInit { dst, .. }
                if dst.var == loc.var
                    && may_equal_same_proc(dst.index.as_ref(), loc.index.as_ref()) =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Cross-block redundant-get reuse: a get in a block *dominated* by an
/// earlier matching get is replaced by a local copy, provided no block on
/// any path between them (nor the end of the first block, nor the prefix
/// of the second) can invalidate the cached value, and no delay edge
/// separates the pair.
pub fn eliminate_redundant_gets_cross_block(cfg: &mut Cfg, delay: &DelaySet, stats: &mut OptStats) {
    use syncopt_ir::dom::Dominators;
    use syncopt_ir::order::ProgramOrder;
    let dom = Dominators::compute(cfg);
    let po = ProgramOrder::compute(cfg);

    // Collect all gets up front (positions are fresh post-split).
    let gets: Vec<(BlockId, usize, Instr)> = cfg
        .block_ids()
        .flat_map(|b| {
            cfg.block(b)
                .instrs
                .iter()
                .enumerate()
                .filter(|(_, i)| matches!(i, Instr::GetInit { .. }))
                .map(move |(idx, i)| (b, idx, i.clone()))
                .collect::<Vec<_>>()
        })
        .collect();

    for (b2, _, g2_snapshot) in &gets {
        let Instr::GetInit {
            access: g2_access,
            src: ref2,
            ..
        } = g2_snapshot
        else {
            unreachable!()
        };
        // Re-locate g2 (earlier replacements shift indices).
        let Some(j) = cfg
            .block(*b2)
            .instrs
            .iter()
            .position(|i| i.access_id() == Some(*g2_access))
        else {
            continue; // already replaced
        };
        let mut replacement: Option<(VarId, VarId, syncopt_ir::cfg::CtrId)> = None;
        'g1: for (b1, _, g1_snapshot) in &gets {
            let Instr::GetInit {
                access: g1_access,
                dst: dst1,
                src: ref1,
                ..
            } = g1_snapshot
            else {
                unreachable!()
            };
            if g1_access == g2_access || b1 == b2 {
                continue; // same-block handled by the intra-block pass
            }
            let Some(i) = cfg
                .block(*b1)
                .instrs
                .iter()
                .position(|x| x.access_id() == Some(*g1_access))
            else {
                continue;
            };
            if ref1.var != ref2.var
                || !provably_equal_same_proc(ref1.index.as_ref(), ref2.index.as_ref())
            {
                continue;
            }
            // Availability: g1 dominates g2.
            let p1 = syncopt_ir::ids::Position::new(*b1, i);
            let p2 = syncopt_ir::ids::Position::new(*b2, j);
            if !dom.pos_dominates(p1, p2) {
                continue;
            }
            if delay.contains(*g1_access, *g2_access) {
                continue;
            }
            // Invalidation scan: suffix of b1, prefix of b2, and every
            // block on some path b1 → X → b2 (includes loop bodies that
            // could re-enter b2).
            if region_invalidates(&cfg.block(*b1).instrs[i + 1..], ref1, *dst1)
                || region_invalidates(&cfg.block(*b2).instrs[..j], ref1, *dst1)
            {
                continue;
            }
            // Note: b1 and b2 themselves are NOT skipped here — if either
            // lies on a cycle (b1 → ... → b2 can pass through them again),
            // their full bodies are on a path and must be clean too.
            for x in cfg.block_ids() {
                if po.block_reaches(*b1, x)
                    && po.block_reaches(x, *b2)
                    && region_invalidates(&cfg.block(x).instrs, ref1, *dst1)
                {
                    continue 'g1;
                }
            }
            let Instr::GetInit { dst: dst2, ctr, .. } = &cfg.block(*b2).instrs[j] else {
                unreachable!()
            };
            replacement = Some((*dst2, *dst1, *ctr));
            break;
        }
        if let Some((dst2, dst1, ctr)) = replacement {
            cfg.block_mut(*b2).instrs[j] = Instr::AssignLocal {
                dst: dst2,
                value: Expr::Local(dst1),
            };
            if matches!(
                cfg.block(*b2).instrs.get(j + 1),
                Some(Instr::SyncCtr { ctr: c }) if *c == ctr
            ) {
                cfg.block_mut(*b2).instrs.remove(j + 1);
            }
            stats.gets_eliminated += 1;
        }
    }
    cfg.recompute_access_positions();
}

/// Whether any instruction in `instrs` invalidates a cached read of `loc`
/// held in `dst1`: a same-processor aliasing write, a redefinition of the
/// cached local, or a redefinition of an index variable.
fn region_invalidates(instrs: &[Instr], loc: &SharedRef, dst1: VarId) -> bool {
    let index_vars: Vec<VarId> = loc
        .index
        .as_ref()
        .map(|e| e.vars_used())
        .unwrap_or_default();
    for instr in instrs {
        if let Some(d) = instr.def().or(instr.array_def()) {
            if d == dst1 || index_vars.contains(&d) {
                return true;
            }
        }
        match instr {
            Instr::PutShared { dst, .. }
            | Instr::PutInit { dst, .. }
            | Instr::StoreInit { dst, .. }
                if dst.var == loc.var
                    && may_equal_same_proc(dst.index.as_ref(), loc.index.as_ref()) =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Forwards the value of a preceding `put` to a `get` of the same
/// location on the same processor (Figure 11 "value propagation").
///
/// `put X = e; ...; get(d, X)` becomes `put X = e; ...; d = e`, provided
/// the location provably matches, no variable of `e` (or of the index) is
/// redefined in between, no other same-location operation intervenes, and
/// no delay edge separates the pair.
pub fn forward_put_values(cfg: &mut Cfg, delay: &DelaySet, stats: &mut OptStats) {
    for b in cfg.block_ids().collect::<Vec<_>>() {
        let mut j = 0;
        while j < cfg.block(b).instrs.len() {
            let Instr::GetInit {
                access: g_access,
                dst,
                src: loc,
                ctr,
            } = cfg.block(b).instrs[j].clone()
            else {
                j += 1;
                continue;
            };
            let mut found: Option<Expr> = None;
            for i in (0..j).rev() {
                let instr = cfg.block(b).instrs[i].clone();
                let (p_access, p_dst, p_src) = match &instr {
                    Instr::PutInit {
                        access, dst, src, ..
                    }
                    | Instr::StoreInit { access, dst, src } => (*access, dst.clone(), src.clone()),
                    _ => continue,
                };
                if p_dst.var != loc.var
                    || !provably_equal_same_proc(p_dst.index.as_ref(), loc.index.as_ref())
                {
                    // A possibly-aliasing write we cannot prove equal kills
                    // the window.
                    if p_dst.var == loc.var
                        && may_equal_same_proc(p_dst.index.as_ref(), loc.index.as_ref())
                    {
                        break;
                    }
                    continue;
                }
                if delay.contains(p_access, g_access) {
                    break;
                }
                if forwarding_invalidated(cfg, b, i, j, &loc, &p_src) {
                    break;
                }
                found = Some(p_src);
                break;
            }
            if let Some(value) = found {
                cfg.block_mut(b).instrs[j] = Instr::AssignLocal { dst, value };
                if matches!(
                    cfg.block(b).instrs.get(j + 1),
                    Some(Instr::SyncCtr { ctr: c }) if *c == ctr
                ) {
                    cfg.block_mut(b).instrs.remove(j + 1);
                }
                stats.gets_eliminated += 1;
            }
            j += 1;
        }
    }
    cfg.recompute_access_positions();
}

/// Is the forwarded value stale or unavailable by point `j`?
fn forwarding_invalidated(
    cfg: &Cfg,
    b: BlockId,
    i: usize,
    j: usize,
    loc: &SharedRef,
    value: &Expr,
) -> bool {
    let mut watched: Vec<VarId> = value.vars_used();
    if let Some(idx) = &loc.index {
        for v in idx.vars_used() {
            if !watched.contains(&v) {
                watched.push(v);
            }
        }
    }
    for instr in &cfg.block(b).instrs[i + 1..j] {
        if let Some(d) = instr.def().or(instr.array_def()) {
            if watched.contains(&d) {
                return true;
            }
        }
        match instr {
            Instr::PutShared { dst, .. }
            | Instr::PutInit { dst, .. }
            | Instr::StoreInit { dst, .. }
                if dst.var == loc.var
                    && may_equal_same_proc(dst.index.as_ref(), loc.index.as_ref()) =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Drops `put`s whose value is overwritten before it can be observed.
pub fn eliminate_overwritten_puts(cfg: &mut Cfg, analysis: &Analysis, stats: &mut OptStats) {
    let delay = &analysis.delay_sync;
    for b in cfg.block_ids().collect::<Vec<_>>() {
        let mut i = 0;
        'outer: while i < cfg.block(b).instrs.len() {
            let Instr::PutInit {
                access: p1_access,
                dst: ref1,
                ctr: ctr1,
                ..
            } = cfg.block(b).instrs[i].clone()
            else {
                i += 1;
                continue;
            };
            let index_vars: Vec<VarId> = ref1
                .index
                .as_ref()
                .map(|e| e.vars_used())
                .unwrap_or_default();
            // Scan forward for an overwriting put.
            for j in i + 1..cfg.block(b).instrs.len() {
                let instr = cfg.block(b).instrs[j].clone();
                // Index-variable redefinition ends the comparison window.
                if let Some(d) = instr.def().or(instr.array_def()) {
                    if index_vars.contains(&d) {
                        break;
                    }
                }
                match &instr {
                    Instr::PutInit {
                        access: p2_access,
                        dst: ref2,
                        ..
                    }
                    | Instr::StoreInit {
                        access: p2_access,
                        dst: ref2,
                        ..
                    } => {
                        if ref2.var == ref1.var
                            && provably_equal_same_proc(ref2.index.as_ref(), ref1.index.as_ref())
                            && !delay.contains(p1_access, *p2_access)
                        {
                            // Remove put1 and its adjacent sync.
                            if matches!(
                                cfg.block(b).instrs.get(i + 1),
                                Some(Instr::SyncCtr { ctr }) if *ctr == ctr1
                            ) {
                                cfg.block_mut(b).instrs.remove(i + 1);
                            }
                            cfg.block_mut(b).instrs.remove(i);
                            stats.puts_eliminated += 1;
                            // Do not advance: a new instruction sits at `i`.
                            continue 'outer;
                        }
                        // A conflicting same-location operation we cannot
                        // prove equal: stop.
                        if ref2.var == ref1.var
                            && may_equal_same_proc(ref2.index.as_ref(), ref1.index.as_ref())
                        {
                            break;
                        }
                    }
                    // A same-processor read of the location observes put1:
                    // it must stay.
                    Instr::GetShared { src, .. } | Instr::GetInit { src, .. }
                        if src.var == ref1.var
                            && may_equal_same_proc(src.index.as_ref(), ref1.index.as_ref()) =>
                    {
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    cfg.recompute_access_positions();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::split_phase;
    use syncopt_core::analyze;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    fn run(src: &str) -> (Cfg, OptStats) {
        let cfg0 = lower_main(&prepare_program(src).unwrap()).unwrap();
        let analysis = analyze(&cfg0);
        let mut cfg = cfg0.clone();
        let mut stats = OptStats::default();
        let _map = split_phase(&mut cfg, &mut stats);
        eliminate_redundant_gets(&mut cfg, &analysis.delay_sync, &analysis, &mut stats);
        forward_put_values(&mut cfg, &analysis.delay_sync, &mut stats);
        eliminate_overwritten_puts(&mut cfg, &analysis, &mut stats);
        (cfg, stats)
    }

    fn count(cfg: &Cfg, pred: impl Fn(&Instr) -> bool) -> usize {
        cfg.blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .filter(|i| pred(i))
            .count()
    }

    #[test]
    fn second_get_after_wait_is_reused() {
        // Figure 9 (second case): post/wait ensures the put completed, so X
        // is stable; two reads collapse to one.
        let (cfg, stats) = run(r#"
            shared int X; flag F;
            fn main() {
                int a; int b;
                if (MYPROC == 0) { X = 5; post F; }
                else { wait F; a = X; b = X; work(a + b); }
            }
            "#);
        assert_eq!(stats.gets_eliminated, 1, "{stats:?}");
        assert_eq!(count(&cfg, |i| matches!(i, Instr::GetInit { .. })), 1);
    }

    #[test]
    fn racy_second_get_is_kept() {
        // No synchronization: the two reads may legally see different
        // values (another processor writes X concurrently) — a delay edge
        // exists and reuse is refused.
        let (cfg, stats) = run(r#"
            shared int X;
            fn main() {
                int a; int b;
                if (MYPROC == 0) { X = 5; }
                else { a = X; b = X; work(a + b); }
            }
            "#);
        assert_eq!(stats.gets_eliminated, 0, "{stats:?}");
        assert_eq!(count(&cfg, |i| matches!(i, Instr::GetInit { .. })), 2);
    }

    #[test]
    fn own_write_between_gets_blocks_reuse_but_allows_forwarding() {
        // get; put; get — the second get must NOT reuse the first get's
        // value (the put intervened), but it MAY take the put's value
        // (forwarding), which is strictly better.
        let (cfg, stats) = run(r#"
            shared int A[64]; flag F;
            fn main() {
                int a; int b;
                wait F;
                a = A[MYPROC + 1];
                A[MYPROC + 1] = 9;
                b = A[MYPROC + 1];
                work(a + b);
            }
            "#);
        assert_eq!(stats.gets_eliminated, 1, "{stats:?}");
        // The first get survives; the second became `b = 9`.
        assert_eq!(count(&cfg, |i| matches!(i, Instr::GetInit { .. })), 1);
        let forwarded = cfg.blocks.iter().flat_map(|bl| bl.instrs.iter()).any(|i| {
            matches!(i, Instr::AssignLocal { value, .. }
                if *value == syncopt_ir::expr::Expr::Int(9))
        });
        assert!(forwarded, "second get should take the put's value");
    }

    #[test]
    fn index_redefinition_blocks_reuse() {
        let (_cfg, stats) = run(r#"
            shared int A[64]; flag F;
            fn main() {
                int i; int a; int b;
                wait F;
                i = 1;
                a = A[i];
                i = 2;
                b = A[i];
                work(a + b);
            }
            "#);
        assert_eq!(stats.gets_eliminated, 0, "{stats:?}");
    }

    #[test]
    fn overwritten_put_is_dropped() {
        // Two successive writes to the same element with no reader in
        // between and no cross-processor observer (owner slot): write-back.
        let (cfg, stats) = run(r#"
            shared int A[64];
            fn main() {
                A[MYPROC] = 1;
                A[MYPROC] = 2;
            }
            "#);
        assert_eq!(stats.puts_eliminated, 1, "{stats:?}");
        assert_eq!(count(&cfg, |i| matches!(i, Instr::PutInit { .. })), 1);
    }

    #[test]
    fn observable_put_is_kept() {
        // A racy reader elsewhere: the delay edge between the two writes
        // keeps both.
        let (_cfg, stats) = run(r#"
            shared int X;
            fn main() {
                int v;
                if (MYPROC == 0) { X = 1; X = 2; }
                else { v = X; work(v); }
            }
            "#);
        assert_eq!(stats.puts_eliminated, 0, "{stats:?}");
    }

    #[test]
    fn own_read_between_puts_forwards_then_write_backs() {
        // put; get; put — without forwarding, the intervening read pins
        // the first put. Forwarding turns the read into `v = 1`, after
        // which the first put is dead and write-back removes it.
        let (cfg, stats) = run(r#"
            shared int A[64];
            fn main() {
                int v;
                A[MYPROC] = 1;
                v = A[MYPROC];
                A[MYPROC] = 2;
                work(v);
            }
            "#);
        assert_eq!(stats.gets_eliminated, 1, "{stats:?}");
        assert_eq!(stats.puts_eliminated, 1, "{stats:?}");
        assert_eq!(count(&cfg, |i| matches!(i, Instr::PutInit { .. })), 1);
    }

    fn run_cross(src: &str) -> (Cfg, OptStats) {
        let cfg0 = lower_main(&prepare_program(src).unwrap()).unwrap();
        let analysis = syncopt_core::analyze_for(&cfg0, 4);
        let mut cfg = cfg0.clone();
        let mut stats = OptStats::default();
        let _map = split_phase(&mut cfg, &mut stats);
        eliminate_redundant_gets(&mut cfg, &analysis.delay_sync, &analysis, &mut stats);
        eliminate_redundant_gets_cross_block(&mut cfg, &analysis.delay_sync, &mut stats);
        (cfg, stats)
    }

    #[test]
    fn cross_block_reuse_after_wait() {
        // First read before the branch, second read inside a dominated
        // branch arm: the cached value is reusable (post-wait makes the
        // location stable).
        let (cfg, stats) = run_cross(
            r#"
            shared int X; flag F;
            fn main() {
                int a; int b;
                wait F;
                a = X;
                if (MYPROC == 0) {
                    b = X;
                    work(b);
                }
                work(a);
            }
            "#,
        );
        assert_eq!(stats.gets_eliminated, 1, "{stats:?}");
        assert_eq!(count(&cfg, |i| matches!(i, Instr::GetInit { .. })), 1);
    }

    #[test]
    fn cross_block_reuse_blocked_by_loop_write() {
        // The second get sits in a loop that also writes the location:
        // iteration 2's read must see the new value, so no reuse.
        let (_cfg, stats) = run_cross(
            r#"
            shared int A[64]; flag F;
            fn main() {
                int a; int b; int i;
                wait F;
                a = A[MYPROC];
                for (i = 0; i < 3; i = i + 1) {
                    b = A[MYPROC];
                    A[MYPROC] = b + 1;
                }
                work(a);
            }
            "#,
        );
        assert_eq!(stats.gets_eliminated, 0, "{stats:?}");
    }

    #[test]
    fn cross_block_requires_domination() {
        // The first get is inside a branch: it does not dominate the
        // later get, so the value may be unavailable.
        let (_cfg, stats) = run_cross(
            r#"
            shared int X; flag F;
            fn main() {
                int a; int b;
                wait F;
                if (MYPROC == 0) { a = X; work(a); }
                b = X;
                work(b);
            }
            "#,
        );
        assert_eq!(stats.gets_eliminated, 0, "{stats:?}");
    }

    #[test]
    fn cross_block_blocked_by_racy_location() {
        // No synchronization: a delay edge separates the gets.
        let (_cfg, stats) = run_cross(
            r#"
            shared int X;
            fn main() {
                int a; int b;
                if (MYPROC == 0) { X = 1; }
                else {
                    a = X;
                    if (MYPROC == 1) { work(1); }
                    b = X;
                    work(a + b);
                }
            }
            "#,
        );
        assert_eq!(stats.gets_eliminated, 0, "{stats:?}");
    }

    #[test]
    fn put_value_forwards_to_following_get() {
        // Own-slot write then read-back: the read becomes a local
        // re-evaluation and the put survives (others may read it later).
        let (cfg, stats) = run(r#"
            shared int A[64];
            fn main() {
                int v;
                A[MYPROC] = MYPROC * 3;
                v = A[MYPROC];
                work(v);
            }
            "#);
        assert_eq!(stats.gets_eliminated, 1, "{stats:?}");
        assert_eq!(count(&cfg, |i| matches!(i, Instr::GetInit { .. })), 0);
        assert_eq!(count(&cfg, |i| matches!(i, Instr::PutInit { .. })), 1);
    }

    #[test]
    fn forwarding_blocked_by_operand_redefinition() {
        let (_cfg, stats) = run(r#"
            shared int A[64];
            fn main() {
                int k; int v;
                k = 7;
                A[MYPROC] = k;
                k = 9;
                v = A[MYPROC];
                work(v + k);
            }
            "#);
        assert_eq!(stats.gets_eliminated, 0, "{stats:?}");
    }

    #[test]
    fn forwarding_blocked_by_racy_location() {
        // Another processor writes the same scalar: a delay edge separates
        // the pair and forwarding must not happen.
        let (_cfg, stats) = run(r#"
            shared int X;
            fn main() {
                int v;
                X = MYPROC;
                v = X;
                work(v);
            }
            "#);
        assert_eq!(stats.gets_eliminated, 0, "{stats:?}");
    }

    #[test]
    fn forwarding_enables_write_back() {
        // put; get (forwarded); put — after forwarding, the first put has
        // no observer left and the write-back pass removes it.
        let (cfg, stats) = run(r#"
            shared int A[64];
            fn main() {
                int v;
                A[MYPROC] = 1;
                v = A[MYPROC];
                A[MYPROC] = v + 1;
            }
            "#);
        assert_eq!(stats.gets_eliminated, 1, "{stats:?}");
        assert_eq!(stats.puts_eliminated, 1, "{stats:?}");
        assert_eq!(count(&cfg, |i| matches!(i, Instr::PutInit { .. })), 1);
    }

    #[test]
    fn distinct_elements_are_untouched() {
        let (_cfg, stats) = run(r#"
            shared int A[64]; flag F;
            fn main() {
                int a; int b;
                wait F;
                a = A[MYPROC];
                b = A[MYPROC + 1];
                A[MYPROC] = a;
                A[MYPROC + 32] = b;
            }
            "#);
        assert_eq!(stats.gets_eliminated, 0);
        assert_eq!(stats.puts_eliminated, 0);
    }
}
