//! Message pipelining: sync motion and initiation motion (§6).
//!
//! `sync_ctr` operations move *forward* — to the end of their block and then
//! into successors (duplicating per the §6 rules; copies merge when they
//! meet) — until a delay edge or a local dependence stops them. Initiations
//! (`get_ctr`/`put_ctr`/`store`) move *backward* within their block under
//! the same constraints. The distance between initiation and sync is the
//! communication overlap the simulator later converts into time.
//!
//! Heuristics from the paper: a sync is not pushed into a loop it did not
//! start in (it would run every iteration), and the exit block keeps its
//! syncs (program termination must drain the network).

use crate::split::CtrMap;
use crate::OptStats;
use std::collections::HashSet;
use syncopt_core::affine::{may_equal_same_proc, to_affine};
use syncopt_core::DelaySet;
use syncopt_ir::access::AccessKind;
use syncopt_ir::cfg::{Cfg, CtrId, Instr};
use syncopt_ir::dataflow::local_dependence;
use syncopt_ir::dom::Dominators;
use syncopt_ir::expr::Expr;
use syncopt_ir::ids::{AccessId, BlockId};
use syncopt_ir::loops::{defined_in_loop, find_loops, induction_vars, NaturalLoop};

/// Accesses whose subscript is *injective across loop iterations*: it is
/// affine with a nonzero coefficient on a basic induction variable of the
/// containing loop, and every other variable in it is loop-invariant. Two
/// dynamic instances of such an access from different iterations touch
/// different elements, so an access may be reordered with *itself* (e.g. a
/// transpose `put` in a scatter loop).
pub fn iteration_injective_accesses(cfg: &Cfg) -> HashSet<AccessId> {
    let dom = Dominators::compute(cfg);
    let loops = find_loops(cfg, &dom);
    let ivs = induction_vars(cfg, &loops);
    let mut out = HashSet::new();
    for (id, info) in cfg.accesses.iter() {
        let Some(index) = &info.index else {
            continue;
        };
        let Some(aff) = to_affine(index) else {
            continue;
        };
        let block = info.pos.block;
        for (loop_idx, l) in loops.iter().enumerate() {
            if !l.contains(block) {
                continue;
            }
            let mut has_driver = false;
            let mut all_ok = true;
            for (&var, &coeff) in &aff.coeffs {
                if coeff == 0 {
                    continue;
                }
                let iv = ivs
                    .iter()
                    .find(|iv| iv.loop_idx == loop_idx && iv.var == var);
                match iv {
                    Some(iv) if coeff.checked_mul(iv.step).is_some_and(|s| s != 0) => {
                        has_driver = true;
                    }
                    _ => {
                        if defined_in_loop(cfg, l, var) {
                            all_ok = false;
                            break;
                        }
                    }
                }
            }
            if has_driver && all_ok {
                out.insert(id);
                break;
            }
        }
    }
    out
}

/// Pushes every `sync_ctr` as far forward as its constraints allow.
pub fn move_syncs(cfg: &mut Cfg, delay: &DelaySet, ctr_map: &CtrMap, stats: &mut OptStats) {
    let dom = Dominators::compute(cfg);
    let loops = find_loops(cfg, &dom);
    let injective = iteration_injective_accesses(cfg);
    let mut propagated: HashSet<(BlockId, CtrId)> = HashSet::new();
    let mut parked: HashSet<(BlockId, CtrId)> = HashSet::new();
    let mut changed = true;
    let mut rounds = 0usize;
    while changed {
        changed = false;
        rounds += 1;
        assert!(
            rounds <= 4 * cfg.num_blocks() + 64,
            "sync motion failed to terminate"
        );
        for b in cfg.block_ids().collect::<Vec<_>>() {
            let mut i = 0;
            loop {
                let len = cfg.block(b).instrs.len();
                if i >= len {
                    break;
                }
                let Instr::SyncCtr { ctr } = cfg.block(b).instrs[i] else {
                    i += 1;
                    continue;
                };
                if i + 1 < len {
                    let next = cfg.block(b).instrs[i + 1].clone();
                    match next {
                        Instr::SyncCtr { ctr: c2 } if c2 == ctr => {
                            cfg.block_mut(b).instrs.remove(i + 1);
                            stats.syncs_merged += 1;
                            changed = true;
                        }
                        ref a if !sync_blocked(cfg, delay, ctr_map, &injective, ctr, a) => {
                            cfg.block_mut(b).instrs.swap(i, i + 1);
                            stats.sync_moves += 1;
                            changed = true;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                } else {
                    // Sync at the end of its block: try to propagate.
                    if b == cfg.exit || parked.contains(&(b, ctr)) {
                        i += 1;
                        continue;
                    }
                    let succs = cfg.successors(b);
                    if succs.is_empty() {
                        i += 1;
                        continue;
                    }
                    if succs.iter().any(|&s| enters_foreign_loop(&loops, b, s)) {
                        parked.insert((b, ctr));
                        i += 1;
                        continue;
                    }
                    // Loop escape (the paper's anti-"every iteration"
                    // heuristic): if this block belongs to a loop none of
                    // whose instructions constrain this sync, hoist the
                    // sync to the loop's exit targets instead of cycling a
                    // copy through the body.
                    let escape_loop = innermost_loop(&loops, b).filter(|&li| {
                        !loop_needs_sync(cfg, delay, ctr_map, &injective, &loops[li], ctr)
                    });
                    cfg.block_mut(b).instrs.remove(i);
                    if let Some(li) = escape_loop {
                        for t in loop_exit_targets(cfg, &loops[li]) {
                            if propagated.insert((t, ctr)) {
                                cfg.block_mut(t).instrs.insert(0, Instr::SyncCtr { ctr });
                            } else {
                                stats.syncs_merged += 1;
                            }
                        }
                    } else {
                        for s in succs {
                            if propagated.insert((s, ctr)) {
                                cfg.block_mut(s).instrs.insert(0, Instr::SyncCtr { ctr });
                            } else {
                                stats.syncs_merged += 1;
                            }
                        }
                    }
                    stats.sync_moves += 1;
                    changed = true;
                    // Re-examine index i (a new instruction shifted in).
                }
            }
        }
    }
}

/// Whether jumping `from → to` enters a loop that `from` is not part of.
fn enters_foreign_loop(loops: &[NaturalLoop], from: BlockId, to: BlockId) -> bool {
    loops
        .iter()
        .any(|l| l.header == to && l.contains(to) && !l.contains(from))
}

/// Index of the innermost (fewest-blocks) loop containing `b`.
fn innermost_loop(loops: &[NaturalLoop], b: BlockId) -> Option<usize> {
    loops
        .iter()
        .enumerate()
        .filter(|(_, l)| l.contains(b))
        .min_by_key(|(_, l)| l.blocks.len())
        .map(|(i, _)| i)
}

/// Whether any instruction inside the loop constrains `sync_ctr(ctr)`.
/// The counter's own initiation does not count (re-initiating an
/// iteration-injective access needs no completion of the previous
/// instance; non-injective self-overlap is caught by `shared_overlap`),
/// and other syncs don't either (they are barriers to *crossing*, not
/// consumers of this counter).
fn loop_needs_sync(
    cfg: &Cfg,
    delay: &DelaySet,
    ctr_map: &CtrMap,
    injective: &HashSet<AccessId>,
    l: &NaturalLoop,
    ctr: CtrId,
) -> bool {
    for &b in &l.blocks {
        for instr in &cfg.block(b).instrs {
            if matches!(instr, Instr::SyncCtr { .. }) {
                continue;
            }
            if instr_initiates(instr, ctr) {
                // Own initiation: only a hazard when non-injective, which
                // `sync_blocked`'s shared_overlap path reports below via
                // the self check — so test it explicitly here.
                let u = ctr_map[&ctr].access;
                if shared_overlap(cfg, injective, u, u) {
                    return true;
                }
                continue;
            }
            if sync_blocked(cfg, delay, ctr_map, injective, ctr, instr) {
                return true;
            }
        }
    }
    false
}

/// Whether `instr` is the initiation tracked by `ctr`.
fn instr_initiates(instr: &Instr, ctr: CtrId) -> bool {
    matches!(
        instr,
        Instr::GetInit { ctr: c, .. } | Instr::PutInit { ctr: c, .. } if *c == ctr
    )
}

/// Blocks outside loop `l` that are targets of an edge leaving `l`.
fn loop_exit_targets(cfg: &Cfg, l: &NaturalLoop) -> Vec<BlockId> {
    let mut out = Vec::new();
    for &b in &l.blocks {
        for s in cfg.successors(b) {
            if !l.contains(s) && !out.contains(&s) {
                out.push(s);
            }
        }
    }
    out
}

/// Can `sync_ctr(ctr)` move past `a`?
fn sync_blocked(
    cfg: &Cfg,
    delay: &DelaySet,
    ctr_map: &CtrMap,
    injective: &HashSet<AccessId>,
    ctr: CtrId,
    a: &Instr,
) -> bool {
    // Syncs never cross each other: it buys nothing and two adjacent syncs
    // would otherwise swap forever.
    if matches!(a, Instr::SyncCtr { .. }) {
        return true;
    }
    // A sync never crosses its own initiation (it must stay downstream of
    // the operation it completes).
    if instr_initiates(a, ctr) {
        return true;
    }
    let info = ctr_map[&ctr];
    let u = info.access;
    // Delay constraint: some access in `a` must wait for `u`'s completion.
    if let Some(w) = a.access_id() {
        if delay.contains(u, w) {
            return true;
        }
        // Same-processor dependence through shared memory: the pending
        // operation and `a` may touch the same location.
        if shared_overlap(cfg, injective, u, w) {
            return true;
        }
    }
    // Barriers are hard stops: they are the landing pads for one-way
    // conversion and phase boundaries for everything else.
    if matches!(a, Instr::Barrier { .. }) {
        return true;
    }
    // Local def-use: for a pending get, its destination must not be read or
    // overwritten before the sync.
    if let Some(dst) = info.get_dst {
        let mut uses_dst = false;
        a.for_each_use(&mut |v| uses_dst |= v == dst);
        if uses_dst || a.def() == Some(dst) || a.array_def() == Some(dst) {
            return true;
        }
    }
    false
}

/// Conservative same-processor aliasing between two shared accesses: same
/// variable, at least one write, and indices not provably distinct on one
/// processor. Index comparison is only trusted for `MYPROC`/constant
/// expressions (locals could be redefined between the two points).
fn shared_overlap(cfg: &Cfg, injective: &HashSet<AccessId>, u: AccessId, w: AccessId) -> bool {
    // An iteration-injective access never collides with its own other
    // instances.
    if u == w && injective.contains(&u) {
        return false;
    }
    let (ui, wi) = (cfg.accesses.info(u), cfg.accesses.info(w));
    if !ui.kind.is_data() || !wi.kind.is_data() {
        return false;
    }
    if ui.var != wi.var {
        return false;
    }
    if ui.kind == AccessKind::Read && wi.kind == AccessKind::Read {
        return false;
    }
    match (&ui.index, &wi.index) {
        (None, None) => true,
        (Some(e1), Some(e2)) if stable_index(e1) && stable_index(e2) => {
            may_equal_same_proc(Some(e1), Some(e2))
        }
        _ => true,
    }
}

/// An index expression whose value cannot change between program points:
/// built only from constants and `MYPROC`/`PROCS`.
fn stable_index(e: &Expr) -> bool {
    match e {
        Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) | Expr::MyProc | Expr::Procs => true,
        Expr::Local(_) | Expr::LocalElem { .. } => false,
        Expr::Unary { expr, .. } => stable_index(expr),
        Expr::Binary { lhs, rhs, .. } => stable_index(lhs) && stable_index(rhs),
    }
}

/// Pulls initiations backward within their blocks.
pub fn move_initiations(cfg: &mut Cfg, delay: &DelaySet, ctr_map: &CtrMap, stats: &mut OptStats) {
    let injective = iteration_injective_accesses(cfg);
    for b in cfg.block_ids().collect::<Vec<_>>() {
        let mut i = 1;
        while i < cfg.block(b).instrs.len() {
            let instr = cfg.block(b).instrs[i].clone();
            let is_initiation = matches!(
                instr,
                Instr::GetInit { .. } | Instr::PutInit { .. } | Instr::StoreInit { .. }
            );
            if !is_initiation {
                i += 1;
                continue;
            }
            let u = instr.access_id().expect("initiations carry access ids");
            let mut j = i;
            while j > 0 {
                let prev = cfg.block(b).instrs[j - 1].clone();
                if init_blocked(cfg, delay, ctr_map, &injective, u, &instr, &prev) {
                    break;
                }
                cfg.block_mut(b).instrs.swap(j - 1, j);
                stats.init_moves += 1;
                j -= 1;
            }
            i += 1;
        }
    }
    cfg.recompute_access_positions();
}

/// Can the initiation of access `u` (instruction `instr`) move before
/// `prev`?
fn init_blocked(
    cfg: &Cfg,
    delay: &DelaySet,
    ctr_map: &CtrMap,
    injective: &HashSet<AccessId>,
    u: AccessId,
    instr: &Instr,
    prev: &Instr,
) -> bool {
    // A sync point for an access we must wait on: either a delay edge, or
    // the pending get feeds this initiation's operands (crossing would make
    // us read the destination before it is valid).
    if let Instr::SyncCtr { ctr } = prev {
        let info = ctr_map[ctr];
        if delay.contains(info.access, u) {
            return true;
        }
        if let Some(dst) = info.get_dst {
            let mut touches = false;
            instr.for_each_use(&mut |v| touches |= v == dst);
            if touches || instr.def() == Some(dst) || instr.array_def() == Some(dst) {
                return true;
            }
        }
        return false;
    }
    if let Some(w) = prev.access_id() {
        if delay.contains(w, u) {
            return true;
        }
        if shared_overlap(cfg, injective, w, u) {
            return true;
        }
    }
    // Local dataflow (operand definitions, destination clobbers).
    local_dependence(prev, instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::split_phase;
    use syncopt_core::analyze;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    /// Runs split + sync motion + init motion with the refined delay set.
    fn run(src: &str) -> (Cfg, OptStats) {
        let cfg0 = lower_main(&prepare_program(src).unwrap()).unwrap();
        let analysis = analyze(&cfg0);
        let mut cfg = cfg0.clone();
        let mut stats = OptStats::default();
        let map = split_phase(&mut cfg, &mut stats);
        move_syncs(&mut cfg, &analysis.delay_sync, &map, &mut stats);
        move_initiations(&mut cfg, &analysis.delay_sync, &map, &mut stats);
        cfg.recompute_access_positions();
        (cfg, stats)
    }

    fn entry_kinds(cfg: &Cfg) -> Vec<String> {
        cfg.block(cfg.entry)
            .instrs
            .iter()
            .map(|i| {
                let s = format!("{i:?}");
                s.split_whitespace().next().unwrap().to_string()
            })
            .collect()
    }

    #[test]
    fn sync_moves_past_independent_work() {
        // get; sync; work → get; work; ...; sync (possibly in a later
        // block: the destination is never used, so the sync can ride to
        // the exit).
        let (cfg, stats) =
            run("shared int A[64]; fn main() { int v; v = A[MYPROC + 1]; work(100); }");
        let kinds = entry_kinds(&cfg);
        let get_pos = kinds.iter().position(|k| k.contains("GetInit")).unwrap();
        let work_pos = kinds.iter().position(|k| k.contains("Work")).unwrap();
        assert!(get_pos < work_pos, "{kinds:?}");
        if let Some(sync_pos) = kinds.iter().position(|k| k.contains("SyncCtr")) {
            assert!(work_pos < sync_pos, "sync should pass work: {kinds:?}");
        } else {
            // Propagated onward; it must still exist somewhere (exit).
            let total_syncs: usize = cfg
                .blocks
                .iter()
                .flat_map(|b| b.instrs.iter())
                .filter(|i| matches!(i, Instr::SyncCtr { .. }))
                .count();
            assert_eq!(total_syncs, 1);
        }
        assert!(stats.sync_moves > 0);
    }

    #[test]
    fn sync_stops_at_use_of_get_destination() {
        let (cfg, _) = run("shared int A[64]; fn main() { int v; v = A[MYPROC + 1]; work(v); }");
        let kinds = entry_kinds(&cfg);
        let work_pos = kinds.iter().position(|k| k.contains("Work")).unwrap();
        let sync_pos = kinds.iter().position(|k| k.contains("SyncCtr")).unwrap();
        assert!(
            sync_pos < work_pos,
            "sync must complete before use: {kinds:?}"
        );
    }

    #[test]
    fn two_gets_pipeline_without_conflicts() {
        // Both initiations issue before either sync (message pipelining).
        let (cfg, _) = run(r#"
            shared int A[64]; shared int B[64];
            fn main() {
                int x; int y;
                x = A[MYPROC + 1];
                y = B[MYPROC + 1];
                work(x + y);
            }
            "#);
        let kinds = entry_kinds(&cfg);
        let inits: Vec<usize> = kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| k.contains("GetInit"))
            .map(|(i, _)| i)
            .collect();
        let syncs: Vec<usize> = kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| k.contains("SyncCtr"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(inits.len(), 2);
        assert_eq!(syncs.len(), 2);
        assert!(
            inits.iter().max() < syncs.iter().min(),
            "both gets should be outstanding together: {kinds:?}"
        );
    }

    #[test]
    fn sync_stops_at_barrier() {
        let (cfg, _) = run("shared int A[64]; fn main() { A[MYPROC + 1] = 3; work(50); barrier; }");
        let kinds = entry_kinds(&cfg);
        let sync_pos = kinds.iter().position(|k| k.contains("SyncCtr")).unwrap();
        let barrier_pos = kinds.iter().position(|k| k.contains("Barrier")).unwrap();
        assert_eq!(
            sync_pos + 1,
            barrier_pos,
            "sync should park right before the barrier: {kinds:?}"
        );
    }

    #[test]
    fn sync_propagates_through_branches_and_merges() {
        // Figure 8 shape: the sync duplicates into both arms.
        let (cfg, _) = run(r#"
            shared int X; shared int Z;
            fn main() {
                int x; int y; int z;
                x = X;
                y = 2;
                if (MYPROC == 0) { y = x + 1; }
                z = 1;
                work(z);
            }
            "#);
        // The get's sync must appear before `y = x + 1` in the then-arm and
        // may float into the join/other arm as a copy.
        let all: Vec<(usize, String)> = cfg
            .block_ids()
            .flat_map(|b| {
                cfg.block(b)
                    .instrs
                    .iter()
                    .map(move |i| (b.index(), format!("{i:?}")))
            })
            .collect();
        let syncs = all.iter().filter(|(_, s)| s.contains("SyncCtr")).count();
        assert!(syncs >= 1, "{all:?}");
        // Wherever `y = x + 1` lives, a sync precedes it in that block.
        for b in cfg.block_ids() {
            let instrs = &cfg.block(b).instrs;
            if let Some(use_pos) = instrs.iter().position(|i| {
                let mut uses_x = false;
                i.for_each_use(&mut |v| {
                    uses_x |= cfg.vars.info(v).name == "%t0";
                });
                uses_x && matches!(i, Instr::AssignLocal { .. })
            }) {
                let sync_before = instrs[..use_pos]
                    .iter()
                    .any(|i| matches!(i, Instr::SyncCtr { .. }));
                assert!(sync_before, "block {b:?} uses the get result unsynced");
            }
        }
    }

    #[test]
    fn sync_does_not_enter_foreign_loop() {
        let (cfg, _) = run(r#"
            shared int A[64];
            fn main() {
                int i;
                A[MYPROC + 1] = 1;
                for (i = 0; i < 100; i = i + 1) { work(5); }
            }
            "#);
        // The put's sync must not be inside the loop body or header.
        let dom = Dominators::compute(&cfg);
        let loops = find_loops(&cfg, &dom);
        assert_eq!(loops.len(), 1);
        for b in &loops[0].blocks {
            for instr in &cfg.block(*b).instrs {
                assert!(
                    !matches!(instr, Instr::SyncCtr { .. }),
                    "sync leaked into loop block {b:?}"
                );
            }
        }
    }

    #[test]
    fn initiation_moves_before_independent_work() {
        let (cfg, stats) =
            run("shared int A[64]; fn main() { int v; work(100); v = A[MYPROC + 1]; work(v); }");
        let kinds = entry_kinds(&cfg);
        let get_pos = kinds.iter().position(|k| k.contains("GetInit")).unwrap();
        let first_work = kinds.iter().position(|k| k.contains("Work")).unwrap();
        assert!(get_pos < first_work, "get should hoist: {kinds:?}");
        assert!(stats.init_moves > 0);
    }

    #[test]
    fn initiation_stops_at_operand_definition() {
        let (cfg, _) =
            run("shared int A[64]; fn main() { int i; i = MYPROC + 1; int v; v = A[i]; }");
        let kinds = entry_kinds(&cfg);
        let assign = kinds
            .iter()
            .position(|k| k.contains("AssignLocal"))
            .unwrap();
        let get_pos = kinds.iter().position(|k| k.contains("GetInit")).unwrap();
        assert!(
            assign < get_pos,
            "get cannot pass def of its index: {kinds:?}"
        );
    }

    #[test]
    fn same_location_accesses_stay_ordered() {
        // write X then read X (same proc): the read's initiation must not
        // cross the write, and the write's sync must precede the read.
        let (cfg, _) = run("shared int X; fn main() { int v; X = 1; v = X; work(v); }");
        let kinds = entry_kinds(&cfg);
        let put = kinds.iter().position(|k| k.contains("PutInit")).unwrap();
        let put_sync = kinds.iter().position(|k| k.contains("SyncCtr")).unwrap();
        let get = kinds.iter().position(|k| k.contains("GetInit")).unwrap();
        assert!(put < get, "{kinds:?}");
        assert!(
            put_sync < get,
            "write must complete before same-location read: {kinds:?}"
        );
    }

    #[test]
    fn delay_edges_block_motion() {
        // Figure 1 producer: Write Data must complete before Write Flag.
        let (cfg, _) = run(r#"
            shared int Data; shared int Flag;
            fn main() {
                int v;
                if (MYPROC == 0) { Data = 1; Flag = 1; }
                else { v = Flag; v = Data; }
            }
            "#);
        // Find the block holding the two producer puts.
        for b in cfg.block_ids() {
            let instrs = &cfg.block(b).instrs;
            let puts: Vec<usize> = instrs
                .iter()
                .enumerate()
                .filter(|(_, i)| matches!(i, Instr::PutInit { .. }))
                .map(|(i, _)| i)
                .collect();
            if puts.len() == 2 {
                let sync_between = instrs[puts[0]..puts[1]]
                    .iter()
                    .any(|i| matches!(i, Instr::SyncCtr { .. }));
                assert!(
                    sync_between,
                    "delay (WriteData, WriteFlag) must force a sync between the puts"
                );
            }
        }
    }
}
