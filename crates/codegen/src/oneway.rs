//! Two-way → one-way communication conversion (§6).
//!
//! A `put` carries an acknowledgement so `sync_ctr` can observe its
//! completion. When every `sync_ctr` copy for a put has propagated to a
//! global barrier, the acknowledgement is pure overhead: the barrier's
//! network quiescence already guarantees delivery. Such puts become
//! `store`s — one-way writes with no ack traffic — and their syncs vanish.

use crate::split::CtrMap;
use crate::OptStats;
use syncopt_ir::cfg::{Cfg, CtrId, Instr};

/// Converts every eligible `put_ctr` into a `store` and removes its syncs.
pub fn convert_one_way(cfg: &mut Cfg, ctr_map: &CtrMap, stats: &mut OptStats) {
    // Gather sync positions per counter and check the barrier-adjacency
    // condition.
    let mut eligible: Vec<CtrId> = Vec::new();
    for (&ctr, _) in ctr_map.iter() {
        let mut sync_count = 0usize;
        let mut all_at_barrier = true;
        let mut is_put = false;
        for b in cfg.block_ids() {
            let instrs = &cfg.block(b).instrs;
            for (i, instr) in instrs.iter().enumerate() {
                match instr {
                    Instr::SyncCtr { ctr: c } if *c == ctr => {
                        sync_count += 1;
                        let next_is_barrier =
                            matches!(instrs.get(i + 1), Some(Instr::Barrier { .. }));
                        all_at_barrier &= next_is_barrier;
                    }
                    Instr::PutInit { ctr: c, .. } if *c == ctr => {
                        is_put = true;
                    }
                    _ => {}
                }
            }
        }
        if is_put && sync_count > 0 && all_at_barrier {
            eligible.push(ctr);
        }
    }

    for ctr in eligible {
        for bi in 0..cfg.blocks.len() {
            let b = syncopt_ir::ids::BlockId::from_index(bi);
            let instrs = &mut cfg.block_mut(b).instrs;
            let mut i = 0;
            while i < instrs.len() {
                match &instrs[i] {
                    Instr::SyncCtr { ctr: c } if *c == ctr => {
                        instrs.remove(i);
                    }
                    Instr::PutInit {
                        access,
                        dst,
                        src,
                        ctr: c,
                    } if *c == ctr => {
                        instrs[i] = Instr::StoreInit {
                            access: *access,
                            dst: dst.clone(),
                            src: src.clone(),
                        };
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
        }
        stats.puts_to_stores += 1;
    }
    cfg.recompute_access_positions();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motion::{move_initiations, move_syncs};
    use crate::split::split_phase;
    use syncopt_core::analyze;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    fn run(src: &str) -> (Cfg, OptStats) {
        let cfg0 = lower_main(&prepare_program(src).unwrap()).unwrap();
        let analysis = analyze(&cfg0);
        let mut cfg = cfg0.clone();
        let mut stats = OptStats::default();
        let map = split_phase(&mut cfg, &mut stats);
        move_syncs(&mut cfg, &analysis.delay_sync, &map, &mut stats);
        move_initiations(&mut cfg, &analysis.delay_sync, &map, &mut stats);
        convert_one_way(&mut cfg, &map, &mut stats);
        (cfg, stats)
    }

    fn count(cfg: &Cfg, pred: impl Fn(&Instr) -> bool) -> usize {
        cfg.blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .filter(|i| pred(i))
            .count()
    }

    #[test]
    fn put_with_sync_at_barrier_becomes_store() {
        let (cfg, stats) = run(r#"
            shared int A[64];
            fn main() {
                int v;
                A[MYPROC + 1] = 7;
                work(10);
                barrier;
                v = A[MYPROC];
                work(v);
            }
            "#);
        assert_eq!(stats.puts_to_stores, 1);
        assert_eq!(count(&cfg, |i| matches!(i, Instr::StoreInit { .. })), 1);
        assert_eq!(count(&cfg, |i| matches!(i, Instr::PutInit { .. })), 0);
        // The store's sync is gone; the get's sync remains.
        assert_eq!(count(&cfg, |i| matches!(i, Instr::SyncCtr { .. })), 1);
    }

    #[test]
    fn put_without_barrier_keeps_ack() {
        let (cfg, stats) = run("shared int A[64]; fn main() { A[MYPROC + 1] = 7; work(10); }");
        assert_eq!(stats.puts_to_stores, 0);
        assert_eq!(count(&cfg, |i| matches!(i, Instr::PutInit { .. })), 1);
        assert_eq!(count(&cfg, |i| matches!(i, Instr::StoreInit { .. })), 0);
    }

    #[test]
    fn put_whose_sync_is_blocked_by_use_keeps_ack() {
        // Same-location read forces the sync before the read, not at the
        // barrier.
        let (cfg, stats) = run(r#"
            shared int X;
            fn main() {
                int v;
                X = 1;
                v = X;
                work(v);
                barrier;
            }
            "#);
        assert_eq!(stats.puts_to_stores, 0);
        assert!(count(&cfg, |i| matches!(i, Instr::PutInit { .. })) >= 1);
    }

    #[test]
    fn gets_are_never_converted() {
        let (cfg, stats) =
            run("shared int A[64]; fn main() { int v; v = A[MYPROC + 1]; barrier; work(v); }");
        assert_eq!(stats.puts_to_stores, 0);
        assert_eq!(count(&cfg, |i| matches!(i, Instr::GetInit { .. })), 1);
    }

    #[test]
    fn loop_put_with_barrier_each_iteration_converts() {
        let (cfg, stats) = run(r#"
            shared int A[64];
            fn main() {
                int i;
                for (i = 0; i < 8; i = i + 1) {
                    A[MYPROC + 1] = i;
                    work(20);
                    barrier;
                }
            }
            "#);
        assert_eq!(stats.puts_to_stores, 1, "{stats:?}");
        assert_eq!(count(&cfg, |i| matches!(i, Instr::StoreInit { .. })), 1);
    }
}
