#![warn(missing_docs)]

//! Code generation and communication optimization (§6–§7 of the paper).
//!
//! Consumes a source CFG (blocking shared accesses) plus the analysis
//! results from `syncopt-core`, and produces a target CFG using Split-C
//! style split-phase operations:
//!
//! * [`split`] — turn every blocking access into `get_ctr`/`put_ctr`
//!   followed immediately by `sync_ctr` (always legal);
//! * [`motion`] — **message pipelining**: push `sync_ctr`s forward through
//!   the CFG and pull initiations backward, bounded by delay edges and
//!   local def-use constraints;
//! * [`oneway`] — **two-way → one-way conversion**: a `put` whose syncs all
//!   land at barriers becomes an unacknowledged `store`;
//! * [`elim`] — **remote-access elimination**: redundant-`get` reuse,
//!   put→get value forwarding, and write-back elimination of overwritten
//!   `put`s;
//! * [`cleanup`] — dead-code removal, including *dead communication*
//!   (gets whose destination is never read);
//! * [`fences`] — the weak-memory backend: fence insertion covering a
//!   delay set for weakly-ordered shared-memory machines (§9).
//!
//! The optimization levels mirror the paper's Figure 12 bars: the baseline
//! runs the same pipeline constrained by the Shasha–Snir delay set, the
//! optimized versions use the synchronization-refined set.

pub mod cleanup;
pub mod elim;
pub mod fences;
pub mod motion;
pub mod oneway;
pub mod split;

use syncopt_core::{Analysis, DelaySet};
use syncopt_ir::cfg::Cfg;

/// How far to optimize. Each level includes the previous ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum OptLevel {
    /// Keep blocking accesses exactly as lowered (reference semantics).
    Blocking,
    /// Split-phase conversion + sync motion + initiation motion.
    #[default]
    Pipelined,
    /// Pipelined plus put→store conversion at barriers.
    OneWay,
    /// OneWay plus remote-access elimination.
    Full,
}

/// Which delay set constrains the motion passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DelayChoice {
    /// The Shasha–Snir baseline `D_SS` (paper's "unoptimized" bar).
    ShashaSnir,
    /// The synchronization-refined delay set (§5).
    #[default]
    SyncRefined,
}

/// Counters describing what the optimizer did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Blocking reads converted to split-phase gets.
    pub gets_split: usize,
    /// Blocking writes converted to split-phase puts.
    pub puts_split: usize,
    /// How many instruction slots all `sync_ctr`s moved forward, summed.
    pub sync_moves: usize,
    /// `sync_ctr` copies merged (rule 2b of §6).
    pub syncs_merged: usize,
    /// How many instruction slots initiations moved backward, summed.
    pub init_moves: usize,
    /// Puts converted to one-way stores.
    pub puts_to_stores: usize,
    /// Redundant gets replaced by local copies.
    pub gets_eliminated: usize,
    /// Overwritten puts removed (write-back).
    pub puts_eliminated: usize,
    /// Dead local assignments removed by cleanup.
    pub dead_locals_removed: usize,
    /// Gets whose destination was never read, removed with their syncs.
    pub dead_gets_removed: usize,
    /// Expressions simplified by constant folding.
    pub exprs_folded: usize,
}

/// The result of optimizing a program.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The transformed CFG (target IR).
    pub cfg: Cfg,
    /// What happened.
    pub stats: OptStats,
    /// The level that was applied.
    pub level: OptLevel,
}

/// Runs the optimization pipeline at `level`, constrained by `delay`.
///
/// `analysis` must have been computed on `cfg` (same access table).
///
/// # Panics
///
/// Panics if `analysis` was computed for a different CFG (access-count
/// mismatch).
pub fn optimize(cfg: &Cfg, analysis: &Analysis, level: OptLevel, choice: DelayChoice) -> Optimized {
    assert_eq!(
        analysis.delay_ss.num_accesses(),
        cfg.accesses.len(),
        "analysis does not match this CFG"
    );
    let delay: &DelaySet = match choice {
        DelayChoice::ShashaSnir => &analysis.delay_ss,
        DelayChoice::SyncRefined => &analysis.delay_sync,
    };
    let mut out = cfg.clone();
    let mut stats = OptStats::default();
    if level == OptLevel::Blocking {
        return Optimized {
            cfg: out,
            stats,
            level,
        };
    }
    let ctr_map = split::split_phase(&mut out, &mut stats);
    // Elimination runs first, on the freshly split CFG where each
    // initiation still has its sync adjacent (the passes rely on that
    // layout to drop the right sync copies).
    if level >= OptLevel::Full {
        elim::eliminate_redundant_gets(&mut out, delay, analysis, &mut stats);
        elim::eliminate_redundant_gets_cross_block(&mut out, delay, &mut stats);
        // Forwarding may turn a get into a local assignment, which in turn
        // can unblock write-back elimination of the forwarded put.
        elim::forward_put_values(&mut out, delay, &mut stats);
        elim::eliminate_overwritten_puts(&mut out, analysis, &mut stats);
        cleanup::remove_dead_code(&mut out, &mut stats);
    }
    motion::move_syncs(&mut out, delay, &ctr_map, &mut stats);
    motion::move_initiations(&mut out, delay, &ctr_map, &mut stats);
    if level >= OptLevel::OneWay {
        oneway::convert_one_way(&mut out, &ctr_map, &mut stats);
    }
    out.recompute_access_positions();
    debug_assert_eq!(out.validate(), Ok(()));
    Optimized {
        cfg: out,
        stats,
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_core::analyze;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::cfg::Instr;
    use syncopt_ir::lower::lower_main;

    fn pipeline(src: &str, level: OptLevel, choice: DelayChoice) -> Optimized {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let analysis = analyze(&cfg);
        optimize(&cfg, &analysis, level, choice)
    }

    fn count(cfg: &Cfg, pred: impl Fn(&Instr) -> bool) -> usize {
        cfg.blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .filter(|i| pred(i))
            .count()
    }

    #[test]
    fn blocking_level_is_identity() {
        let src = "shared int X; fn main() { int v; v = X; X = v + 1; }";
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let analysis = analyze(&cfg);
        let opt = optimize(
            &cfg,
            &analysis,
            OptLevel::Blocking,
            DelayChoice::SyncRefined,
        );
        assert_eq!(opt.cfg, cfg);
        assert_eq!(opt.stats, OptStats::default());
    }

    #[test]
    fn pipelined_level_splits_all_accesses() {
        let opt = pipeline(
            "shared int X; shared int Y; fn main() { int v; v = X; Y = v; }",
            OptLevel::Pipelined,
            DelayChoice::SyncRefined,
        );
        assert_eq!(opt.stats.gets_split, 1);
        assert_eq!(opt.stats.puts_split, 1);
        assert_eq!(count(&opt.cfg, |i| matches!(i, Instr::GetShared { .. })), 0);
        assert_eq!(count(&opt.cfg, |i| matches!(i, Instr::PutShared { .. })), 0);
        assert_eq!(count(&opt.cfg, |i| matches!(i, Instr::GetInit { .. })), 1);
        assert_eq!(count(&opt.cfg, |i| matches!(i, Instr::PutInit { .. })), 1);
        assert_eq!(count(&opt.cfg, |i| matches!(i, Instr::SyncCtr { .. })), 2);
    }

    #[test]
    fn one_way_conversion_at_barrier() {
        // A put whose sync can ride to the barrier becomes a store.
        let opt = pipeline(
            r#"
            shared int A[64];
            fn main() {
                int v;
                A[MYPROC + 1] = 7;
                work(100);
                barrier;
                v = A[MYPROC];
            }
            "#,
            OptLevel::OneWay,
            DelayChoice::SyncRefined,
        );
        assert_eq!(opt.stats.puts_to_stores, 1, "stats: {:?}", opt.stats);
        assert_eq!(count(&opt.cfg, |i| matches!(i, Instr::StoreInit { .. })), 1);
        assert_eq!(count(&opt.cfg, |i| matches!(i, Instr::PutInit { .. })), 0);
    }

    #[test]
    fn baseline_delay_choice_is_more_constrained() {
        // Post-wait protected producer/consumer: the refined set lets the
        // producer's two puts overlap; the baseline forces a sync between.
        let src = r#"
            shared int X; shared int Y; flag F;
            fn main() {
                int v;
                if (MYPROC == 0) { X = 1; Y = 2; post F; }
                else { wait F; v = Y; v = X; }
            }
        "#;
        let base = pipeline(src, OptLevel::Pipelined, DelayChoice::ShashaSnir);
        let opt = pipeline(src, OptLevel::Pipelined, DelayChoice::SyncRefined);
        assert!(
            opt.stats.sync_moves > base.stats.sync_moves,
            "refined should move syncs further: base {:?} vs opt {:?}",
            base.stats,
            opt.stats
        );
    }
}
