//! Fence insertion for weakly-ordered shared-memory machines.
//!
//! The paper notes its analysis "could also be used for compiling weak
//! memory programs" since "it can determine when code motion is legal"
//! (§9, the Adve/Hill and DASH line of related work). On such a machine
//! the compiler does not split accesses; it inserts **memory fences** so
//! the hardware cannot reorder a delayed pair. This module plans a fence
//! set that covers a delay set:
//!
//! * a delay `(u, v)` is *covered* if every path from `u` to `v` crosses a
//!   fence (we place fences in `v`'s block, which every path to `v` enters);
//! * blocking synchronization operations (`wait`, `barrier`, `lock`,
//!   `unlock`, `post`) act as implicit fences — real implementations fence
//!   inside them — so delays already separated by one cost nothing;
//! * within a block, one fence can cover many pairs (classic interval
//!   stabbing, greedily placing each fence as late as legality allows).
//!
//! The fence *count* is the cost metric: every fence is a full write-buffer
//! drain. The `fences` harness compares counts under `D_SS` vs the refined
//! delay set — the weak-memory analog of Figure 12.

use std::collections::HashMap;
use syncopt_core::DelaySet;
use syncopt_ir::cfg::{Cfg, Instr};
use syncopt_ir::ids::{BlockId, Position};

/// A planned fence set.
#[derive(Debug, Clone)]
pub struct FencePlan {
    /// Fence positions: the fence sits immediately *before* the
    /// instruction at each position.
    pub fences: Vec<Position>,
    /// Delay pairs satisfied by an implicit fence (a blocking sync op).
    pub covered_by_sync: usize,
    /// Delay pairs that required an explicit fence.
    pub covered_by_fence: usize,
}

impl FencePlan {
    /// Number of explicit fences.
    pub fn len(&self) -> usize {
        self.fences.len()
    }

    /// Whether no explicit fences are needed.
    pub fn is_empty(&self) -> bool {
        self.fences.is_empty()
    }
}

/// Whether an instruction acts as an implicit full fence.
fn implicit_fence(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::Barrier { .. }
            | Instr::Wait { .. }
            | Instr::Post { .. }
            | Instr::LockAcq { .. }
            | Instr::LockRel { .. }
            | Instr::SyncCtr { .. }
    )
}

/// Plans fences covering `delay` on the (blocking-access) source CFG.
///
/// # Panics
///
/// Panics if `delay` was computed for a different CFG.
pub fn plan_fences(cfg: &Cfg, delay: &DelaySet) -> FencePlan {
    assert_eq!(delay.num_accesses(), cfg.accesses.len());
    let mut covered_by_sync = 0;
    // Intervals per block: for pair (u, v), an explicit fence must sit at
    // some index in (lo, hi] of v's block, where hi = v's index and lo =
    // u's index when u shares the block (else block start).
    let mut intervals: HashMap<BlockId, Vec<(usize, usize)>> = HashMap::new();
    'pairs: for (u, v) in delay.pairs() {
        let pu = cfg.accesses.info(u).pos;
        let pv = cfg.accesses.info(v).pos;
        // A blocking sync op as the *source* fences by itself: nothing
        // after it issues until it completes.
        if implicit_fence(&cfg.block(pu.block).instrs[pu.instr]) {
            covered_by_sync += 1;
            continue 'pairs;
        }
        let lo = if pu.block == pv.block && pu.instr < pv.instr {
            pu.instr + 1
        } else {
            0
        };
        // Implicit fence between lo and pv.instr?
        for idx in lo..pv.instr {
            if implicit_fence(&cfg.block(pv.block).instrs[idx]) {
                covered_by_sync += 1;
                continue 'pairs;
            }
        }
        // v itself blocking? Then ordering is trivial (it cannot issue
        // early); treat as sync-covered.
        if implicit_fence(&cfg.block(pv.block).instrs[pv.instr]) {
            covered_by_sync += 1;
            continue 'pairs;
        }
        intervals.entry(pv.block).or_default().push((lo, pv.instr));
    }

    // Greedy interval stabbing per block: sort by right endpoint, place a
    // fence at the right endpoint unless one already stabs the interval.
    let mut fences = Vec::new();
    let mut covered_by_fence = 0;
    let mut blocks: Vec<_> = intervals.into_iter().collect();
    blocks.sort_by_key(|(b, _)| *b);
    for (block, mut ivs) in blocks {
        ivs.sort_by_key(|&(_, hi)| hi);
        let mut placed: Vec<usize> = Vec::new();
        for (lo, hi) in ivs {
            covered_by_fence += 1;
            if placed.iter().any(|&f| lo <= f && f <= hi) {
                continue;
            }
            placed.push(hi);
            fences.push(Position::new(block, hi));
        }
    }
    fences.sort();
    fences.dedup();
    FencePlan {
        fences,
        covered_by_sync,
        covered_by_fence,
    }
}

/// The fence-site export the lint engine's coverage verifier consumes:
/// the delay pairs still live on a (possibly optimized) CFG, and the
/// fences planned for exactly those pairs.
#[derive(Debug, Clone)]
pub struct FenceSites {
    /// Delay pairs whose endpoints are both still present in the CFG.
    pub delay: DelaySet,
    /// The plan computed for those pairs.
    pub plan: FencePlan,
}

/// Restricts `delay` to pairs whose endpoints survive in `cfg` — the
/// elimination passes of the higher optimization levels remove accesses,
/// leaving their recorded positions stale — and plans fences for the
/// remainder. The result is what `syncoptc lint`'s fence-coverage
/// verifier checks per optimization level.
///
/// # Panics
///
/// Panics if `delay` was computed for a different access table.
pub fn export_fence_sites(cfg: &Cfg, delay: &DelaySet) -> FenceSites {
    assert_eq!(delay.num_accesses(), cfg.accesses.len());
    let mut live = DelaySet::new(delay.num_accesses());
    for (u, v) in delay.pairs() {
        if cfg.instr_for_access(u).is_some() && cfg.instr_for_access(v).is_some() {
            live.insert(u, v);
        }
    }
    let plan = plan_fences(cfg, &live);
    FenceSites { delay: live, plan }
}

/// Checks that `plan` covers every pair of `delay` (test helper and
/// debug-assertion for harnesses): each pair must be separated by an
/// explicit fence or an implicit one on the straight-line region checked
/// by the planner.
pub fn plan_covers(cfg: &Cfg, delay: &DelaySet, plan: &FencePlan) -> bool {
    'pairs: for (u, v) in delay.pairs() {
        let pu = cfg.accesses.info(u).pos;
        let pv = cfg.accesses.info(v).pos;
        if implicit_fence(&cfg.block(pu.block).instrs[pu.instr]) {
            continue 'pairs;
        }
        let lo = if pu.block == pv.block && pu.instr < pv.instr {
            pu.instr + 1
        } else {
            0
        };
        for idx in lo..=pv.instr {
            if idx < pv.instr && implicit_fence(&cfg.block(pv.block).instrs[idx]) {
                continue 'pairs;
            }
            if idx == pv.instr && implicit_fence(&cfg.block(pv.block).instrs[idx]) {
                continue 'pairs;
            }
        }
        let stabbed = plan
            .fences
            .iter()
            .any(|f| f.block == pv.block && lo <= f.instr && f.instr <= pv.instr);
        if !stabbed {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_core::analyze_for;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    fn plan(src: &str, refined: bool) -> (Cfg, FencePlan) {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let a = analyze_for(&cfg, 4);
        let d = if refined { &a.delay_sync } else { &a.delay_ss };
        let p = plan_fences(&cfg, d);
        assert!(plan_covers(&cfg, d, &p), "plan must cover its delay set");
        (cfg, p)
    }

    #[test]
    fn figure1_needs_two_fences() {
        let src = r#"
            shared int Data; shared int Flag;
            fn main() {
                int v; int w;
                if (MYPROC == 0) { Data = 1; Flag = 1; }
                else { v = Flag; w = Data; }
            }
        "#;
        let (_, p) = plan(src, true);
        assert_eq!(p.len(), 2, "one per side of the figure-eight: {p:?}");
        assert_eq!(p.covered_by_sync, 0);
    }

    #[test]
    fn no_delays_no_fences() {
        let (_, p) = plan(
            "shared int A[64]; fn main() { A[MYPROC] = 1; A[MYPROC] = 2; }",
            true,
        );
        assert!(p.is_empty());
    }

    #[test]
    fn sync_ops_are_free_fences() {
        // Every delay in this program targets or crosses a sync op.
        let src = r#"
            shared int X; flag F;
            fn main() {
                int v;
                if (MYPROC == 0) { X = 1; post F; }
                else { wait F; v = X; }
            }
        "#;
        let (_, p) = plan(src, true);
        assert!(p.is_empty(), "{p:?}");
        assert!(p.covered_by_sync > 0);
    }

    #[test]
    fn one_fence_covers_stacked_pairs() {
        // Several writes all delayed against a final read pair: interval
        // stabbing shares fences.
        let src = r#"
            shared int A; shared int B; shared int C; shared int Flag;
            fn main() {
                int v;
                if (MYPROC == 0) { A = 1; B = 2; C = 3; Flag = 1; }
                else { v = Flag; v = C; v = B; v = A; }
            }
        "#;
        let (_, pss) = plan(src, false);
        // Far fewer fences than delay pairs.
        assert!(pss.len() < pss.covered_by_fence, "{pss:?}");
    }

    #[test]
    fn export_fence_sites_filters_dead_accesses_and_still_covers() {
        use crate::{optimize, DelayChoice, OptLevel};
        for kernel in syncopt_kernels::all_kernels(4) {
            let cfg = lower_main(&prepare_program(&kernel.source).unwrap()).unwrap();
            let a = analyze_for(&cfg, 4);
            for level in [
                OptLevel::Blocking,
                OptLevel::Pipelined,
                OptLevel::OneWay,
                OptLevel::Full,
            ] {
                let opt = optimize(&cfg, &a, level, DelayChoice::SyncRefined);
                let sites = export_fence_sites(&opt.cfg, &a.delay_sync);
                assert!(
                    sites.delay.len() <= a.delay_sync.len(),
                    "{}: live pairs cannot grow",
                    kernel.name
                );
                assert!(
                    plan_covers(&opt.cfg, &sites.delay, &sites.plan),
                    "{}@{level:?}: plan must cover the live pairs",
                    kernel.name
                );
            }
        }
    }

    #[test]
    fn refined_delays_need_fewer_fences_on_kernels() {
        for kernel in syncopt_kernels::all_kernels(4) {
            let cfg = lower_main(&prepare_program(&kernel.source).unwrap()).unwrap();
            let a = analyze_for(&cfg, 4);
            let pss = plan_fences(&cfg, &a.delay_ss);
            let pref = plan_fences(&cfg, &a.delay_sync);
            assert!(plan_covers(&cfg, &a.delay_ss, &pss));
            assert!(plan_covers(&cfg, &a.delay_sync, &pref));
            assert!(
                pref.len() <= pss.len(),
                "{}: refined {} vs ss {}",
                kernel.name,
                pref.len(),
                pss.len()
            );
        }
    }
}
