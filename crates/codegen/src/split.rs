//! Split-phase conversion (§6, "the first step in code generation").
//!
//! `v = read X` becomes `get_ctr(v, X, c); sync_ctr(c)` and
//! `write X = e` becomes `put_ctr(X, e, c); sync_ctr(c)`. The transformation
//! is *always* legal; the later motion passes create the actual overlap.
//! Every access gets its own synchronizing counter so its completion can be
//! tracked independently (counters are merged implicitly when syncs merge).

use crate::OptStats;
use std::collections::HashMap;
use syncopt_ir::cfg::{Cfg, CtrId, Instr};
use syncopt_ir::ids::AccessId;

/// What a synchronizing counter tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtrInfo {
    /// The access whose completion the counter observes.
    pub access: AccessId,
    /// For gets: the destination local that becomes valid at sync time.
    pub get_dst: Option<syncopt_ir::ids::VarId>,
}

/// Maps each synchronizing counter to what it tracks.
pub type CtrMap = HashMap<CtrId, CtrInfo>;

/// Rewrites all blocking shared accesses into adjacent
/// initiation/synchronization pairs. Returns the counter→access map.
pub fn split_phase(cfg: &mut Cfg, stats: &mut OptStats) -> CtrMap {
    let mut ctr_map = CtrMap::new();
    for bi in 0..cfg.blocks.len() {
        let block = syncopt_ir::ids::BlockId::from_index(bi);
        let old = std::mem::take(&mut cfg.block_mut(block).instrs);
        let mut new = Vec::with_capacity(old.len() * 2);
        for instr in old {
            match instr {
                Instr::GetShared { access, dst, src } => {
                    let ctr = cfg.fresh_ctr();
                    ctr_map.insert(
                        ctr,
                        CtrInfo {
                            access,
                            get_dst: Some(dst),
                        },
                    );
                    stats.gets_split += 1;
                    new.push(Instr::GetInit {
                        access,
                        dst,
                        src,
                        ctr,
                    });
                    new.push(Instr::SyncCtr { ctr });
                }
                Instr::PutShared { access, dst, src } => {
                    let ctr = cfg.fresh_ctr();
                    ctr_map.insert(
                        ctr,
                        CtrInfo {
                            access,
                            get_dst: None,
                        },
                    );
                    stats.puts_split += 1;
                    new.push(Instr::PutInit {
                        access,
                        dst,
                        src,
                        ctr,
                    });
                    new.push(Instr::SyncCtr { ctr });
                }
                other => new.push(other),
            }
        }
        cfg.block_mut(block).instrs = new;
    }
    cfg.recompute_access_positions();
    ctr_map
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    fn split(src: &str) -> (Cfg, CtrMap, OptStats) {
        let mut cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let mut stats = OptStats::default();
        let map = split_phase(&mut cfg, &mut stats);
        (cfg, map, stats)
    }

    #[test]
    fn each_access_gets_its_own_counter() {
        let (cfg, map, stats) =
            split("shared int X; shared int Y; fn main() { int v; v = X; Y = v; Y = v + 1; }");
        assert_eq!(stats.gets_split, 1);
        assert_eq!(stats.puts_split, 2);
        assert_eq!(map.len(), 3);
        // Counters are distinct and mapped to distinct accesses.
        let mut accesses: Vec<AccessId> = map.values().map(|i| i.access).collect();
        accesses.sort();
        accesses.dedup();
        assert_eq!(accesses.len(), 3);
        // Gets record their destination; puts do not.
        assert_eq!(map.values().filter(|i| i.get_dst.is_some()).count(), 1);
        cfg.validate().unwrap();
    }

    #[test]
    fn sync_follows_initiation_immediately() {
        let (cfg, map, _) = split("shared int X; fn main() { int v; v = X; }");
        let entry = cfg.block(cfg.entry);
        let Instr::GetInit { ctr, .. } = &entry.instrs[0] else {
            panic!("expected get init first: {:?}", entry.instrs);
        };
        let Instr::SyncCtr { ctr: sctr } = &entry.instrs[1] else {
            panic!("expected sync second");
        };
        assert_eq!(ctr, sctr);
        assert!(map.contains_key(ctr));
    }

    #[test]
    fn sync_and_local_ops_are_untouched() {
        let (cfg, _, _) = split("flag f; fn main() { int a; a = 1; work(a); barrier; post f; }");
        let kinds: Vec<&Instr> = cfg.blocks.iter().flat_map(|b| b.instrs.iter()).collect();
        assert!(kinds.iter().any(|i| matches!(i, Instr::AssignLocal { .. })));
        assert!(kinds.iter().any(|i| matches!(i, Instr::Work { .. })));
        assert!(kinds.iter().any(|i| matches!(i, Instr::Barrier { .. })));
        assert!(kinds.iter().any(|i| matches!(i, Instr::Post { .. })));
        assert!(!kinds.iter().any(|i| matches!(i, Instr::SyncCtr { .. })));
    }

    #[test]
    fn access_positions_are_refreshed() {
        let (cfg, _, _) = split("shared int X; shared int Y; fn main() { int v; v = X; Y = v; }");
        for (id, _) in cfg.accesses.iter() {
            assert!(
                cfg.instr_for_access(id).is_some(),
                "stale position for {id}"
            );
        }
    }
}
