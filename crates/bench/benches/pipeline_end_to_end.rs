//! Criterion bench: the whole compiler pipeline (parse → check → inline →
//! lower → analyze → optimize) per kernel — the cost a source-to-source
//! translator like the paper's prototype pays per compilation unit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use syncopt::{compile, DelayChoice, OptLevel};
use syncopt_kernels::all_kernels;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_full");
    for kernel in all_kernels(16) {
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name),
            &kernel.source,
            |b, src| {
                b.iter(|| {
                    compile(
                        std::hint::black_box(src),
                        16,
                        OptLevel::Full,
                        DelayChoice::SyncRefined,
                    )
                    .expect("compiles")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline
);
criterion_main!(benches);
