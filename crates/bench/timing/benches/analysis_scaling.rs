//! Criterion bench: cycle-detection (back-path) cost as the program grows.
//!
//! Generates straight-line SPMD programs with `n` conflicting shared
//! accesses and measures Shasha–Snir delay-set construction — the
//! quadratic-ish core the SPMD two-copy reduction keeps tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::fmt::Write;
use syncopt_core::shasha_snir;
use syncopt_frontend::prepare_program;
use syncopt_ir::lower::lower_main;

fn program_with_accesses(n: usize) -> String {
    let vars = 8;
    let mut s = String::new();
    for v in 0..vars {
        writeln!(s, "shared int V{v};").unwrap();
    }
    writeln!(s, "fn main() {{").unwrap();
    writeln!(s, "    int t;").unwrap();
    for i in 0..n {
        if i % 2 == 0 {
            writeln!(s, "    V{} = {};", i % vars, i).unwrap();
        } else {
            writeln!(s, "    t = V{};", i % vars).unwrap();
        }
    }
    writeln!(s, "}}").unwrap();
    s
}

fn bench_cycle_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("shasha_snir");
    for n in [16usize, 32, 64, 128] {
        let src = program_with_accesses(n);
        let cfg = lower_main(&prepare_program(&src).unwrap()).unwrap();
        assert_eq!(cfg.accesses.len(), n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            b.iter(|| shasha_snir(std::hint::black_box(cfg)))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cycle_detection
);
criterion_main!(benches);
