//! Criterion bench: the whole compiler pipeline (parse → check → inline →
//! lower → analyze → optimize) per kernel — the cost a source-to-source
//! translator like the paper's prototype pays per compilation unit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use syncopt::{OptLevel, Syncopt};
use syncopt_kernels::all_kernels;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_full");
    for kernel in all_kernels(16) {
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name),
            &kernel.source,
            |b, src| {
                b.iter(|| {
                    Syncopt::new(std::hint::black_box(src))
                        .procs(16)
                        .level(OptLevel::Full)
                        .compile()
                        .expect("compiles")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline
);
criterion_main!(benches);
