//! Criterion bench: discrete-event simulator throughput — EM3D at three
//! machine sizes, reporting wall time per simulated run (the event count
//! grows with processors × steps × remote accesses).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use syncopt_frontend::prepare_program;
use syncopt_ir::lower::lower_main;
use syncopt_kernels::{em3d, KernelParams};
use syncopt_machine::{simulate, MachineConfig};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_em3d");
    for procs in [8u32, 16, 32] {
        let kernel = em3d::generate(&KernelParams::evaluation(procs));
        let cfg = lower_main(&prepare_program(&kernel.source).unwrap()).unwrap();
        let config = MachineConfig::cm5(procs);
        group.bench_with_input(BenchmarkId::from_parameter(procs), &cfg, |b, cfg| {
            b.iter(|| simulate(std::hint::black_box(cfg), &config).expect("simulates"))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simulator
);
criterion_main!(benches);
