//! Criterion bench: cost of the full §5 synchronization-aware refinement
//! on each evaluation kernel (dominators, D1, precedence fixpoint,
//! orientation, lock guards, final back-path pass).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use syncopt_core::{analyze_sync, SyncOptions};
use syncopt_frontend::prepare_program;
use syncopt_ir::lower::lower_main;
use syncopt_kernels::all_kernels;

fn bench_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze_sync");
    for kernel in all_kernels(16) {
        let cfg = lower_main(&prepare_program(&kernel.source).unwrap()).unwrap();
        let opts = SyncOptions {
            procs: Some(16),
            ..SyncOptions::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name),
            &cfg,
            |b, cfg| b.iter(|| analyze_sync(std::hint::black_box(cfg), &opts)),
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_refinement
);
criterion_main!(benches);
