//! Criterion bench: full-pipeline analysis cost over the synthetic
//! scaling trajectory (the wall-clock companion to the counter-based
//! `delay_scaling` report binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use syncopt_core::{analyze_with, SyncOptions};
use syncopt_frontend::prepare_program;
use syncopt_ir::lower::lower_main;
use syncopt_kernels::scaling::{generate, ScalingIdiom, ScalingParams};

fn bench_delay_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("delay_scaling");
    for (idiom, procs) in [(ScalingIdiom::Stencil, 16), (ScalingIdiom::Flag, 4)] {
        for unroll in [8, 32, 128] {
            let p = ScalingParams {
                idiom,
                unroll,
                procs,
            };
            let kernel = generate(&p);
            let cfg = lower_main(&prepare_program(&kernel.source).expect("parse")).expect("lower");
            for threads in [1usize, 4] {
                let opts = SyncOptions {
                    procs: Some(procs),
                    threads,
                    ..SyncOptions::default()
                };
                group.bench_with_input(
                    BenchmarkId::new(format!("{}_t{threads}", p.id()), cfg.accesses.len()),
                    &cfg,
                    |b, cfg| b.iter(|| analyze_with(cfg, &opts)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_delay_scaling);
criterion_main!(benches);
