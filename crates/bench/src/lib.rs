#![warn(missing_docs)]

//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index): `table1`, `fig12`, `fig13`,
//! `litmus`, `delay_sizes`.

pub mod sweep;

use syncopt::{DelayChoice, OptLevel, Syncopt, SyncoptError};
use syncopt_kernels::Kernel;
use syncopt_machine::{EngineKind, MachineConfig, SimOutputs, SimResult};

/// The three Figure 12 configurations, in the paper's bar order.
pub const FIGURE12_LEVELS: [(&str, OptLevel, DelayChoice); 3] = [
    ("unoptimized", OptLevel::Pipelined, DelayChoice::ShashaSnir),
    ("pipelined", OptLevel::Pipelined, DelayChoice::SyncRefined),
    ("one-way", OptLevel::OneWay, DelayChoice::SyncRefined),
];

/// Compiles a kernel at the given level and simulates it.
///
/// # Errors
///
/// Propagates pipeline errors.
///
/// # Panics
///
/// Panics if the kernel was generated for a different processor count than
/// `config.procs`.
pub fn run_kernel(
    kernel: &Kernel,
    config: &MachineConfig,
    level: OptLevel,
    choice: DelayChoice,
) -> Result<SimResult, SyncoptError> {
    assert_eq!(
        kernel.procs, config.procs,
        "kernel generated for a different machine size"
    );
    Ok(Syncopt::new(&kernel.source)
        .level(level)
        .delay(choice)
        .run(config)?
        .sim)
}

/// Like [`run_kernel`], but skips extraction of the final memory image
/// and barrier sequences ([`SimOutputs::lean`]) — the figure harnesses
/// only read cycle and message counts, so sweeping hundreds of
/// configurations does not pay for outputs nobody formats.
///
/// # Errors
///
/// Propagates pipeline errors.
///
/// # Panics
///
/// Panics if the kernel was generated for a different processor count than
/// `config.procs`.
pub fn run_kernel_lean(
    kernel: &Kernel,
    config: &MachineConfig,
    level: OptLevel,
    choice: DelayChoice,
) -> Result<SimResult, SyncoptError> {
    assert_eq!(
        kernel.procs, config.procs,
        "kernel generated for a different machine size"
    );
    let compiled = Syncopt::new(&kernel.source)
        .procs(config.procs)
        .level(level)
        .delay(choice)
        .compile()?;
    Ok(syncopt_machine::simulate_configured(
        &compiled.optimized.cfg,
        config,
        EngineKind::Calendar,
        SimOutputs::lean(),
    )?)
}

/// Like [`run_kernel_lean`], but runs the simulation on the sharded
/// conservative engine when `sim_shards > 1` (the sequential calendar
/// engine otherwise). Both paths produce bit-identical results for every
/// output a figure harness reads, so a harness can accept `--sim-shards`
/// without changing its report — the flag only changes how long the
/// sweep takes on a multi-core host.
///
/// # Errors
///
/// Propagates pipeline errors.
///
/// # Panics
///
/// Panics if the kernel was generated for a different processor count than
/// `config.procs`.
pub fn run_kernel_lean_sharded(
    kernel: &Kernel,
    config: &MachineConfig,
    level: OptLevel,
    choice: DelayChoice,
    sim_shards: usize,
) -> Result<SimResult, SyncoptError> {
    if sim_shards <= 1 {
        return run_kernel_lean(kernel, config, level, choice);
    }
    assert_eq!(
        kernel.procs, config.procs,
        "kernel generated for a different machine size"
    );
    let compiled = Syncopt::new(&kernel.source)
        .procs(config.procs)
        .level(level)
        .delay(choice)
        .compile()?;
    Ok(syncopt_machine::simulate_sharded(
        &compiled.optimized.cfg,
        config,
        sim_shards,
        SimOutputs::lean(),
    )?)
}

/// Renders a row of fixed-width right-aligned columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Renders a simple ASCII horizontal bar of `frac` (0..=1) out of `width`.
pub fn bar(frac: f64, width: usize) -> String {
    let n = (frac.clamp(0.0, 1.2) * width as f64).round() as usize;
    "#".repeat(n.min(width + width / 5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_kernels::all_kernels;

    #[test]
    fn figure12_levels_are_ordered_unopt_first() {
        assert_eq!(FIGURE12_LEVELS[0].0, "unoptimized");
        assert_eq!(FIGURE12_LEVELS[2].1, OptLevel::OneWay);
    }

    #[test]
    fn run_kernel_executes_every_kernel_small() {
        let config = MachineConfig::cm5(4);
        for kernel in all_kernels(4) {
            for (name, level, choice) in FIGURE12_LEVELS {
                let r = run_kernel(&kernel, &config, level, choice)
                    .unwrap_or_else(|e| panic!("{} at {name}: {e}", kernel.name));
                assert!(r.exec_cycles > 0);
            }
        }
    }

    #[test]
    fn optimization_monotonically_helps_on_kernels() {
        let config = MachineConfig::cm5(4);
        for kernel in all_kernels(4) {
            let unopt = run_kernel(
                &kernel,
                &config,
                OptLevel::Pipelined,
                DelayChoice::ShashaSnir,
            )
            .unwrap();
            let oneway =
                run_kernel(&kernel, &config, OptLevel::OneWay, DelayChoice::SyncRefined).unwrap();
            assert!(
                oneway.exec_cycles <= unopt.exec_cycles,
                "{}: one-way {} vs unopt {}",
                kernel.name,
                oneway.exec_cycles,
                unopt.exec_cycles
            );
            // Memory must be identical between levels.
            assert_eq!(unopt.memory, oneway.memory, "{}", kernel.name);
        }
    }

    #[test]
    fn lean_runner_matches_full_runner_timing() {
        let config = MachineConfig::cm5(4);
        for kernel in all_kernels(4) {
            let full = run_kernel(&kernel, &config, OptLevel::OneWay, DelayChoice::SyncRefined)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            let lean =
                run_kernel_lean(&kernel, &config, OptLevel::OneWay, DelayChoice::SyncRefined)
                    .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            assert_eq!(full.exec_cycles, lean.exec_cycles, "{}", kernel.name);
            assert_eq!(full.net, lean.net, "{}", kernel.name);
            assert!(!full.memory.is_empty(), "{}", kernel.name);
            assert!(lean.memory.is_empty(), "{}", kernel.name);
        }
    }

    #[test]
    fn sharded_runner_matches_sequential_runner() {
        let config = MachineConfig::cm5(4);
        for kernel in all_kernels(4) {
            let seq =
                run_kernel_lean(&kernel, &config, OptLevel::OneWay, DelayChoice::SyncRefined)
                    .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            for shards in [1, 2, 4] {
                let sharded = run_kernel_lean_sharded(
                    &kernel,
                    &config,
                    OptLevel::OneWay,
                    DelayChoice::SyncRefined,
                    shards,
                )
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
                assert_eq!(seq.exec_cycles, sharded.exec_cycles, "{}", kernel.name);
                assert_eq!(seq.net, sharded.net, "{}", kernel.name);
                assert_eq!(seq.stalls, sharded.stalls, "{}", kernel.name);
            }
        }
    }

    #[test]
    fn bar_and_row_render() {
        assert_eq!(bar(0.5, 10), "#####");
        assert_eq!(bar(0.0, 10), "");
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
