//! Regenerates **Table 1** of the paper: access latencies for local and
//! remote memory modules, in machine cycles.
//!
//! The configured column comes from the machine presets; the measured
//! column runs a two-processor micro-benchmark on the simulator (one
//! blocking read of a remote/local scalar) and reports the observed cost,
//! demonstrating that the simulator realizes the configured latencies.

use syncopt::{OptLevel, Syncopt};
use syncopt_bench::row;
use syncopt_machine::MachineConfig;

fn measure(config: &MachineConfig, remote: bool) -> u64 {
    // X is homed on processor 0; processor 1 reads it remotely, processor
    // 0 locally. `work(0)` keeps the other processor busy-free.
    let src = if remote {
        "shared int X; fn main() { if (MYPROC == 1) { int v; v = X; } }"
    } else {
        "shared int X; fn main() { if (MYPROC == 0) { int v; v = X; } }"
    };
    let r = Syncopt::new(src)
        .level(OptLevel::Blocking)
        .run(config)
        .expect("micro-benchmark must run");
    let p = if remote { 1 } else { 0 };
    // Subtract the branch-evaluation cost to isolate the access.
    r.sim.proc_cycles[p] - config.local_op_cycles
}

fn main() {
    println!("Table 1: access latencies for local and remote memory modules");
    println!("(machine cycles; paper values: CM-5 400/30, T3D 85/23, DASH 110/26)\n");
    let widths = [8, 18, 18, 16, 16];
    println!(
        "{}",
        row(
            &[
                "machine".into(),
                "remote (config)".into(),
                "remote (meas.)".into(),
                "local (config)".into(),
                "local (meas.)".into(),
            ],
            &widths
        )
    );
    for config in MachineConfig::table1(2) {
        let remote = measure(&config, true);
        let local = measure(&config, false);
        println!(
            "{}",
            row(
                &[
                    config.name.clone(),
                    config.remote_round_trip().to_string(),
                    remote.to_string(),
                    config.local_access_cycles.to_string(),
                    local.to_string(),
                ],
                &widths
            )
        );
    }
}
