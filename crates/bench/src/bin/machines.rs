//! Cross-machine comparison — the paper's closing claim: "The relative
//! speedups should be even higher on machines with lower communication
//! startup costs or longer relative latencies" (§8).
//!
//! Runs every kernel on all three Table 1 machines at both ends of the
//! optimization spectrum and reports the relative improvement, plus the
//! latency each machine can hide per split-phase operation.
//!
//! ```text
//! machines [--procs N] [--preset full|smoke] [--threads T]
//! ```
//!
//! Kernel × machine pairs fan out across `--threads` workers with a
//! fixed-order merge, so the report is identical at any thread count.

use syncopt_bench::sweep::{self, run_ordered};
use syncopt_bench::{row, run_kernel_lean};
use syncopt_codegen::{DelayChoice, OptLevel};
use syncopt_kernels::all_kernels;
use syncopt_machine::MachineConfig;

fn main() {
    let opts = sweep::parse_args("machines");
    let procs = opts.procs_or(16, 4);
    println!("Optimization payoff per machine ({procs} processors)\n");
    let widths = [10, 8, 12, 12, 9, 13];
    println!(
        "{}",
        row(
            &[
                "kernel".into(),
                "machine".into(),
                "unopt".into(),
                "optimized".into(),
                "gain".into(),
                "lat/startup".into(),
            ],
            &widths
        )
    );
    let mut specs = Vec::new();
    for kernel in all_kernels(procs) {
        for config in MachineConfig::table1(procs) {
            specs.push((kernel.clone(), config));
        }
    }
    let machines_per_kernel = MachineConfig::table1(procs).len();
    let lines = run_ordered(&specs, opts.threads, |(kernel, config)| {
        let unopt = run_kernel_lean(kernel, config, OptLevel::Pipelined, DelayChoice::ShashaSnir)
            .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name, config.name));
        let opt =
            run_kernel_lean(kernel, config, OptLevel::OneWay, DelayChoice::SyncRefined).unwrap();
        let gain = 100.0 * (unopt.exec_cycles - opt.exec_cycles) as f64 / unopt.exec_cycles as f64;
        let ratio = config.network_latency as f64 * 2.0 / config.send_overhead.max(1) as f64;
        row(
            &[
                kernel.name.into(),
                config.name.clone(),
                unopt.exec_cycles.to_string(),
                opt.exec_cycles.to_string(),
                format!("{gain:.1}%"),
                format!("{ratio:.1}"),
            ],
            &widths,
        )
    });
    for (i, line) in lines.iter().enumerate() {
        println!("{line}");
        if (i + 1) % machines_per_kernel == 0 {
            println!();
        }
    }
    println!("lat/startup = round-trip network latency / send overhead: the");
    println!("larger it is, the more latency one overlapped operation hides.");
}
