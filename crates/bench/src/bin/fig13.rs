//! Regenerates **Figure 13** of the paper: speedup curves for the
//! Epithelial application kernel with varying degrees of optimization, as
//! the processor count grows (the paper plots 0–40 processors on a CM-5;
//! we extend the axis to 64 to show the curves flattening).
//!
//! Strong scaling: the total problem size is fixed, so per-processor
//! compute shrinks as `P` grows while the transpose's communication volume
//! grows — the optimized versions scale visibly better, as in the paper.
//!
//! ```text
//! fig13 [--procs CAP] [--preset full|smoke] [--threads T] [--sim-shards S]
//! ```
//!
//! Processor counts fan out across `--threads` workers with a fixed-order
//! merge, and `--sim-shards S` runs each simulation on the sharded
//! conservative engine — both are bit-identity-preserving, so the report
//! is the same at any thread or shard count.

use syncopt_bench::sweep::{self, run_ordered};
use syncopt_bench::{row, run_kernel_lean_sharded, FIGURE12_LEVELS};
use syncopt_kernels::{epithel, KernelParams};
use syncopt_machine::MachineConfig;

/// Total elements across the machine (fixed for the sweep).
const TOTAL_ELEMS: u32 = 1152; // divisible by every processor count below

fn params(procs: u32) -> KernelParams {
    KernelParams {
        procs,
        elements_per_proc: TOTAL_ELEMS / procs,
        steps: 4,
        work_per_element: 5, // ×32 solver factor in the generator → 160 effective
    }
}

fn main() {
    let opts = sweep::parse_args("fig13");
    // Every count divides TOTAL_ELEMS; 48 and 64 extend past the paper's
    // 40-processor axis.
    let proc_counts = opts.filter_counts(&[1u32, 2, 4, 8, 16, 24, 32, 36, 48, 64], 3);
    println!("Figure 13: Epithel speedup vs processors (CM-5)\n");
    let widths = [6, 14, 14, 14, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "procs".into(),
                "unopt cycles".into(),
                "pipe cycles".into(),
                "1-way cycles".into(),
                "unopt spdup".into(),
                "pipe spdup".into(),
                "1-way spdup".into(),
            ],
            &widths
        )
    );
    let points = run_ordered(&proc_counts, opts.threads, |&procs| {
        let kernel = epithel::generate(&params(procs));
        let config = MachineConfig::cm5(procs);
        let mut cycles = [0u64; 3];
        for (i, (name, level, choice)) in FIGURE12_LEVELS.iter().enumerate() {
            let r = run_kernel_lean_sharded(&kernel, &config, *level, *choice, opts.sim_shards)
                .unwrap_or_else(|e| panic!("{procs} procs at {name}: {e}"));
            cycles[i] = r.exec_cycles;
        }
        (procs, cycles)
    });
    let mut baseline1: Option<[u64; 3]> = None;
    for (procs, cycles) in points {
        let base = *baseline1.get_or_insert(cycles);
        println!(
            "{}",
            row(
                &[
                    procs.to_string(),
                    cycles[0].to_string(),
                    cycles[1].to_string(),
                    cycles[2].to_string(),
                    format!("{:.2}", base[0] as f64 / cycles[0] as f64),
                    format!("{:.2}", base[1] as f64 / cycles[1] as f64),
                    format!("{:.2}", base[2] as f64 / cycles[2] as f64),
                ],
                &widths
            )
        );
    }
    println!("\nspeedup = T(1 proc, same config) / T(P procs)");
    println!("The optimized versions scale better: pipelining hides the");
    println!("transpose latency and one-way stores halve its message count.");
}
