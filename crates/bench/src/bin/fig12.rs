//! Regenerates **Figure 12** of the paper: execution times of the five
//! application kernels on a 64-processor CM-5, normalized so the code
//! generated *without* synchronization analysis (Shasha–Snir delays only)
//! is 1.0. The paper reports 20–35% improvements from message pipelining
//! plus one-way communication.
//!
//! Also prints the message-count breakdown per configuration, quantifying
//! the acknowledgement traffic that one-way conversion eliminates (§2).
//!
//! ```text
//! fig12 [--procs N] [--preset full|smoke] [--threads T]
//! ```
//!
//! Kernels fan out across `--threads` workers with a fixed-order merge,
//! so the report is identical at any thread count.

use syncopt_bench::sweep::{self, run_ordered};
use syncopt_bench::{bar, row, run_kernel_lean, FIGURE12_LEVELS};
use syncopt_kernels::all_kernels;
use syncopt_machine::MachineConfig;

fn main() {
    let opts = sweep::parse_args("fig12");
    let procs = opts.procs_or(64, 8);
    let config = MachineConfig::cm5(procs);
    println!(
        "Figure 12: normalized execution time, {} processors, {}",
        procs, config.name
    );
    println!("(bars: unoptimized = 1.0; paper reports 0.65-0.80 for the optimized code)\n");

    let widths = [10, 13, 10, 7, 9, 9, 8];
    println!(
        "{}",
        row(
            &[
                "kernel".into(),
                "config".into(),
                "cycles".into(),
                "norm".into(),
                "msgs".into(),
                "acks".into(),
                "stores".into(),
            ],
            &widths
        )
    );

    let kernels = all_kernels(procs);
    let blocks = run_ordered(&kernels, opts.threads, |kernel| {
        let mut block = String::new();
        let mut base = None;
        for (name, level, choice) in FIGURE12_LEVELS {
            let r = run_kernel_lean(kernel, &config, level, choice)
                .unwrap_or_else(|e| panic!("{} at {name}: {e}", kernel.name));
            let base_cycles = *base.get_or_insert(r.exec_cycles);
            let norm = r.exec_cycles as f64 / base_cycles as f64;
            block.push_str(&format!(
                "{}  |{}\n",
                row(
                    &[
                        kernel.name.into(),
                        name.into(),
                        r.exec_cycles.to_string(),
                        format!("{norm:.3}"),
                        r.net.total_messages().to_string(),
                        r.net.put_acks.to_string(),
                        r.net.store_requests.to_string(),
                    ],
                    &widths
                ),
                bar(norm, 40)
            ));
        }
        block
    });
    for block in blocks {
        print!("{block}");
        println!();
    }
    println!("norm < 1.0 means faster than the Shasha-Snir-only baseline.");
}
