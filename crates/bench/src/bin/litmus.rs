//! Regenerates the paper's semantic figures operationally (Figures 1–4):
//! for each litmus program it enumerates the sequentially consistent
//! outcomes and the weak-machine outcomes under three delay sets (none,
//! Shasha–Snir, synchronization-refined), showing which enforcement levels
//! preserve sequential consistency.

use syncopt_core::{analyze, DelaySet};
use syncopt_frontend::prepare_program;
use syncopt_ir::lower::lower_main;
use syncopt_machine::litmus::{sc_outcomes, weak_outcomes};

struct Case {
    name: &'static str,
    description: &'static str,
    src: &'static str,
}

const CASES: &[Case] = &[
    Case {
        name: "figure1",
        description: "flag/data figure-eight (reads: Flag, Data)",
        src: r#"
            shared int Data; shared int Flag;
            fn main() {
                int v; int w;
                if (MYPROC == 0) { Data = 1; Flag = 1; }
                else { v = Flag; w = Data; }
            }
        "#,
    },
    Case {
        name: "figure4",
        description: "same-order accesses, no delays required",
        src: r#"
            shared int Data; shared int Flag;
            fn main() {
                int v; int w;
                if (MYPROC == 0) { Data = 1; Flag = 1; }
                else { v = Data; w = Flag; }
            }
        "#,
    },
    Case {
        name: "dekker",
        description: "store-buffer litmus (reads: Y, X)",
        src: r#"
            shared int X; shared int Y;
            fn main() {
                int v;
                if (MYPROC == 0) { X = 1; v = Y; }
                else { Y = 1; v = X; }
            }
        "#,
    },
    Case {
        name: "figure5",
        description: "post-wait producer/consumer (reads: Y, X)",
        src: r#"
            shared int X; shared int Y; flag F;
            fn main() {
                int v; int w;
                if (MYPROC == 0) { X = 1; Y = 2; post F; }
                else { wait F; v = Y; w = X; }
            }
        "#,
    },
];

fn show(set: &std::collections::BTreeSet<Vec<i64>>) -> String {
    let mut parts: Vec<String> = set.iter().map(|o| format!("{o:?}")).collect();
    if parts.len() > 6 {
        let extra = parts.len() - 6;
        parts.truncate(6);
        parts.push(format!("... (+{extra})"));
    }
    parts.join(" ")
}

fn main() {
    println!("Litmus exploration: weak outcomes vs sequentially consistent outcomes\n");
    for case in CASES {
        let cfg = lower_main(&prepare_program(case.src).expect("parse")).expect("lower");
        let analysis = analyze(&cfg);
        let sc = sc_outcomes(&cfg, 2).expect("sc");
        let none = weak_outcomes(&cfg, &DelaySet::new(cfg.accesses.len()), 2).expect("weak");
        let ss = weak_outcomes(&cfg, &analysis.delay_ss, 2).expect("weak ss");
        let refined = weak_outcomes(&cfg, &analysis.delay_sync, 2).expect("weak sync");
        println!("{} — {}", case.name, case.description);
        println!("  SC outcomes:               {}", show(&sc));
        println!(
            "  no delays:                 {}  {}",
            show(&none),
            verdict(&none, &sc)
        );
        println!(
            "  Shasha-Snir delays ({:>3}):  {}  {}",
            analysis.delay_ss.len(),
            show(&ss),
            verdict(&ss, &sc)
        );
        println!(
            "  refined delays     ({:>3}):  {}  {}",
            analysis.delay_sync.len(),
            show(&refined),
            verdict(&refined, &sc)
        );
        println!();
    }
}

fn verdict(
    weak: &std::collections::BTreeSet<Vec<i64>>,
    sc: &std::collections::BTreeSet<Vec<i64>>,
) -> &'static str {
    if weak.is_subset(sc) {
        "[SC preserved]"
    } else {
        "[SC VIOLATED]"
    }
}
