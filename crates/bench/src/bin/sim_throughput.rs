//! Simulator-throughput sweep (std-only, no criterion).
//!
//! Runs the five evaluation kernels (bench problem sizes) through the
//! compile-and-simulate pipeline with both event-queue engines and
//! reports the deterministic simulator work counters plus coarse
//! wall-time buckets — the data behind the committed
//! `BENCH_sim_throughput.json` (schema `syncopt.bench_report.v1`, suite
//! `sim_throughput`, see docs/PERFORMANCE.md). Same engine as
//! `syncoptc bench --suite sim`.
//!
//! ```text
//! sim_throughput [--smoke] [--threads T] [--json] [--out PATH] [--check BASELINE]
//! ```

use std::process::ExitCode;
use syncopt::bench::TOLERANCE_PCT;
use syncopt::core::diag::json;
use syncopt::simbench::run_sim_bench;

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("sim_throughput: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<(), String> {
    let mut smoke = false;
    let mut threads = 1usize;
    let mut as_json = false;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--json" => as_json = true,
            "--threads" => {
                threads = argv
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--out" => out = Some(argv.next().ok_or("--out needs a path")?),
            "--check" => baseline = Some(argv.next().ok_or("--check needs a path")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let report = run_sim_bench(smoke, threads).map_err(|e| e.to_string())?;
    if let Some(path) = &out {
        std::fs::write(path, format!("{}\n", report.to_json()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if as_json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_table());
    }
    if let Some(path) = &baseline {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let value = json::Value::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        report
            .check_against(&value)
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("work counters within {TOLERANCE_PCT}% of {path}");
    }
    Ok(())
}
