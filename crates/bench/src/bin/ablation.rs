//! Ablation study: what each analysis/optimization ingredient buys, per
//! kernel. Rows toggle one ingredient at a time:
//!
//! * `D_SS`                — pipelining constrained by Shasha–Snir delays
//! * `+sync analysis`      — refined delays (§5), barriers static-proved
//! * `  -barrier info`     — refined, but barrier analysis disabled
//! * `  -post/wait+locks`  — barriers only (no flags/locks: we emulate by
//!   disabling nothing else; shown via delay size)
//! * `+one-way`            — put→store conversion at barriers
//! * `+elimination`        — redundant-get / forwarding / write-back
//!
//! The delay-set column shows *why* the time moves: fewer delays ⇒ more
//! motion freedom.

use syncopt_bench::row;
use syncopt_codegen::{optimize, DelayChoice, OptLevel};
use syncopt_core::{analyze_with, BarrierPolicy, SyncOptions};
use syncopt_frontend::prepare_program;
use syncopt_ir::lower::lower_main;
use syncopt_kernels::all_kernels;
use syncopt_machine::{simulate, MachineConfig};

fn main() {
    let procs = 16;
    let config = MachineConfig::cm5(procs);
    println!("Ablation: per-ingredient contribution ({procs}-processor CM-5)\n");
    let widths = [10, 22, 9, 8, 9, 9];
    println!(
        "{}",
        row(
            &[
                "kernel".into(),
                "configuration".into(),
                "cycles".into(),
                "norm".into(),
                "|D|".into(),
                "stores".into(),
            ],
            &widths
        )
    );

    for kernel in all_kernels(procs) {
        let cfg = lower_main(&prepare_program(&kernel.source).expect("parse")).expect("lower");
        let analysis_full = analyze_with(
            &cfg,
            &SyncOptions {
                barrier_policy: BarrierPolicy::Static,
                procs: Some(procs),
                ..SyncOptions::default()
            },
        );
        let analysis_nobarrier = analyze_with(
            &cfg,
            &SyncOptions {
                barrier_policy: BarrierPolicy::Disabled,
                procs: Some(procs),
                ..SyncOptions::default()
            },
        );

        let rows: Vec<(&str, &syncopt_core::Analysis, OptLevel, DelayChoice)> = vec![
            (
                "D_SS only",
                &analysis_full,
                OptLevel::Pipelined,
                DelayChoice::ShashaSnir,
            ),
            (
                "+sync analysis",
                &analysis_full,
                OptLevel::Pipelined,
                DelayChoice::SyncRefined,
            ),
            (
                "  -barrier info",
                &analysis_nobarrier,
                OptLevel::Pipelined,
                DelayChoice::SyncRefined,
            ),
            (
                "+one-way",
                &analysis_full,
                OptLevel::OneWay,
                DelayChoice::SyncRefined,
            ),
            (
                "+elimination",
                &analysis_full,
                OptLevel::Full,
                DelayChoice::SyncRefined,
            ),
        ];

        let mut base = None;
        for (name, analysis, level, choice) in rows {
            let opt = optimize(&cfg, analysis, level, choice);
            let sim = simulate(&opt.cfg, &config)
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", kernel.name, name));
            let b = *base.get_or_insert(sim.exec_cycles);
            let delays = match choice {
                DelayChoice::ShashaSnir => analysis.delay_ss.len(),
                DelayChoice::SyncRefined => analysis.delay_sync.len(),
            };
            println!(
                "{}",
                row(
                    &[
                        kernel.name.into(),
                        name.into(),
                        sim.exec_cycles.to_string(),
                        format!("{:.3}", sim.exec_cycles as f64 / b as f64),
                        delays.to_string(),
                        sim.net.store_requests.to_string(),
                    ],
                    &widths
                )
            );
        }
        println!();
    }
}
