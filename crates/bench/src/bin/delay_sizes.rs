//! Quantifies the paper's central qualitative claim — "our synchronization
//! analysis results in much smaller delay sets" (§8/§9) — per kernel:
//! access-site counts, conflict pairs, `|D_SS|` vs the refined `|D|`, the
//! reduction, the precedence-relation size, and how many barriers aligned
//! statically and how many accesses are lock-guarded.

use syncopt_bench::row;
use syncopt_core::analyze_for;
use syncopt_frontend::prepare_program;
use syncopt_ir::lower::lower_main;
use syncopt_kernels::all_kernels;

fn main() {
    let procs = 64;
    println!("Delay-set sizes per kernel ({procs} processors)\n");
    let widths = [10, 9, 10, 8, 8, 11, 7, 9, 9];
    println!(
        "{}",
        row(
            &[
                "kernel".into(),
                "accesses".into(),
                "conflicts".into(),
                "|D_SS|".into(),
                "|D|".into(),
                "reduction".into(),
                "|R|".into(),
                "barriers".into(),
                "guarded".into(),
            ],
            &widths
        )
    );
    for kernel in all_kernels(procs) {
        let cfg = lower_main(&prepare_program(&kernel.source).expect("parse")).expect("lower");
        let analysis = analyze_for(&cfg, procs);
        let s = analysis.stats();
        let guarded: usize = analysis
            .sync
            .guards
            .locks()
            .map(|l| analysis.sync.guards.guarded_by(l).len())
            .sum();
        let reduction = if s.delay_ss > 0 {
            100.0 * (s.delay_ss - s.delay_sync) as f64 / s.delay_ss as f64
        } else {
            0.0
        };
        println!(
            "{}",
            row(
                &[
                    kernel.name.into(),
                    s.accesses.to_string(),
                    s.conflict_pairs.to_string(),
                    s.delay_ss.to_string(),
                    s.delay_sync.to_string(),
                    format!("{reduction:.0}%"),
                    s.precedence_pairs.to_string(),
                    s.aligned_barriers.to_string(),
                    guarded.to_string(),
                ],
                &widths
            )
        );
    }
    println!("\n|D_SS| = Shasha-Snir delay pairs; |D| = after synchronization analysis;");
    println!("|R| = derived precedence pairs; guarded = lock-guarded accesses (§5.3).");
}
