//! Weak-memory backend harness: memory fences required per kernel when
//! compiling for a weakly-ordered shared-memory machine (the §9 use of the
//! analysis), under the Shasha–Snir delay set vs the refined one.

use syncopt_bench::row;
use syncopt_codegen::fences::{plan_covers, plan_fences};
use syncopt_core::analyze_for;
use syncopt_frontend::prepare_program;
use syncopt_ir::lower::lower_main;
use syncopt_kernels::all_kernels;

fn main() {
    let procs = 64;
    println!("Fence insertion for a weakly-ordered shared-memory machine");
    println!("({procs} processors; fences = full write-buffer drains per loop body)\n");
    let widths = [10, 12, 14, 12, 14, 12];
    println!(
        "{}",
        row(
            &[
                "kernel".into(),
                "fences(SS)".into(),
                "sync-free(SS)".into(),
                "fences(D)".into(),
                "sync-free(D)".into(),
                "reduction".into(),
            ],
            &widths
        )
    );
    for kernel in all_kernels(procs) {
        let cfg = lower_main(&prepare_program(&kernel.source).expect("parse")).expect("lower");
        let a = analyze_for(&cfg, procs);
        let pss = plan_fences(&cfg, &a.delay_ss);
        let pref = plan_fences(&cfg, &a.delay_sync);
        assert!(plan_covers(&cfg, &a.delay_ss, &pss));
        assert!(plan_covers(&cfg, &a.delay_sync, &pref));
        let reduction = if !pss.is_empty() {
            format!(
                "{:.0}%",
                100.0 * (pss.len() - pref.len()) as f64 / pss.len() as f64
            )
        } else {
            "-".to_string()
        };
        println!(
            "{}",
            row(
                &[
                    kernel.name.into(),
                    pss.len().to_string(),
                    pss.covered_by_sync.to_string(),
                    pref.len().to_string(),
                    pref.covered_by_sync.to_string(),
                    reduction,
                ],
                &widths
            )
        );
    }
    println!("\nsync-free = delay pairs already ordered by a blocking sync op");
    println!("(waits, barriers, locks fence implicitly).");
}
