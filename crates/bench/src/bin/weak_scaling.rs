//! Weak-scaling sweep (ours, complementing Figure 13's strong scaling):
//! per-processor work held constant while the machine grows, so ideal
//! scaling is *flat* execution time. The transpose's all-to-all traffic
//! still grows with `P`, which is exactly what pipelining and one-way
//! conversion absorb.
//!
//! ```text
//! weak_scaling [--procs CAP] [--preset full|smoke] [--threads T] [--sim-shards S]
//! ```
//!
//! Processor counts fan out across `--threads` workers with a fixed-order
//! merge, and `--sim-shards S` runs each simulation on the sharded
//! conservative engine — both are bit-identity-preserving, so the report
//! is the same at any thread or shard count. The 256- and 1024-processor
//! points are far past anything the sequential harness used to attempt;
//! budget minutes for the full grid (`--procs 64` caps it for a quick
//! look, and the smoke preset keeps only the first two points).

use syncopt_bench::sweep::{self, run_ordered};
use syncopt_bench::{row, run_kernel_lean_sharded, FIGURE12_LEVELS};
use syncopt_kernels::{epithel, KernelParams};
use syncopt_machine::MachineConfig;

fn main() {
    let opts = sweep::parse_args("weak_scaling");
    // 64/256/1024 extend the axis to the sharded engine's design sizes;
    // per-processor work is constant but the transpose volume is P², so
    // the large points dominate the sweep's wall clock.
    let proc_counts = opts.filter_counts(&[2u32, 4, 8, 16, 32, 64, 256, 1024], 2);
    println!("Weak scaling: Epithel, constant work per processor (CM-5)\n");
    let widths = [6, 14, 14, 14, 14];
    println!(
        "{}",
        row(
            &[
                "procs".into(),
                "unopt".into(),
                "pipelined".into(),
                "one-way".into(),
                "1-way/unopt".into(),
            ],
            &widths
        )
    );
    let points = run_ordered(&proc_counts, opts.threads, |&procs| {
        let kernel = epithel::generate(&KernelParams {
            procs,
            elements_per_proc: 16,
            steps: 4,
            work_per_element: 4,
        });
        let config = MachineConfig::cm5(procs);
        let mut cycles = [0u64; 3];
        for (i, (name, level, choice)) in FIGURE12_LEVELS.iter().enumerate() {
            cycles[i] =
                run_kernel_lean_sharded(&kernel, &config, *level, *choice, opts.sim_shards)
                    .unwrap_or_else(|e| panic!("{procs} procs at {name}: {e}"))
                    .exec_cycles;
        }
        (procs, cycles)
    });
    for (procs, cycles) in points {
        println!(
            "{}",
            row(
                &[
                    procs.to_string(),
                    cycles[0].to_string(),
                    cycles[1].to_string(),
                    cycles[2].to_string(),
                    format!("{:.3}", cycles[2] as f64 / cycles[0] as f64),
                ],
                &widths
            )
        );
    }
    println!("\nFlat columns = perfect weak scaling; the optimized versions stay");
    println!("much closer to flat as the all-to-all volume grows with P.");
}
