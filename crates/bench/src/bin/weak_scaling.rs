//! Weak-scaling sweep (ours, complementing Figure 13's strong scaling):
//! per-processor work held constant while the machine grows, so ideal
//! scaling is *flat* execution time. The transpose's all-to-all traffic
//! still grows with `P`, which is exactly what pipelining and one-way
//! conversion absorb.

use syncopt_bench::{row, run_kernel, FIGURE12_LEVELS};
use syncopt_kernels::{epithel, KernelParams};
use syncopt_machine::MachineConfig;

fn main() {
    let proc_counts = [2u32, 4, 8, 16, 32];
    println!("Weak scaling: Epithel, constant work per processor (CM-5)\n");
    let widths = [6, 14, 14, 14, 14];
    println!(
        "{}",
        row(
            &[
                "procs".into(),
                "unopt".into(),
                "pipelined".into(),
                "one-way".into(),
                "1-way/unopt".into(),
            ],
            &widths
        )
    );
    for procs in proc_counts {
        let kernel = epithel::generate(&KernelParams {
            procs,
            elements_per_proc: 16,
            steps: 4,
            work_per_element: 4,
        });
        let config = MachineConfig::cm5(procs);
        let mut cycles = [0u64; 3];
        for (i, (name, level, choice)) in FIGURE12_LEVELS.iter().enumerate() {
            cycles[i] = run_kernel(&kernel, &config, *level, *choice)
                .unwrap_or_else(|e| panic!("{procs} procs at {name}: {e}"))
                .exec_cycles;
        }
        println!(
            "{}",
            row(
                &[
                    procs.to_string(),
                    cycles[0].to_string(),
                    cycles[1].to_string(),
                    cycles[2].to_string(),
                    format!("{:.3}", cycles[2] as f64 / cycles[0] as f64),
                ],
                &widths
            )
        );
    }
    println!("\nFlat columns = perfect weak scaling; the optimized versions stay");
    println!("much closer to flat as the all-to-all volume grows with P.");
}
