//! The shared sweep driver for the evaluation bench binaries.
//!
//! Every figure harness (`fig12`, `fig13`, `machines`, `weak_scaling`)
//! used to carry its own copy of the same boilerplate: pick a processor
//! count, generate kernels, run each configuration sequentially, print a
//! table. This module centralizes the two shared pieces:
//!
//! * [`SweepOptions`] / [`parse_args`] — the common `--procs`, `--preset`
//!   and `--threads` command line, so every harness can be shrunk for CI
//!   (`--preset smoke`) or resized (`--procs N`) uniformly;
//! * [`run_ordered`] — a deterministic parallel fan-out: independent
//!   sweep configurations are claimed from an atomic work index by up to
//!   `threads` workers, and the results are merged back **in spec
//!   order**. A harness that formats from the returned vector therefore
//!   emits a bit-identical report at any thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which configuration grid a harness should sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Preset {
    /// The full figure-quality grid (the default).
    #[default]
    Full,
    /// A small subset sized for CI smoke runs.
    Smoke,
}

/// The command line shared by the figure harnesses.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Override for the harness's default processor count (single-size
    /// harnesses) or an upper bound on the swept counts (scaling
    /// harnesses).
    pub procs: Option<u32>,
    /// Grid selection.
    pub preset: Preset,
    /// Worker threads for the sweep (1 = in-place sequential).
    pub threads: usize,
    /// Simulation shards per run (1 = the sequential calendar engine,
    /// >1 = the conservative sharded engine; bit-identical either way).
    pub sim_shards: usize,
}

impl SweepOptions {
    /// The harness's processor count: the `--procs` override, the smoke
    /// size under `--preset smoke`, or the full default.
    pub fn procs_or(&self, full: u32, smoke: u32) -> u32 {
        self.procs.unwrap_or(match self.preset {
            Preset::Full => full,
            Preset::Smoke => smoke,
        })
    }

    /// Filters a scaling harness's processor-count axis: the smoke preset
    /// keeps `smoke_len` points, and `--procs N` drops counts above `N`.
    pub fn filter_counts(&self, counts: &[u32], smoke_len: usize) -> Vec<u32> {
        let take = match self.preset {
            Preset::Full => counts.len(),
            Preset::Smoke => smoke_len.min(counts.len()),
        };
        counts
            .iter()
            .take(take)
            .copied()
            .filter(|&p| self.procs.is_none_or(|cap| p <= cap))
            .collect()
    }
}

/// Parses `--procs N`, `--preset full|smoke`, `--threads T`, and
/// `--sim-shards S` from the process arguments. Prints a usage line
/// naming `bin` and exits with status 2 on anything it does not
/// recognize, so each harness keeps a strict flag set.
pub fn parse_args(bin: &str) -> SweepOptions {
    match try_parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{bin}: {msg}");
            eprintln!(
                "usage: {bin} [--procs N] [--preset full|smoke] [--threads T] [--sim-shards S]"
            );
            std::process::exit(2);
        }
    }
}

fn try_parse(mut argv: impl Iterator<Item = String>) -> Result<SweepOptions, String> {
    let mut opts = SweepOptions {
        threads: 1,
        sim_shards: 1,
        ..SweepOptions::default()
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--procs" => {
                opts.procs = Some(
                    argv.next()
                        .ok_or("--procs needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --procs: {e}"))?,
                );
            }
            "--preset" => {
                opts.preset = match argv.next().ok_or("--preset needs a value")?.as_str() {
                    "full" => Preset::Full,
                    "smoke" => Preset::Smoke,
                    other => return Err(format!("unknown preset `{other}` (full|smoke)")),
                };
            }
            "--threads" => {
                opts.threads = argv
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--sim-shards" => {
                opts.sim_shards = argv
                    .next()
                    .ok_or("--sim-shards needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --sim-shards: {e}"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

/// Runs `work` over every spec, fanning independent specs across up to
/// `threads` workers, and returns the results **in spec order** — the
/// fixed-order merge that keeps harness output independent of the thread
/// count. With `threads <= 1` (or a single spec) the sweep runs in place
/// with no thread machinery at all.
pub fn run_ordered<S, R, F>(specs: &[S], threads: usize, work: F) -> Vec<R>
where
    S: Sync,
    R: Send,
    F: Fn(&S) -> R + Sync,
{
    let workers = threads.max(1).min(specs.len().max(1));
    if workers <= 1 {
        return specs.iter().map(work).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = specs.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(i) else { break };
                let result = work(spec);
                *slots[i].lock().expect("sweep slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep slot poisoned")
                .expect("every sweep slot is filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ordered_preserves_spec_order_at_any_thread_count() {
        let specs: Vec<u32> = (0..37).collect();
        let serial = run_ordered(&specs, 1, |&n| n * n);
        for threads in [2, 4, 9] {
            let threaded = run_ordered(&specs, threads, |&n| n * n);
            assert_eq!(serial, threaded, "threads={threads}");
        }
    }

    #[test]
    fn parse_accepts_the_shared_flags() {
        let opts = try_parse(
            [
                "--procs", "8", "--preset", "smoke", "--threads", "3", "--sim-shards", "4",
            ]
            .map(str::to_string)
            .into_iter(),
        )
        .unwrap();
        assert_eq!(opts.procs, Some(8));
        assert_eq!(opts.preset, Preset::Smoke);
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.sim_shards, 4);
        assert!(try_parse(["--bogus".to_string()].into_iter()).is_err());
        assert!(try_parse(["--preset".to_string(), "tiny".to_string()].into_iter()).is_err());
        assert!(try_parse(["--sim-shards".to_string()].into_iter()).is_err());
        assert_eq!(try_parse(std::iter::empty()).unwrap().sim_shards, 1);
    }

    #[test]
    fn procs_or_and_filter_counts_respect_preset_and_override() {
        let full = SweepOptions {
            threads: 1,
            ..SweepOptions::default()
        };
        assert_eq!(full.procs_or(64, 8), 64);
        assert_eq!(full.filter_counts(&[1, 2, 4, 8], 2), vec![1, 2, 4, 8]);

        let smoke = SweepOptions {
            preset: Preset::Smoke,
            threads: 1,
            ..SweepOptions::default()
        };
        assert_eq!(smoke.procs_or(64, 8), 8);
        assert_eq!(smoke.filter_counts(&[1, 2, 4, 8], 2), vec![1, 2]);

        let capped = SweepOptions {
            procs: Some(4),
            threads: 1,
            ..SweepOptions::default()
        };
        assert_eq!(capped.procs_or(64, 8), 4);
        assert_eq!(capped.filter_counts(&[1, 2, 4, 8], 2), vec![1, 2, 4]);
    }
}
