//! Conservative parallel (sharded) simulation engine.
//!
//! One simulation run is partitioned across host threads: simulated
//! processors are split into contiguous blocks, one block per **shard**,
//! and each shard advances its own event heap independently up to a
//! shared **synchronization horizon**. The horizon is the conservative
//! Chandy–Misra lookahead the Table 1 machine parameters guarantee:
//! every cross-shard interaction is carried by a message that takes at
//! least `network_latency` cycles, and every barrier release lands at
//! least `barrier_cycles` after its trigger, so a window of width
//! `min(network_latency, barrier_cycles)` can be simulated in parallel
//! with no shard ever seeing an event "from the past".
//!
//! Between windows the round **leader** drains per-shard-pair mailboxes
//! (cross-shard arrivals, replies, and acks routed while the window ran),
//! resolves completed barrier episodes, and picks the next window from
//! the global minimum pending timestamp.
//!
//! # Determinism: bit-identical to the sequential engines
//!
//! The sequential engines dispatch in `(time, seq)` order where `seq` is
//! global push order. A parallel run cannot reproduce a global push
//! counter, but it can reproduce the *order* it induces: every event is
//! keyed by the dispatch **position** of the event that pushed it plus
//! its local push index (`Key`). At equal timestamps, comparing keys
//! lexicographically through parent positions reproduces exactly the
//! sequential seq order (children are pushed in index order, and events
//! dispatched earlier push their children earlier). Each shard pops in
//! `(time, key)` order, so its dispatch sequence is the restriction of
//! the sequential dispatch sequence to the events it owns — and since
//! all shared state is partitioned by owner (processor state with the
//! owning shard, memory/flag/lock/handler state with the home's shard),
//! every observable except the [`SimWork`] engine counters is
//! bit-identical at any shard count. The three global couplings that do
//! not fit the partition are handled explicitly:
//!
//! * **split-phase receive steals** are scheduled by the *issuing* shard
//!   as local `Event::Credit`s keyed adjacent to the request's arrival
//!   (see `sim.rs`), or deferred into the wake-up delivery when the
//!   target is blocked;
//! * **barrier rendezvous and store quiescence** are resolved by the
//!   round leader from position-ordered arrival/store logs, recovering
//!   the exact sequential release time and re-injecting the release
//!   `Run`s with the keys the sequential engine would have assigned;
//! * **errors** are picked as the minimum dispatch position across
//!   shards, which is exactly the first error the sequential engine
//!   reports.

use crate::config::MachineConfig;
use crate::memory::Location;
use crate::metrics::{BarrierEpoch, LatencyHistogram, ProcCycles, SimMetrics, SimWork};
use crate::sim::{
    EngineKind, Event, NetStats, SimOutputs, SimResult, Simulator, StallStats, Status,
};
use crate::value::SimError;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::{Arc, Barrier, Mutex};
use syncopt_ir::cfg::Cfg;
use syncopt_ir::ids::AccessId;

/// A dispatch position: the timestamp of an event plus its tie-breaking
/// key. Total order over all events of a run.
#[derive(Debug)]
pub(crate) struct Pos {
    time: u64,
    key: Key,
}

/// The sequential engine's `seq` tie-break, reconstructed structurally: a
/// child's key is its parent's dispatch position plus the index of the
/// push within that dispatch. Seed `Run`s (pushed before the loop) have
/// no parent and are ordered by processor id, exactly like their
/// historical seqs `0..P`.
#[derive(Debug, Clone)]
pub(crate) struct Key {
    parent: Option<Arc<Pos>>,
    idx: u32,
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.parent, &other.parent) {
            (None, None) => self.idx.cmp(&other.idx),
            (None, Some(_)) => Ordering::Less,
            (Some(_), None) => Ordering::Greater,
            (Some(a), Some(b)) => {
                if Arc::ptr_eq(a, b) {
                    self.idx.cmp(&other.idx)
                } else {
                    // Distinct parents: the parents' dispatch order decides
                    // (push order follows dispatch order); idx only breaks
                    // the tie when the positions compare equal, which means
                    // they are the same position reached through different
                    // allocations.
                    a.as_ref()
                        .cmp(b.as_ref())
                        .then_with(|| self.idx.cmp(&other.idx))
                }
            }
        }
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Key {}

impl Ord for Pos {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.key.cmp(&other.key))
    }
}

impl PartialOrd for Pos {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Pos {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Pos {}

/// A keyed event in a shard heap or mailbox.
#[derive(Debug)]
pub(crate) struct ShardEvent {
    time: u64,
    key: Key,
    event: Event,
}

impl Ord for ShardEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.key.cmp(&other.key))
    }
}

impl PartialOrd for ShardEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for ShardEvent {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for ShardEvent {}

/// One processor's barrier arrival, logged for the round leader.
#[derive(Debug)]
struct BarrierArrival {
    proc: u32,
    arrive: u64,
    /// Dispatch position of the arriving `Run` — the leader's rendezvous
    /// point is the maximum of these.
    pos: Arc<Pos>,
    /// The push index the arriving dispatch had reached, so release
    /// `Run`s can be keyed exactly where the sequential engine pushes
    /// them (as the next children of the triggering dispatch).
    push_base: u32,
}

/// A store entering (+1) or leaving (-1) flight, in dispatch order.
#[derive(Debug)]
struct StoreDelta {
    pos: Arc<Pos>,
    delta: i64,
    /// Handler completion time of a drain (0 for inits); a drain-triggered
    /// barrier releases at `max(last_arrival, done) + barrier_cycles`.
    done: u64,
}

/// Per-shard engine state attached to a [`Simulator`]: the local event
/// heap, outgoing mailboxes, the current dispatch position (for keying
/// pushes), and the episode logs the round leader consumes.
#[derive(Debug)]
pub(crate) struct ShardCtx {
    id: u32,
    shard_of: Arc<Vec<u32>>,
    heap: BinaryHeap<Reverse<ShardEvent>>,
    /// Outgoing events per destination shard, drained by the leader at
    /// every horizon boundary (the mailbox-per-pair structure).
    outboxes: Vec<Vec<ShardEvent>>,
    cur_parent: Arc<Pos>,
    push_idx: u32,
    barrier_log: Vec<BarrierArrival>,
    store_log: Vec<StoreDelta>,
    cross_messages: u64,
    idle_windows: u64,
    error: Option<(Arc<Pos>, SimError)>,
}

impl ShardCtx {
    fn new(id: u32, shards: usize, shard_of: Arc<Vec<u32>>) -> Self {
        ShardCtx {
            id,
            shard_of,
            heap: BinaryHeap::new(),
            outboxes: (0..shards).map(|_| Vec::new()).collect(),
            cur_parent: Arc::new(Pos {
                time: 0,
                key: Key {
                    parent: None,
                    idx: u32::MAX,
                },
            }),
            push_idx: 0,
            barrier_log: Vec::new(),
            store_log: Vec::new(),
            cross_messages: 0,
            idle_windows: 0,
            error: None,
        }
    }

    /// Whether processor `p` belongs to this shard.
    pub(crate) fn owns(&self, p: u32) -> bool {
        self.shard_of[p as usize] == self.id
    }

    fn dest(&self, event: &Event) -> u32 {
        match event {
            Event::Run(p) => *p,
            Event::Arrive { home, .. } => *home,
            Event::Deliver { to, .. } => *to,
            Event::Credit { to, .. } => *to,
        }
    }

    /// Keys a pushed event as the next child of the current dispatch and
    /// routes it: own shard straight to the heap, otherwise into the
    /// destination's mailbox for the next horizon drain.
    pub(crate) fn route(&mut self, time: u64, event: Event, work: &mut SimWork) {
        work.events_scheduled += 1;
        let key = Key {
            parent: Some(Arc::clone(&self.cur_parent)),
            idx: self.push_idx,
        };
        self.push_idx += 1;
        let d = self.shard_of[self.dest(&event) as usize];
        let ev = ShardEvent { time, key, event };
        if d == self.id {
            self.heap.push(Reverse(ev));
        } else {
            self.cross_messages += 1;
            self.outboxes[d as usize].push(ev);
        }
    }

    pub(crate) fn log_barrier_arrival(&mut self, proc: u32, arrive: u64) {
        self.barrier_log.push(BarrierArrival {
            proc,
            arrive,
            pos: Arc::clone(&self.cur_parent),
            push_base: self.push_idx,
        });
    }

    pub(crate) fn log_store_init(&mut self) {
        self.store_log.push(StoreDelta {
            pos: Arc::clone(&self.cur_parent),
            delta: 1,
            done: 0,
        });
    }

    pub(crate) fn log_store_drain(&mut self, done: u64) {
        self.store_log.push(StoreDelta {
            pos: Arc::clone(&self.cur_parent),
            delta: -1,
            done,
        });
    }
}

/// Shared round control: the current window's exclusive end and the stop
/// flag, written by the leader between barrier generations.
struct Ctrl {
    window_end: u64,
    done: bool,
}

/// Round-leader state: accumulated episode logs, resolved epochs, the
/// shard-level counters, and the first error (by dispatch position).
struct LeaderState {
    arrivals: Vec<BarrierArrival>,
    /// Store flight deltas, globally sorted by dispatch position. Each
    /// window's batch is strictly later than everything pending, so
    /// sort-and-append keeps the whole vector ordered.
    deltas: Vec<StoreDelta>,
    episodes: Vec<BarrierEpoch>,
    horizon_advances: u64,
    mailbox_drains: u64,
    /// Next flat key rank (see [`flatten_keys`]); starts above the
    /// processor count so ranks never collide with seed ids at time 0.
    next_rank: u32,
    error: Option<SimError>,
}

/// Runs `cfg` on the machine described by `config`, sharding the
/// simulated processors across `shards` host threads (clamped to
/// `[1, procs]`). The result is bit-identical to [`crate::simulate`] for
/// every observable except the [`SimWork`] engine counters, at any shard
/// count — the differential suites assert exactly that.
///
/// # Errors
///
/// Same failure modes as [`crate::simulate`], reporting the identical
/// first error (runtime faults, deadlock, `max_steps`).
pub fn simulate_sharded(
    cfg: &Cfg,
    config: &MachineConfig,
    shards: usize,
    outputs: SimOutputs,
) -> Result<SimResult, SimError> {
    let procs = config.procs;
    let s = shards.max(1).min(procs.max(1) as usize);
    // The conservative lookahead: every cross-shard event lands at least
    // `network_latency` ahead of its creation, every barrier release at
    // least `barrier_cycles` ahead of its trigger.
    let horizon = config.network_latency.min(config.barrier_cycles).max(1);
    let block = (procs as usize).div_ceil(s);
    let shard_of: Arc<Vec<u32>> = Arc::new(
        (0..procs as usize)
            .map(|i| ((i / block).min(s - 1)) as u32)
            .collect(),
    );

    let mut sims: Vec<Mutex<Simulator>> = (0..s)
        .map(|id| {
            let mut sim = Simulator::new(cfg, config, EngineKind::Calendar, outputs);
            sim.shard = Some(Box::new(ShardCtx::new(
                id as u32,
                s,
                Arc::clone(&shard_of),
            )));
            Mutex::new(sim)
        })
        .collect();
    // Seed one Run per processor, keyed by processor id like the
    // sequential engine's seqs 0..P.
    for p in 0..procs {
        let sim = sims[shard_of[p as usize] as usize]
            .get_mut()
            .expect("fresh mutex");
        sim.metrics.work.events_scheduled += 1;
        let sh = sim.shard.as_mut().expect("shard ctx");
        sh.heap.push(Reverse(ShardEvent {
            time: 0,
            key: Key {
                parent: None,
                idx: p,
            },
            event: Event::Run(p),
        }));
    }

    let ctrl = Mutex::new(Ctrl {
        window_end: horizon,
        done: false,
    });
    let leader = Mutex::new(LeaderState {
        arrivals: Vec::new(),
        deltas: Vec::new(),
        episodes: Vec::new(),
        horizon_advances: 1,
        mailbox_drains: 0,
        next_rank: procs,
        error: None,
    });
    let gate = Barrier::new(s);

    std::thread::scope(|scope| {
        for sid in 0..s {
            let sims = &sims;
            let ctrl = &ctrl;
            let leader = &leader;
            let gate = &gate;
            let shard_of = &shard_of;
            scope.spawn(move || loop {
                let window_end = {
                    let c = ctrl.lock().expect("ctrl");
                    if c.done {
                        break;
                    }
                    c.window_end
                };
                process_window(&sims[sid], window_end);
                if gate.wait().is_leader() {
                    let mut st = leader.lock().expect("leader state");
                    let mut c = ctrl.lock().expect("ctrl");
                    leader_step(sims, shard_of, config, horizon, &mut st, &mut c);
                }
                gate.wait();
            });
        }
    });

    let mut sims: Vec<Simulator> = sims
        .into_iter()
        .map(|m| m.into_inner().expect("worker panicked"))
        .collect();
    let st = leader.into_inner().expect("leader state");
    if let Some(e) = st.error {
        return Err(e);
    }
    Ok(merge(&mut sims, &shard_of, config, outputs, st))
}

/// Drains one shard's events inside the window `[.., window_end)` in
/// `(time, key)` order.
fn process_window(m: &Mutex<Simulator>, window_end: u64) {
    let mut sim = m.lock().expect("shard sim");
    let mut processed = 0u64;
    loop {
        let (time, event, pos) = {
            let sh = sim.shard.as_mut().expect("shard ctx");
            match sh.heap.peek() {
                Some(Reverse(ev)) if ev.time < window_end => {}
                _ => break,
            }
            let Reverse(ev) = sh.heap.pop().expect("peeked");
            let pos = Arc::new(Pos {
                time: ev.time,
                key: ev.key,
            });
            sh.cur_parent = Arc::clone(&pos);
            sh.push_idx = 0;
            (ev.time, ev.event, pos)
        };
        sim.metrics.work.events_dequeued += 1;
        if let Err(e) = sim.dispatch(time, event) {
            sim.shard.as_mut().expect("shard ctx").error = Some((pos, e));
            break;
        }
        processed += 1;
    }
    if processed == 0 {
        // Conservative lookahead idling: the window held nothing for us.
        sim.shard.as_mut().expect("shard ctx").idle_windows += 1;
    }
}

/// The between-windows reduction: drain mailboxes and logs, surface the
/// first error, resolve a completed barrier episode, and open the next
/// window (or stop).
fn leader_step(
    sims: &[Mutex<Simulator>],
    shard_of: &[u32],
    config: &MachineConfig,
    horizon: u64,
    st: &mut LeaderState,
    ctrl: &mut Ctrl,
) {
    let s = sims.len();
    // Pass 1: collect outbox batches, episode logs, and errors.
    let mut moved: Vec<Vec<ShardEvent>> = (0..s).map(|_| Vec::new()).collect();
    let mut new_deltas: Vec<StoreDelta> = Vec::new();
    let mut errors: Vec<(Arc<Pos>, SimError)> = Vec::new();
    for m in sims {
        let mut sim = m.lock().expect("shard sim");
        let sh = sim.shard.as_mut().expect("shard ctx");
        for (batch, out) in sh.outboxes.iter_mut().zip(moved.iter_mut()) {
            if !batch.is_empty() {
                st.mailbox_drains += 1;
                out.append(batch);
            }
        }
        st.arrivals.append(&mut sh.barrier_log);
        new_deltas.append(&mut sh.store_log);
        if let Some(e) = sh.error.take() {
            errors.push(e);
        }
    }
    // The minimum error position is exactly the sequential engine's first
    // error: everything dispatched before it is identical in both runs.
    if let Some((_, e)) = errors.into_iter().min_by(|a, b| a.0.cmp(&b.0)) {
        st.error = Some(e);
        ctrl.done = true;
        return;
    }
    new_deltas.sort_by(|a, b| a.pos.cmp(&b.pos));
    st.deltas.extend(new_deltas);
    // Pass 2: distribute cross-shard events into destination heaps.
    for (d, batch) in moved.into_iter().enumerate() {
        if batch.is_empty() {
            continue;
        }
        let mut sim = sims[d].lock().expect("shard sim");
        let sh = sim.shard.as_mut().expect("shard ctx");
        for ev in batch {
            sh.heap.push(Reverse(ev));
        }
    }
    // Pass 3: resolve a completed barrier episode, if any.
    try_release(sims, shard_of, config, st);
    // Pass 4: flatten the live key structure so comparisons stay O(1).
    flatten_keys(sims, st);
    // Pass 5: open the next horizon window, or terminate.
    let mut t_min: Option<u64> = None;
    for m in sims {
        let sim = m.lock().expect("shard sim");
        if let Some(Reverse(ev)) = sim.shard.as_ref().expect("shard ctx").heap.peek() {
            t_min = Some(t_min.map_or(ev.time, |t| t.min(ev.time)));
        }
    }
    match t_min {
        Some(t) => {
            st.horizon_advances += 1;
            ctrl.window_end = t + horizon;
        }
        None => {
            // Event space exhausted: every processor must have finished,
            // otherwise this is the same deadlock the sequential engine
            // reports (same processors, same statuses).
            let mut statuses: Vec<Status> = Vec::with_capacity(shard_of.len());
            for (pi, &o) in shard_of.iter().enumerate() {
                let sim = sims[o as usize].lock().expect("shard sim");
                statuses.push(sim.procs[pi].status.clone());
            }
            let unfinished: Vec<usize> = statuses
                .iter()
                .enumerate()
                .filter(|(_, st)| **st != Status::Finished)
                .map(|(i, _)| i)
                .collect();
            if !unfinished.is_empty() {
                st.error = Some(SimError::new(format!(
                    "deadlock: processors {unfinished:?} blocked ({:?})",
                    statuses[unfinished[0]]
                )));
            }
            ctrl.done = true;
        }
    }
}

/// Rewrites this window's parent positions as depth-1 `(time, rank)`
/// positions, so key comparisons never walk a chain older than one
/// window.
///
/// Structural keys compare parents recursively, and the recursion only
/// stops early where ancestor times differ or an `Arc` is shared. In
/// lockstep SPMD programs (every processor running the identical cycle
/// schedule — Epithel's transpose phases are the worst case) events from
/// different processors tie on *every* ancestor time and share no
/// ancestry, so one comparison walks all the way to the seeds: O(causal
/// depth), which grows with simulated time and turns the heap quadratic.
///
/// The flattening is incremental and preserves the order exactly. A
/// position is *flat* when its own key has no parent (seed dispatches
/// are born flat). Each round, the positions minted by the finished
/// window — direct parents of pending events, plus logged barrier
/// arrivals and store deltas, which `try_release` later turns into
/// parents of release `Run`s — are sorted by the old structural order
/// (cheap: chains are at most one window deep) and re-keyed as `(time,
/// (None, rank))` from a monotonically growing counter. Parent-vs-parent
/// comparisons are unchanged: dispatch times decide across windows
/// (window time ranges are disjoint), and within a window the rank
/// reproduces the structural tie-break. The counter starts above the
/// processor count so flat ranks can never collide with the seeds' id
/// keys at time 0. Positions that compare equal through different
/// allocations share one flat position, so sibling `idx` tie-breaks keep
/// their meaning.
fn flatten_keys(sims: &[Mutex<Simulator>], st: &mut LeaderState) {
    #[derive(Clone, Copy)]
    enum Slot {
        /// `heaps[shard][item]`'s parent.
        Parent(usize, usize),
        Arrival(usize),
        Delta(usize),
    }
    let is_flat = |p: &Arc<Pos>| p.key.parent.is_none();
    // Drain the heaps into vectors so parents can be rewritten in place.
    let mut heaps: Vec<Vec<ShardEvent>> = Vec::with_capacity(sims.len());
    for m in sims {
        let mut sim = m.lock().expect("shard sim");
        let sh = sim.shard.as_mut().expect("shard ctx");
        heaps.push(
            std::mem::take(&mut sh.heap)
                .into_vec()
                .into_iter()
                .map(|Reverse(ev)| ev)
                .collect(),
        );
    }
    // Only this window's positions are non-flat; everything older was
    // flattened by an earlier round.
    let mut slots: Vec<Slot> = Vec::new();
    for (s, evs) in heaps.iter().enumerate() {
        for (i, ev) in evs.iter().enumerate() {
            if ev.key.parent.as_ref().is_some_and(|p| !is_flat(p)) {
                slots.push(Slot::Parent(s, i));
            }
        }
    }
    for (i, a) in st.arrivals.iter().enumerate() {
        if !is_flat(&a.pos) {
            slots.push(Slot::Arrival(i));
        }
    }
    for (i, d) in st.deltas.iter().enumerate() {
        if !is_flat(&d.pos) {
            slots.push(Slot::Delta(i));
        }
    }
    // Record, per sorted slot, the old time and whether the position
    // coincides with its predecessor (same allocation or equal content),
    // releasing the read borrow before rewriting.
    let mut times: Vec<u64> = Vec::with_capacity(slots.len());
    let mut same_as_prev: Vec<bool> = Vec::with_capacity(slots.len());
    {
        let pos_of = |slot: &Slot| -> &Arc<Pos> {
            match *slot {
                Slot::Parent(s, i) => heaps[s][i].key.parent.as_ref().expect("filtered above"),
                Slot::Arrival(i) => &st.arrivals[i].pos,
                Slot::Delta(i) => &st.deltas[i].pos,
            }
        };
        slots.sort_by(|a, b| pos_of(a).as_ref().cmp(pos_of(b).as_ref()));
        let mut prev: Option<&Arc<Pos>> = None;
        for slot in &slots {
            let p = pos_of(slot);
            same_as_prev.push(prev.is_some_and(|q| {
                Arc::ptr_eq(p, q) || q.as_ref().cmp(p.as_ref()) == Ordering::Equal
            }));
            times.push(p.time);
            prev = Some(p);
        }
    }
    let mut flat: Option<Arc<Pos>> = None;
    for (k, slot) in slots.iter().enumerate() {
        if flat.is_none() || !same_as_prev[k] {
            let idx = st.next_rank;
            st.next_rank = st.next_rank.checked_add(1).expect("rank space exhausted");
            flat = Some(Arc::new(Pos {
                time: times[k],
                key: Key { parent: None, idx },
            }));
        }
        let p = Arc::clone(flat.as_ref().expect("just set"));
        match *slot {
            Slot::Parent(s, i) => heaps[s][i].key.parent = Some(p),
            Slot::Arrival(i) => st.arrivals[i].pos = p,
            Slot::Delta(i) => st.deltas[i].pos = p,
        }
    }
    for (m, evs) in sims.iter().zip(heaps) {
        let mut sim = m.lock().expect("shard sim");
        let sh = sim.shard.as_mut().expect("shard ctx");
        sh.heap = evs.into_iter().map(Reverse).collect();
    }
}

/// Resolves the in-flight barrier episode once all processors have
/// arrived and the pre-barrier stores have drained, reproducing the
/// sequential release time, stall attribution, and release-event keys.
fn try_release(
    sims: &[Mutex<Simulator>],
    shard_of: &[u32],
    config: &MachineConfig,
    st: &mut LeaderState,
) {
    let procs = shard_of.len();
    if st.arrivals.len() < procs {
        return;
    }
    debug_assert_eq!(st.arrivals.len(), procs, "one arrival per processor");
    let max_arrival = st.arrivals.iter().map(|a| a.arrive).max().expect("nonempty");
    let min_arrival = st.arrivals.iter().map(|a| a.arrive).min().expect("nonempty");
    // The rendezvous point: the last arrival in dispatch order (the one
    // whose dispatch would have run `release_barrier` sequentially).
    let trig = st
        .arrivals
        .iter()
        .max_by(|a, b| a.pos.cmp(&b.pos))
        .expect("nonempty");
    let arr_pos = Arc::clone(&trig.pos);
    let trig_base = trig.push_base;
    // Net stores in flight at the rendezvous: all +1s precede it in
    // dispatch order (their processors were running; they are blocked
    // now), so the prefix sum up to `arr_pos` is the sequential counter.
    let mut inflight: i64 = 0;
    let mut cut = 0usize;
    for d in st.deltas.iter() {
        if d.pos.as_ref().cmp(arr_pos.as_ref()) == Ordering::Greater {
            break;
        }
        inflight += d.delta;
        cut += 1;
    }
    let (release, trigger_pos, base) = if inflight == 0 {
        (max_arrival + config.barrier_cycles, arr_pos, trig_base)
    } else {
        // Stores still in flight at the rendezvous: walk the remaining
        // drains in dispatch order to the zero crossing — the drain whose
        // dispatch runs `release_barrier(done)` sequentially (pushing the
        // release Runs as its first children, hence base 0).
        let mut found = None;
        for (i, d) in st.deltas.iter().enumerate().skip(cut) {
            inflight += d.delta;
            if inflight == 0 {
                found = Some(i);
                break;
            }
        }
        let Some(i) = found else {
            return; // drains still crossing; resolve in a later round
        };
        let d = &st.deltas[i];
        cut = i + 1;
        (
            max_arrival.max(d.done) + config.barrier_cycles,
            Arc::clone(&d.pos),
            0,
        )
    };
    st.deltas.drain(..cut);
    st.episodes.push(BarrierEpoch {
        first_arrival: min_arrival,
        last_arrival: max_arrival,
        release,
    });
    let mut arrive_of = vec![0u64; procs];
    for a in &st.arrivals {
        arrive_of[a.proc as usize] = a.arrive;
    }
    st.arrivals.clear();
    for (sid, m) in sims.iter().enumerate() {
        let mut sim = m.lock().expect("shard sim");
        for pi in 0..procs {
            if shard_of[pi] as usize != sid {
                continue;
            }
            sim.stalls.barrier += release - arrive_of[pi];
            let start = sim.procs[pi].time;
            sim.metrics.per_proc[pi].barrier += release - start;
            sim.procs[pi].time = release;
            sim.metrics.work.events_scheduled += 1;
            let key = Key {
                parent: Some(Arc::clone(&trigger_pos)),
                idx: base + pi as u32,
            };
            sim.shard.as_mut().expect("shard ctx").heap.push(Reverse(ShardEvent {
                time: release,
                key,
                event: Event::Run(pi as u32),
            }));
        }
    }
}

/// Assembles the final [`SimResult`] from the per-shard simulators:
/// per-processor state from owners, memory by home, counters by sum.
fn merge(
    sims: &mut [Simulator],
    shard_of: &[u32],
    config: &MachineConfig,
    outputs: SimOutputs,
    st: LeaderState,
) -> SimResult {
    let procs = shard_of.len();
    let mut proc_cycles = vec![0u64; procs];
    let mut per_proc = vec![ProcCycles::default(); procs];
    let mut seqs: Vec<Vec<AccessId>> = Vec::with_capacity(procs);
    for pi in 0..procs {
        let o = shard_of[pi] as usize;
        proc_cycles[pi] = sims[o].procs[pi]
            .finished_at
            .expect("finished proc has finish time");
        per_proc[pi] = sims[o].metrics.per_proc[pi];
        seqs.push(std::mem::take(&mut sims[o].procs[pi].barrier_seq));
    }
    let exec_cycles = proc_cycles.iter().copied().max().unwrap_or(0);
    for (pi, finish) in proc_cycles.iter().enumerate() {
        per_proc[pi].idle = exec_cycles - finish;
    }
    let barriers_aligned =
        !config.check_barrier_alignment || seqs.iter().all(|sq| sq == &seqs[0]);

    let mut net = NetStats::default();
    let mut stalls = StallStats::default();
    let mut work = SimWork::default();
    let mut latency = LatencyHistogram::new();
    for sim in sims.iter() {
        let n = &sim.net;
        net.get_requests += n.get_requests;
        net.get_replies += n.get_replies;
        net.put_requests += n.put_requests;
        net.put_acks += n.put_acks;
        net.store_requests += n.store_requests;
        net.post_messages += n.post_messages;
        net.wait_messages += n.wait_messages;
        net.lock_messages += n.lock_messages;
        net.barriers += n.barriers;
        let sl = &sim.stalls;
        stalls.sync += sl.sync;
        stalls.barrier += sl.barrier;
        stalls.wait += sl.wait;
        stalls.lock += sl.lock;
        stalls.blocking += sl.blocking;
        let w = &sim.metrics.work;
        work.events_scheduled += w.events_scheduled;
        work.events_dequeued += w.events_dequeued;
        work.bucket_rotations += w.bucket_rotations;
        work.overflow_promotions += w.overflow_promotions;
        work.arena_reuses += w.arena_reuses;
        work.waiter_scans += w.waiter_scans;
        let l = &sim.metrics.latency;
        if l.count > 0 {
            latency.min = if latency.count == 0 {
                l.min
            } else {
                latency.min.min(l.min)
            };
            latency.max = latency.max.max(l.max);
            latency.count += l.count;
            latency.total += l.total;
            for (b, lb) in latency.buckets.iter_mut().zip(l.buckets.iter()) {
                *b += lb;
            }
        }
        let sh = sim.shard.as_ref().expect("shard ctx");
        work.shard_cross_messages += sh.cross_messages;
        work.shard_idle_windows += sh.idle_windows;
    }
    net.barriers += st.episodes.len() as u64;
    work.shard_horizon_advances = st.horizon_advances;
    work.shard_mailbox_drains = st.mailbox_drains;
    work.hash_lookups = 0;

    let memory = if outputs.memory {
        // Every shard has the identical layout; each location's value is
        // authoritative at its home's shard.
        let snaps: Vec<_> = sims.iter().map(|s| s.memory.snapshot()).collect();
        let mut merged = snaps[0].clone();
        for (vi, (var, vals)) in merged.iter_mut().enumerate() {
            for (idx, v) in vals.iter_mut().enumerate() {
                let home = sims[0].memory.home(Location {
                    var: *var,
                    index: idx as u64,
                });
                *v = snaps[shard_of[home as usize] as usize][vi].1[idx];
            }
        }
        merged
    } else {
        Vec::new()
    };
    let barrier_seqs = if outputs.barrier_seqs { seqs } else { Vec::new() };

    SimResult {
        exec_cycles,
        proc_cycles,
        net,
        stalls,
        memory,
        barriers_aligned,
        metrics: SimMetrics {
            per_proc,
            latency,
            barrier_epochs: st.episodes,
            work,
        },
        barrier_seqs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    const MIXED_SRC: &str = r#"
        shared int A[16]; shared int X; flag F; lock l;
        fn main() {
            work(MYPROC * 57);
            A[MYPROC] = MYPROC;
            barrier;
            int v; v = A[(MYPROC + 1) % PROCS];
            if (MYPROC == 0) { post F; } else { wait F; }
            lock l; X = X + v; unlock l;
            barrier;
        }
    "#;

    fn assert_matches_sequential(src: &str, procs: u32, shards: usize) {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let config = MachineConfig::cm5(procs);
        let seq = simulate(&cfg, &config).unwrap();
        let par = simulate_sharded(&cfg, &config, shards, SimOutputs::full()).unwrap();
        assert_eq!(seq.exec_cycles, par.exec_cycles, "s={shards}");
        assert_eq!(seq.proc_cycles, par.proc_cycles, "s={shards}");
        assert_eq!(seq.net, par.net, "s={shards}");
        assert_eq!(seq.stalls, par.stalls, "s={shards}");
        assert_eq!(seq.memory, par.memory, "s={shards}");
        assert_eq!(seq.barriers_aligned, par.barriers_aligned);
        assert_eq!(seq.barrier_seqs, par.barrier_seqs);
        assert_eq!(seq.metrics.per_proc, par.metrics.per_proc, "s={shards}");
        assert_eq!(seq.metrics.latency, par.metrics.latency, "s={shards}");
        assert_eq!(seq.metrics.barrier_epochs, par.metrics.barrier_epochs);
    }

    #[test]
    fn sharded_matches_sequential_on_mixed_workload() {
        for shards in [1, 2, 3, 4, 8] {
            assert_matches_sequential(MIXED_SRC, 8, shards);
        }
    }

    #[test]
    fn sharded_matches_sequential_on_store_heavy_barrier() {
        // One-way stores force the store-quiescence (drain-triggered)
        // release path through the leader's delta walk.
        let src = r#"
            shared int A[32];
            fn main() {
                A[(MYPROC + 5) % PROCS] = MYPROC;
                barrier;
                int v; v = A[MYPROC];
                work(v * 10);
                barrier;
            }
        "#;
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let analysis = syncopt_core::analyze_for(&cfg, 8);
        let opt = syncopt_codegen::optimize(
            &cfg,
            &analysis,
            syncopt_codegen::OptLevel::OneWay,
            syncopt_codegen::DelayChoice::SyncRefined,
        );
        let config = MachineConfig::cm5(8);
        let seq = simulate(&opt.cfg, &config).unwrap();
        for shards in [2, 4, 8] {
            let par = simulate_sharded(&opt.cfg, &config, shards, SimOutputs::full()).unwrap();
            assert_eq!(seq.exec_cycles, par.exec_cycles, "s={shards}");
            assert_eq!(seq.memory, par.memory, "s={shards}");
            assert_eq!(seq.metrics.per_proc, par.metrics.per_proc, "s={shards}");
            assert_eq!(seq.metrics.barrier_epochs, par.metrics.barrier_epochs);
        }
    }

    #[test]
    fn sharded_matches_on_all_table1_machines() {
        let cfg = lower_main(&prepare_program(MIXED_SRC).unwrap()).unwrap();
        for config in MachineConfig::table1(8) {
            let seq = simulate(&cfg, &config).unwrap();
            let par = simulate_sharded(&cfg, &config, 4, SimOutputs::full()).unwrap();
            assert_eq!(seq.exec_cycles, par.exec_cycles, "{}", config.name);
            assert_eq!(seq.memory, par.memory, "{}", config.name);
            assert_eq!(seq.stalls, par.stalls, "{}", config.name);
        }
    }

    #[test]
    fn sharded_counts_parallel_machinery() {
        let cfg = lower_main(&prepare_program(MIXED_SRC).unwrap()).unwrap();
        let config = MachineConfig::cm5(8);
        let par = simulate_sharded(&cfg, &config, 4, SimOutputs::lean()).unwrap();
        let w = &par.metrics.work;
        assert!(w.shard_horizon_advances > 0, "windows must advance");
        assert!(w.shard_cross_messages > 0, "remote traffic must cross shards");
        assert!(w.shard_mailbox_drains > 0, "mailboxes must drain");
        assert_eq!(w.hash_lookups, 0);
        // Sequential runs report no shard machinery at all.
        let seq = simulate(&cfg, &config).unwrap();
        assert_eq!(seq.metrics.work.shard_horizon_advances, 0);
        assert_eq!(seq.metrics.work.shard_cross_messages, 0);
    }

    #[test]
    fn sharded_deadlock_matches_sequential_report() {
        let src = "fn main() { if (MYPROC == 0) { barrier; } }";
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let config = MachineConfig::cm5(2);
        let seq = simulate(&cfg, &config).unwrap_err();
        let par = simulate_sharded(&cfg, &config, 2, SimOutputs::full()).unwrap_err();
        assert_eq!(seq.message(), par.message());
    }

    #[test]
    fn sharded_runtime_fault_matches_sequential_report() {
        let src = "shared int A[4]; fn main() { A[7 + MYPROC] = 1; }";
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let config = MachineConfig::cm5(4);
        let seq = simulate(&cfg, &config).unwrap_err();
        let par = simulate_sharded(&cfg, &config, 2, SimOutputs::full()).unwrap_err();
        assert_eq!(seq.message(), par.message());
    }

    #[test]
    fn empty_program_and_shard_clamping() {
        let cfg = lower_main(&prepare_program("fn main() { }").unwrap()).unwrap();
        let config = MachineConfig::cm5(2);
        // More shards than processors (and zero shards) clamp cleanly.
        for shards in [0, 1, 2, 16] {
            let r = simulate_sharded(&cfg, &config, shards, SimOutputs::full()).unwrap();
            assert_eq!(r.exec_cycles, 0);
            assert_eq!(r.proc_cycles, vec![0; 2]);
        }
    }
}
