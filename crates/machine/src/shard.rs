//! Conservative parallel (sharded) simulation engine.
//!
//! One simulation run is partitioned across host threads: simulated
//! processors are split across **shards** by a [`ShardPartition`]
//! strategy, and each shard advances its own event heap independently up
//! to a shared **synchronization horizon**. The horizon is the
//! conservative Chandy–Misra lookahead the Table 1 machine parameters
//! guarantee: every cross-shard interaction is carried by a message that
//! takes at least `network_latency` cycles, and every barrier release
//! lands at least `barrier_cycles` after its trigger, so a window of
//! width `min(network_latency, barrier_cycles)` can be simulated in
//! parallel with no shard ever seeing an event "from the past".
//!
//! Between windows a round **leader** (the last thread to arrive at the
//! gate) runs the only remaining serial section: it merges the dispatch
//! positions the window minted into flat ranks, resolves completed
//! barrier episodes, and picks the next window from the global minimum
//! pending timestamp. Everything else that used to be serial is done by
//! the shards themselves at the start of the next round: each shard
//! drains its own inbound mailboxes, rewrites its own event keys to the
//! flat positions the leader published, and injects its own processors'
//! barrier releases from the leader's release plan. The
//! `sim.shard_leader_merge_steps` vs `sim.shard_parallel_*` counters
//! witness the split.
//!
//! # Determinism: bit-identical to the sequential engines
//!
//! The sequential engines dispatch in `(time, seq)` order where `seq` is
//! global push order. A parallel run cannot reproduce a global push
//! counter, but it can reproduce the *order* it induces: every event is
//! keyed by the dispatch **position** of the event that pushed it plus
//! its local push index (`Key`). At equal timestamps, comparing keys
//! lexicographically through parent positions reproduces exactly the
//! sequential seq order (children are pushed in index order, and events
//! dispatched earlier push their children earlier). Each shard pops in
//! `(time, key)` order, so its dispatch sequence is the restriction of
//! the sequential dispatch sequence to the events it owns — and since
//! all shared state is partitioned by owner (processor state with the
//! owning shard, memory/flag/lock/handler state with the home's shard),
//! every observable except the [`SimWork`] engine counters is
//! bit-identical at any shard count *and any partition strategy*. The
//! three global couplings that do not fit the partition are handled
//! explicitly:
//!
//! * **split-phase receive steals** are scheduled by the *issuing* shard
//!   as local `Event::Credit`s keyed adjacent to the request's arrival
//!   (see `sim.rs`), or deferred into the wake-up delivery when the
//!   target is blocked;
//! * **barrier rendezvous and store quiescence** are resolved by the
//!   round leader from position-ordered arrival/store logs, recovering
//!   the exact sequential release time; the release `Run`s are injected
//!   by their owning shards from the leader's plan, with the keys the
//!   sequential engine would have assigned;
//! * **errors** are picked as the minimum dispatch position across
//!   shards, which is exactly the first error the sequential engine
//!   reports.

use crate::config::MachineConfig;
use crate::memory::{Location, SharedMemory};
use crate::metrics::{BarrierEpoch, LatencyHistogram, ProcCycles, ShardStats, SimMetrics, SimWork};
use crate::sim::{
    EngineKind, Event, NetStats, SimOutputs, SimResult, Simulator, StallStats, Status,
};
use crate::value::SimError;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::{Arc, Barrier, Mutex, OnceLock};
use syncopt_frontend::ast::{BinOp, UnOp};
use syncopt_ir::access::AccessKind;
use syncopt_ir::cfg::Cfg;
use syncopt_ir::expr::Expr;
use syncopt_ir::ids::AccessId;

/// How simulated processors are assigned to shards. Results are
/// bit-identical under every strategy (the assignment only moves engine
/// work around); what changes is the per-shard load balance, visible in
/// [`ShardStats`] and the `sim_parallel` bench's imbalance metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ShardPartition {
    /// Contiguous blocks of processor ids (`ceil(P/S)` per shard). Keeps
    /// Split-C block-layout array traffic shard-local, but concentrates
    /// the round-robin scalar/flag/lock homes — which all land on
    /// low-numbered processors — onto shard 0.
    #[default]
    Block,
    /// Round-robin by processor id (`p % S`). Spreads the round-robin
    /// scalar homes evenly at the cost of cutting block-layout arrays
    /// across shards.
    Cyclic,
    /// Traffic-aware: a static communication-matrix pre-pass evaluates
    /// every shared access site's home under the program's memory layout
    /// and greedily assigns the heaviest processors first, balancing
    /// per-shard event load while preferring shards the processor
    /// already communicates with. Falls back to [`Block`] when the
    /// program has no resolvable shared traffic.
    ///
    /// [`Block`]: ShardPartition::Block
    Profiled,
}

impl ShardPartition {
    /// All strategies, for sweeps and tests.
    pub const ALL: [ShardPartition; 3] = [
        ShardPartition::Block,
        ShardPartition::Cyclic,
        ShardPartition::Profiled,
    ];

    /// The lowercase label used on the command line and in reports.
    pub fn label(self) -> &'static str {
        match self {
            ShardPartition::Block => "block",
            ShardPartition::Cyclic => "cyclic",
            ShardPartition::Profiled => "profiled",
        }
    }

    /// Parses a command-line label.
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "block" => Some(ShardPartition::Block),
            "cyclic" => Some(ShardPartition::Cyclic),
            "profiled" => Some(ShardPartition::Profiled),
            _ => None,
        }
    }
}

impl std::fmt::Display for ShardPartition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A dispatch position: the timestamp of an event plus its tie-breaking
/// key. Total order over all events of a run.
#[derive(Debug)]
pub(crate) struct Pos {
    time: u64,
    key: Key,
    /// The depth-1 twin the leader's key merge assigns (see
    /// [`merge_and_flatten`]); read by the owning shards when they
    /// rewrite their keys in the next round's parallel phase. Not part
    /// of the order.
    flat: OnceLock<Arc<Pos>>,
}

impl Pos {
    fn new(time: u64, key: Key) -> Self {
        Pos {
            time,
            key,
            flat: OnceLock::new(),
        }
    }

    /// Whether this position is already depth-1 (seeds and leader-minted
    /// twins are born flat).
    fn is_flat(&self) -> bool {
        self.key.parent.is_none()
    }
}

/// The sequential engine's `seq` tie-break, reconstructed structurally: a
/// child's key is its parent's dispatch position plus the index of the
/// push within that dispatch. Seed `Run`s (pushed before the loop) have
/// no parent and are ordered by processor id, exactly like their
/// historical seqs `0..P`.
#[derive(Debug, Clone)]
pub(crate) struct Key {
    parent: Option<Arc<Pos>>,
    idx: u32,
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.parent, &other.parent) {
            (None, None) => self.idx.cmp(&other.idx),
            (None, Some(_)) => Ordering::Less,
            (Some(_), None) => Ordering::Greater,
            (Some(a), Some(b)) => {
                if Arc::ptr_eq(a, b) {
                    self.idx.cmp(&other.idx)
                } else {
                    // Distinct parents: the parents' dispatch order decides
                    // (push order follows dispatch order); idx only breaks
                    // the tie when the positions compare equal, which means
                    // they are the same position reached through different
                    // allocations.
                    a.as_ref()
                        .cmp(b.as_ref())
                        .then_with(|| self.idx.cmp(&other.idx))
                }
            }
        }
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Key {}

impl Ord for Pos {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.key.cmp(&other.key))
    }
}

impl PartialOrd for Pos {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Pos {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Pos {}

/// A keyed event in a shard heap or mailbox.
#[derive(Debug)]
pub(crate) struct ShardEvent {
    time: u64,
    key: Key,
    event: Event,
}

impl Ord for ShardEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.key.cmp(&other.key))
    }
}

impl PartialOrd for ShardEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for ShardEvent {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for ShardEvent {}

/// One processor's barrier arrival, logged for the round leader.
#[derive(Debug)]
struct BarrierArrival {
    proc: u32,
    arrive: u64,
    /// Dispatch position of the arriving `Run` — the leader's rendezvous
    /// point is the maximum of these.
    pos: Arc<Pos>,
    /// The push index the arriving dispatch had reached, so release
    /// `Run`s can be keyed exactly where the sequential engine pushes
    /// them (as the next children of the triggering dispatch).
    push_base: u32,
}

/// A store entering (+1) or leaving (-1) flight, in dispatch order.
#[derive(Debug)]
struct StoreDelta {
    pos: Arc<Pos>,
    delta: i64,
    /// Handler completion time of a drain (0 for inits); a drain-triggered
    /// barrier releases at `max(last_arrival, done) + barrier_cycles`.
    done: u64,
}

/// Per-shard engine state attached to a [`Simulator`]: the local event
/// heap, outgoing mailboxes, the current dispatch position (for keying
/// pushes), the positions this shard minted (for the leader's key
/// merge), and the episode logs the round leader consumes.
#[derive(Debug)]
pub(crate) struct ShardCtx {
    id: u32,
    shard_of: Arc<Vec<u32>>,
    heap: BinaryHeap<Reverse<ShardEvent>>,
    /// Outgoing events per destination shard, accumulated during the
    /// window and published to the mailbox grid at its end (the
    /// mailbox-per-pair structure).
    outboxes: Vec<Vec<ShardEvent>>,
    cur_parent: Arc<Pos>,
    push_idx: u32,
    /// Whether `cur_parent` has been recorded in `minted` (set on its
    /// first use as a parent or log position).
    parent_live: bool,
    /// Non-flat positions this shard's window dispatched and referenced,
    /// in dispatch order — sorted by construction, so the leader's merge
    /// is a k-way merge of sorted runs.
    minted: Vec<Arc<Pos>>,
    barrier_log: Vec<BarrierArrival>,
    store_log: Vec<StoreDelta>,
    /// Minimum timestamp across everything published to the grid this
    /// window (`u64::MAX` when nothing crossed).
    out_min: u64,
    /// Minimum pending timestamp in the local heap after the window.
    heap_min: Option<u64>,
    cross_messages: u64,
    idle_windows: u64,
    /// Non-empty mailbox batches this shard published (sender side of
    /// `sim.shard_mailbox_drains`).
    published_batches: u64,
    /// Cross-shard events drained from inbound mailboxes (parallel phase).
    drained_events: u64,
    /// Keys rewritten to flat positions (parallel phase).
    flattened_parents: u64,
    error: Option<(Arc<Pos>, SimError)>,
}

impl ShardCtx {
    fn new(id: u32, shards: usize, shard_of: Arc<Vec<u32>>) -> Self {
        ShardCtx {
            id,
            shard_of,
            heap: BinaryHeap::new(),
            outboxes: (0..shards).map(|_| Vec::new()).collect(),
            cur_parent: Arc::new(Pos::new(
                0,
                Key {
                    parent: None,
                    idx: u32::MAX,
                },
            )),
            push_idx: 0,
            parent_live: false,
            minted: Vec::new(),
            barrier_log: Vec::new(),
            store_log: Vec::new(),
            out_min: u64::MAX,
            heap_min: None,
            cross_messages: 0,
            idle_windows: 0,
            published_batches: 0,
            drained_events: 0,
            flattened_parents: 0,
            error: None,
        }
    }

    /// Whether processor `p` belongs to this shard.
    pub(crate) fn owns(&self, p: u32) -> bool {
        self.shard_of[p as usize] == self.id
    }

    fn dest(&self, event: &Event) -> u32 {
        match event {
            Event::Run(p) => *p,
            Event::Arrive { home, .. } => *home,
            Event::Deliver { to, .. } => *to,
            Event::Credit { to, .. } => *to,
        }
    }

    /// Records the current dispatch position for the leader's key merge
    /// on its first use. Seed positions are born flat and need no rank.
    fn mint_parent(&mut self) {
        if !self.parent_live {
            self.parent_live = true;
            if !self.cur_parent.is_flat() {
                self.minted.push(Arc::clone(&self.cur_parent));
            }
        }
    }

    /// Keys a pushed event as the next child of the current dispatch and
    /// routes it: own shard straight to the heap, otherwise into the
    /// destination's mailbox for the next horizon drain.
    pub(crate) fn route(&mut self, time: u64, event: Event, work: &mut SimWork) {
        work.events_scheduled += 1;
        self.mint_parent();
        let key = Key {
            parent: Some(Arc::clone(&self.cur_parent)),
            idx: self.push_idx,
        };
        self.push_idx += 1;
        let d = self.shard_of[self.dest(&event) as usize];
        let ev = ShardEvent { time, key, event };
        if d == self.id {
            self.heap.push(Reverse(ev));
        } else {
            self.cross_messages += 1;
            self.out_min = self.out_min.min(time);
            self.outboxes[d as usize].push(ev);
        }
    }

    pub(crate) fn log_barrier_arrival(&mut self, proc: u32, arrive: u64) {
        self.mint_parent();
        self.barrier_log.push(BarrierArrival {
            proc,
            arrive,
            pos: Arc::clone(&self.cur_parent),
            push_base: self.push_idx,
        });
    }

    pub(crate) fn log_store_init(&mut self) {
        self.mint_parent();
        self.store_log.push(StoreDelta {
            pos: Arc::clone(&self.cur_parent),
            delta: 1,
            done: 0,
        });
    }

    pub(crate) fn log_store_drain(&mut self, done: u64) {
        self.mint_parent();
        self.store_log.push(StoreDelta {
            pos: Arc::clone(&self.cur_parent),
            delta: -1,
            done,
        });
    }
}

/// The leader's plan for a resolved barrier episode: each shard injects
/// the release `Run`s for its own processors at the start of the next
/// round, with the keys the sequential engine would have assigned.
struct ReleasePlan {
    release: u64,
    /// The triggering dispatch position (already flat).
    trigger: Arc<Pos>,
    /// First child index for the release `Run`s.
    base: u32,
    /// Per-processor arrival times, for stall attribution.
    arrive_of: Vec<u64>,
}

/// Shared round control, written by the leader between barrier
/// generations: the next window's exclusive end, the stop flag, and the
/// release plan (if a barrier episode resolved) every shard applies for
/// its own processors at the start of the round.
struct Ctrl {
    window_end: u64,
    done: bool,
    plan: Option<Arc<ReleasePlan>>,
}

/// Round-leader state: accumulated episode logs, resolved epochs, the
/// flat-rank counter, and the first error (by dispatch position).
struct LeaderState {
    arrivals: Vec<BarrierArrival>,
    /// Store flight deltas, globally sorted by dispatch position. Each
    /// window's batch is strictly later than everything pending, so
    /// sort-and-append keeps the whole vector ordered.
    deltas: Vec<StoreDelta>,
    episodes: Vec<BarrierEpoch>,
    horizon_advances: u64,
    /// Next flat key rank (see [`merge_and_flatten`]); starts above the
    /// processor count so ranks never collide with seed ids at time 0.
    next_rank: u32,
    /// Positions rank-assigned by the leader's merge — the serial work.
    merge_steps: u64,
    error: Option<SimError>,
}

/// Runs `cfg` on the machine described by `config`, sharding the
/// simulated processors across `shards` host threads (clamped to
/// `[1, procs]`) using the default [`ShardPartition::Block`] assignment.
/// The result is bit-identical to [`crate::simulate`] for every
/// observable except the [`SimWork`] engine counters and the per-shard
/// [`ShardStats`], at any shard count — the differential suites assert
/// exactly that.
///
/// # Errors
///
/// Same failure modes as [`crate::simulate`], reporting the identical
/// first error (runtime faults, deadlock, `max_steps`).
pub fn simulate_sharded(
    cfg: &Cfg,
    config: &MachineConfig,
    shards: usize,
    outputs: SimOutputs,
) -> Result<SimResult, SimError> {
    simulate_sharded_with(cfg, config, shards, ShardPartition::Block, outputs)
}

/// [`simulate_sharded`] with an explicit processor-to-shard
/// [`ShardPartition`] strategy. Bit-identical to the sequential engines
/// under every strategy; only the engine counters and per-shard load
/// distribution differ.
///
/// # Errors
///
/// Same failure modes as [`crate::simulate`].
pub fn simulate_sharded_with(
    cfg: &Cfg,
    config: &MachineConfig,
    shards: usize,
    partition: ShardPartition,
    outputs: SimOutputs,
) -> Result<SimResult, SimError> {
    let procs = config.procs;
    let s = shards.max(1).min(procs.max(1) as usize);
    // The conservative lookahead: every cross-shard event lands at least
    // `network_latency` ahead of its creation, every barrier release at
    // least `barrier_cycles` ahead of its trigger.
    let horizon = config.network_latency.min(config.barrier_cycles).max(1);
    let shard_of: Arc<Vec<u32>> = Arc::new(partition_map(cfg, procs, s, partition));

    let mut sims: Vec<Mutex<Simulator>> = (0..s)
        .map(|id| {
            let mut sim = Simulator::new(cfg, config, EngineKind::Calendar, outputs);
            sim.shard = Some(Box::new(ShardCtx::new(id as u32, s, Arc::clone(&shard_of))));
            Mutex::new(sim)
        })
        .collect();
    // Seed one Run per processor, keyed by processor id like the
    // sequential engine's seqs 0..P.
    for p in 0..procs {
        let sim = sims[shard_of[p as usize] as usize]
            .get_mut()
            .expect("fresh mutex");
        sim.metrics.work.events_scheduled += 1;
        let sh = sim.shard.as_mut().expect("shard ctx");
        sh.heap.push(Reverse(ShardEvent {
            time: 0,
            key: Key {
                parent: None,
                idx: p,
            },
            event: Event::Run(p),
        }));
    }

    let ctrl = Mutex::new(Ctrl {
        window_end: horizon,
        done: false,
        plan: None,
    });
    let leader = Mutex::new(LeaderState {
        arrivals: Vec::new(),
        deltas: Vec::new(),
        episodes: Vec::new(),
        horizon_advances: 1,
        next_rank: procs,
        merge_steps: 0,
        error: None,
    });
    let gate = Barrier::new(s);
    // The shard-pair mailbox grid, `grid[parity][from * s + to]`: senders
    // publish their outboxes at the end of a window, receivers drain what
    // was published *last* round at the start of the next. The grid is
    // double-buffered by round parity because no barrier separates one
    // shard's drain phase from another's publish phase within a round —
    // each round writes one buffer and reads the other, so a fast
    // publisher can never feed a slow drainer early.
    let grid: [Vec<Mutex<Vec<ShardEvent>>>; 2] = [
        (0..s * s).map(|_| Mutex::new(Vec::new())).collect(),
        (0..s * s).map(|_| Mutex::new(Vec::new())).collect(),
    ];

    std::thread::scope(|scope| {
        for sid in 0..s {
            let sims = &sims;
            let ctrl = &ctrl;
            let leader = &leader;
            let gate = &gate;
            let grid = &grid;
            let shard_of = &shard_of;
            scope.spawn(move || {
                let mut round: usize = 0;
                loop {
                    let (window_end, plan) = {
                        let c = ctrl.lock().expect("ctrl");
                        if c.done {
                            break;
                        }
                        (c.window_end, c.plan.clone())
                    };
                    worker_round(
                        &sims[sid],
                        sid,
                        s,
                        &grid[(round + 1) & 1],
                        &grid[round & 1],
                        plan.as_deref(),
                        window_end,
                    );
                    round += 1;
                    if gate.wait().is_leader() {
                        let mut st = leader.lock().expect("leader state");
                        let mut c = ctrl.lock().expect("ctrl");
                        leader_step(sims, shard_of, config, horizon, &mut st, &mut c);
                    }
                    gate.wait();
                }
            });
        }
    });

    let mut sims: Vec<Simulator> = sims
        .into_iter()
        .map(|m| m.into_inner().expect("worker panicked"))
        .collect();
    let st = leader.into_inner().expect("leader state");
    if let Some(e) = st.error {
        return Err(e);
    }
    Ok(merge(&mut sims, &shard_of, config, outputs, st))
}

/// Builds the processor-to-shard assignment for a strategy. Every value
/// is in `0..shards`; the map is deterministic (pure integer arithmetic
/// over the program's static structure).
fn partition_map(cfg: &Cfg, procs: u32, shards: usize, partition: ShardPartition) -> Vec<u32> {
    match partition {
        ShardPartition::Block => block_map(procs, shards),
        ShardPartition::Cyclic => (0..procs).map(|p| p % shards as u32).collect(),
        ShardPartition::Profiled => profiled_map(cfg, procs, shards),
    }
}

fn block_map(procs: u32, shards: usize) -> Vec<u32> {
    let block = (procs as usize).div_ceil(shards);
    (0..procs as usize)
        .map(|i| ((i / block).min(shards - 1)) as u32)
        .collect()
}

/// Number of sample points used when an access index depends on one
/// unresolved local (typically a loop variable): the variable is sampled
/// across `0..PROCS` at this many evenly spaced points.
const INDEX_SAMPLES: u64 = 8;

/// The traffic-aware partition: a static communication-matrix pre-pass.
///
/// For every shared access site and every processor `p`, the access's
/// index expression is const-evaluated with `MYPROC = p` (sampling one
/// unresolved local across `0..PROCS`, which captures loop-driven
/// patterns like Epithel's transpose scatter) and resolved to a home
/// processor under the program's actual memory layout
/// ([`SharedMemory::home`]). That yields a per-processor event-load
/// estimate (messages sent plus messages handled at owned homes) and a
/// processor-pair traffic matrix. Processors are then assigned greedily,
/// heaviest first, to the least-loaded shard — preferring, among shards
/// of similar load, the one the processor already talks to most.
fn profiled_map(cfg: &Cfg, procs: u32, shards: usize) -> Vec<u32> {
    let p = procs as usize;
    if p == 0 || shards <= 1 {
        return block_map(procs, shards);
    }
    let mem = SharedMemory::new(procs, &cfg.vars);
    // traffic[issuer * p + home]: estimated messages from issuer to home.
    let mut traffic = vec![0u64; p * p];
    // Load that never crosses processors (local homes, unresolvable sites).
    let mut local = vec![0u64; p];
    for (_, a) in cfg.accesses.iter() {
        if a.kind == AccessKind::Barrier {
            continue; // global rendezvous, no home
        }
        let Some(var) = a.var else { continue };
        for me in 0..p {
            let samples = index_samples(a.index.as_ref(), me as i64, procs as i64);
            if samples.is_empty() {
                local[me] += INDEX_SAMPLES;
                continue;
            }
            for (index, w) in samples {
                let home = mem.home(Location { var, index }) as usize;
                if home == me {
                    local[me] += w;
                } else {
                    traffic[me * p + home] += w;
                }
            }
        }
    }
    let mut load: Vec<u64> = vec![0; p];
    for me in 0..p {
        let sent: u64 = traffic[me * p..(me + 1) * p].iter().sum();
        let handled: u64 = (0..p).map(|q| traffic[q * p + me]).sum();
        load[me] = local[me] + sent + handled;
    }
    let total: u64 = load.iter().sum();
    if total == 0 {
        return block_map(procs, shards);
    }
    // Greedy weighted assignment, heaviest processor first. Loads are
    // compared in coarse quanta so that among near-equally-loaded shards
    // the one with the most existing traffic to `me` wins (fewer
    // cross-shard edges); remaining ties go to the emptier, then
    // lower-numbered shard — fully deterministic.
    let quantum = (total / (shards as u64 * 64)).max(1);
    let mut order: Vec<usize> = (0..p).collect();
    order.sort_by_key(|&me| (Reverse(load[me]), me));
    let mut assign = vec![0u32; p];
    let mut shard_load = vec![0u64; shards];
    let mut members: Vec<Vec<usize>> = (0..shards).map(|_| Vec::new()).collect();
    for me in order {
        let best = (0..shards)
            .min_by_key(|&sh| {
                let affinity: u64 = members[sh]
                    .iter()
                    .map(|&q| traffic[me * p + q] + traffic[q * p + me])
                    .sum();
                (
                    (shard_load[sh] + load[me]) / quantum,
                    Reverse(affinity),
                    members[sh].len(),
                    sh,
                )
            })
            .expect("at least one shard");
        assign[me] = best as u32;
        shard_load[best] += load[me];
        members[best].push(me);
    }
    assign
}

/// Const-evaluates an access index for one processor, returning `(index,
/// weight)` samples. A fully resolvable expression yields one sample of
/// weight [`INDEX_SAMPLES`]; an expression with exactly one unresolved
/// local is sampled across `0..PROCS` with weight 1 per distinct point;
/// anything else yields no samples (the caller counts the site as local
/// load).
fn index_samples(index: Option<&Expr>, me: i64, procs: i64) -> Vec<(u64, u64)> {
    let Some(expr) = index else {
        return vec![(0, INDEX_SAMPLES)]; // scalar / lock / scalar flag
    };
    let unknown = expr.vars_used();
    match unknown.len() {
        0 => eval_index(expr, me, procs, None)
            .map(|i| vec![(i, INDEX_SAMPLES)])
            .unwrap_or_default(),
        1 => {
            let var = unknown[0];
            let mut out: Vec<(u64, u64)> = Vec::new();
            for k in 0..INDEX_SAMPLES {
                let v = (k as i64) * procs / INDEX_SAMPLES as i64;
                if let Some(i) = eval_index(expr, me, procs, Some((var, v))) {
                    if !out.iter().any(|(j, _)| *j == i) {
                        out.push((i, 1));
                    }
                }
            }
            out
        }
        _ => Vec::new(),
    }
}

fn eval_index(
    expr: &Expr,
    me: i64,
    procs: i64,
    binding: Option<(syncopt_ir::ids::VarId, i64)>,
) -> Option<u64> {
    let v = eval_int(expr, me, procs, binding)?;
    u64::try_from(v).ok()
}

fn eval_int(
    expr: &Expr,
    me: i64,
    procs: i64,
    binding: Option<(syncopt_ir::ids::VarId, i64)>,
) -> Option<i64> {
    match expr {
        Expr::Int(v) => Some(*v),
        Expr::Float(_) | Expr::Bool(_) | Expr::LocalElem { .. } => None,
        Expr::MyProc => Some(me),
        Expr::Procs => Some(procs),
        Expr::Local(v) => binding.and_then(|(b, val)| (b == *v).then_some(val)),
        Expr::Unary { op, expr } => match op {
            UnOp::Neg => eval_int(expr, me, procs, binding)?.checked_neg(),
            UnOp::Not => None,
        },
        Expr::Binary { op, lhs, rhs } => {
            let a = eval_int(lhs, me, procs, binding)?;
            let b = eval_int(rhs, me, procs, binding)?;
            match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Div => a.checked_div(b),
                BinOp::Rem => a.checked_rem(b),
                _ => None, // comparisons / logic never form index arithmetic
            }
        }
    }
}

/// One shard's full round, everything outside the leader's critical
/// section: apply the published release plan for owned processors, drain
/// inbound mailboxes, rewrite keys to the flat positions the leader
/// minted, dispatch the window, then publish outboxes and minima for the
/// next leader step.
fn worker_round(
    m: &Mutex<Simulator>,
    sid: usize,
    s: usize,
    inbound_grid: &[Mutex<Vec<ShardEvent>>],
    outbound_grid: &[Mutex<Vec<ShardEvent>>],
    plan: Option<&ReleasePlan>,
    window_end: u64,
) {
    let mut sim = m.lock().expect("shard sim");
    let sid32 = sid as u32;
    // Phase 1: inject this shard's barrier releases from the leader's
    // plan, reproducing the sequential stall attribution and event keys.
    let mut injected: Vec<ShardEvent> = Vec::new();
    if let Some(plan) = plan {
        let shard_of = Arc::clone(&sim.shard.as_ref().expect("shard ctx").shard_of);
        for (pi, &o) in shard_of.iter().enumerate() {
            if o != sid32 {
                continue;
            }
            sim.stalls.barrier += plan.release - plan.arrive_of[pi];
            let start = sim.procs[pi].time;
            sim.metrics.per_proc[pi].barrier += plan.release - start;
            sim.procs[pi].time = plan.release;
            sim.metrics.work.events_scheduled += 1;
            injected.push(ShardEvent {
                time: plan.release,
                key: Key {
                    parent: Some(Arc::clone(&plan.trigger)),
                    idx: plan.base + pi as u32,
                },
                event: Event::Run(pi as u32),
            });
        }
    }
    // Phase 2: drain inbound mailboxes (events other shards routed to us
    // last window) and rewrite every key minted last window to its flat
    // twin, so comparisons never walk a chain older than one window.
    {
        let sh = sim.shard.as_mut().expect("shard ctx");
        let mut evs: Vec<ShardEvent> = std::mem::take(&mut sh.heap)
            .into_vec()
            .into_iter()
            .map(|Reverse(ev)| ev)
            .collect();
        for from in 0..s {
            if from == sid {
                continue;
            }
            let mut slot = inbound_grid[from * s + sid].lock().expect("mail slot");
            if !slot.is_empty() {
                sh.drained_events += slot.len() as u64;
                evs.append(&mut slot);
            }
        }
        for ev in &mut evs {
            if let Some(parent) = &ev.key.parent {
                if !parent.is_flat() {
                    let flat = parent.flat.get().expect("leader flattened last window");
                    ev.key.parent = Some(Arc::clone(flat));
                    sh.flattened_parents += 1;
                }
            }
        }
        evs.extend(injected);
        sh.heap = evs.into_iter().map(Reverse).collect();
        sh.out_min = u64::MAX;
    }
    // Phase 3: dispatch the window in (time, key) order.
    let mut processed = 0u64;
    loop {
        let (time, event, pos) = {
            let sh = sim.shard.as_mut().expect("shard ctx");
            match sh.heap.peek() {
                Some(Reverse(ev)) if ev.time < window_end => {}
                _ => break,
            }
            let Reverse(ev) = sh.heap.pop().expect("peeked");
            let pos = Arc::new(Pos::new(ev.time, ev.key));
            sh.cur_parent = Arc::clone(&pos);
            sh.push_idx = 0;
            sh.parent_live = false;
            (ev.time, ev.event, pos)
        };
        sim.metrics.work.events_dequeued += 1;
        if let Err(e) = sim.dispatch(time, event) {
            sim.shard.as_mut().expect("shard ctx").error = Some((pos, e));
            break;
        }
        processed += 1;
    }
    // Phase 4: publish outboxes to the grid and record the minima the
    // leader needs for the next window.
    let sh = sim.shard.as_mut().expect("shard ctx");
    if processed == 0 {
        // Conservative lookahead idling: the window held nothing for us.
        sh.idle_windows += 1;
    }
    for (d, batch) in sh.outboxes.iter_mut().enumerate() {
        if !batch.is_empty() {
            sh.published_batches += 1;
            outbound_grid[sid * s + d]
                .lock()
                .expect("mail slot")
                .append(batch);
        }
    }
    sh.heap_min = sh.heap.peek().map(|Reverse(ev)| ev.time);
}

/// The leader's critical section, now reduced to what is irreducibly
/// global: surface the first error, merge the window's minted positions
/// into flat ranks, resolve a completed barrier episode into a plan, and
/// open the next window (or stop). Mailbox movement, key rewriting, and
/// release injection all happen in the shards' parallel phase.
fn leader_step(
    sims: &[Mutex<Simulator>],
    shard_of: &[u32],
    config: &MachineConfig,
    horizon: u64,
    st: &mut LeaderState,
    ctrl: &mut Ctrl,
) {
    // Pass 1: collect minted runs, episode logs, errors, and minima.
    let mut minted: Vec<Vec<Arc<Pos>>> = Vec::with_capacity(sims.len());
    let mut new_arrivals: Vec<BarrierArrival> = Vec::new();
    let mut new_deltas: Vec<StoreDelta> = Vec::new();
    let mut errors: Vec<(Arc<Pos>, SimError)> = Vec::new();
    let mut t_min: Option<u64> = None;
    let fold = |t: u64, t_min: &mut Option<u64>| {
        *t_min = Some(t_min.map_or(t, |m| m.min(t)));
    };
    for m in sims {
        let mut sim = m.lock().expect("shard sim");
        let sh = sim.shard.as_mut().expect("shard ctx");
        minted.push(std::mem::take(&mut sh.minted));
        new_arrivals.append(&mut sh.barrier_log);
        new_deltas.append(&mut sh.store_log);
        if let Some(e) = sh.error.take() {
            errors.push(e);
        }
        if let Some(t) = sh.heap_min {
            fold(t, &mut t_min);
        }
        if sh.out_min != u64::MAX {
            fold(sh.out_min, &mut t_min);
        }
    }
    // The minimum error position is exactly the sequential engine's first
    // error: everything dispatched before it is identical in both runs.
    if let Some((_, e)) = errors.into_iter().min_by(|a, b| a.0.cmp(&b.0)) {
        st.error = Some(e);
        ctrl.done = true;
        ctrl.plan = None;
        return;
    }
    // Pass 2: merge the minted runs into flat ranks (the serial work).
    merge_and_flatten(minted, st);
    // Pass 3: rewrite the new episode logs to flat positions and append.
    for a in &mut new_arrivals {
        a.pos = flat_of(&a.pos);
    }
    st.arrivals.append(&mut new_arrivals);
    for d in &mut new_deltas {
        d.pos = flat_of(&d.pos);
    }
    new_deltas.sort_by(|a, b| a.pos.cmp(&b.pos));
    st.deltas.extend(new_deltas);
    // Pass 4: resolve a completed barrier episode into a release plan.
    let plan = try_release(shard_of.len(), config, st);
    if let Some(p) = &plan {
        fold(p.release, &mut t_min);
    }
    ctrl.plan = plan.map(Arc::new);
    // Pass 5: open the next horizon window, or terminate.
    match t_min {
        Some(t) => {
            st.horizon_advances += 1;
            ctrl.window_end = t + horizon;
        }
        None => {
            // Event space exhausted: every processor must have finished,
            // otherwise this is the same deadlock the sequential engine
            // reports (same processors, same statuses).
            let mut statuses: Vec<Status> = Vec::with_capacity(shard_of.len());
            for (pi, &o) in shard_of.iter().enumerate() {
                let sim = sims[o as usize].lock().expect("shard sim");
                statuses.push(sim.procs[pi].status.clone());
            }
            let unfinished: Vec<usize> = statuses
                .iter()
                .enumerate()
                .filter(|(_, st)| **st != Status::Finished)
                .map(|(i, _)| i)
                .collect();
            if !unfinished.is_empty() {
                st.error = Some(SimError::new(format!(
                    "deadlock: processors {unfinished:?} blocked ({:?})",
                    statuses[unfinished[0]]
                )));
            }
            ctrl.done = true;
        }
    }
}

/// The flat twin of a position minted last window (identity for
/// positions born flat).
fn flat_of(p: &Arc<Pos>) -> Arc<Pos> {
    if p.is_flat() {
        Arc::clone(p)
    } else {
        Arc::clone(p.flat.get().expect("leader flattened"))
    }
}

/// Assigns every position minted by the finished window a depth-1
/// `(time, rank)` twin, so key comparisons never walk a chain older than
/// one window.
///
/// Structural keys compare parents recursively, and the recursion only
/// stops early where ancestor times differ or an `Arc` is shared. In
/// lockstep SPMD programs (every processor running the identical cycle
/// schedule — Epithel's transpose phases are the worst case) events from
/// different processors tie on *every* ancestor time and share no
/// ancestry, so one comparison walks all the way to the seeds: O(causal
/// depth), which grows with simulated time and turns the heap quadratic.
///
/// Each shard dispatches in strictly increasing position order, so its
/// minted list arrives sorted; the leader k-way-merges the lists by the
/// structural order (cheap: chains are at most one window deep) and
/// publishes a twin with a rank from a monotonically growing counter
/// through each position's `flat` cell — the owning shards rewrite their
/// own references in the next round's parallel phase.
/// Parent-vs-parent comparisons are unchanged: dispatch times decide
/// across windows (window time ranges are disjoint), and within a window
/// the rank reproduces the structural tie-break. The counter starts
/// above the processor count so flat ranks can never collide with the
/// seeds' id keys at time 0. Positions that compare equal through
/// different allocations share one twin, so sibling `idx` tie-breaks
/// keep their meaning.
fn merge_and_flatten(minted: Vec<Vec<Arc<Pos>>>, st: &mut LeaderState) {
    for run in &minted {
        debug_assert!(
            run.windows(2).all(|w| w[0].cmp(&w[1]) == Ordering::Less),
            "shard dispatch order must be sorted"
        );
    }
    let mut heads = vec![0usize; minted.len()];
    let mut prev: Option<Arc<Pos>> = None;
    let mut twin: Option<Arc<Pos>> = None;
    loop {
        let mut best: Option<usize> = None;
        for (sh, run) in minted.iter().enumerate() {
            if heads[sh] >= run.len() {
                continue;
            }
            best = Some(match best {
                None => sh,
                Some(b) => {
                    if run[heads[sh]].cmp(&minted[b][heads[b]]) == Ordering::Less {
                        sh
                    } else {
                        b
                    }
                }
            });
        }
        let Some(sh) = best else { break };
        let pos = Arc::clone(&minted[sh][heads[sh]]);
        heads[sh] += 1;
        st.merge_steps += 1;
        let fresh = match &prev {
            Some(q) => q.cmp(&pos) != Ordering::Equal,
            None => true,
        };
        if fresh {
            let idx = st.next_rank;
            st.next_rank = st.next_rank.checked_add(1).expect("rank space exhausted");
            twin = Some(Arc::new(Pos::new(pos.time, Key { parent: None, idx })));
        }
        pos.flat
            .set(Arc::clone(twin.as_ref().expect("just set")))
            .expect("position minted once");
        prev = Some(pos);
    }
}

/// Resolves the in-flight barrier episode once all processors have
/// arrived and the pre-barrier stores have drained, reproducing the
/// sequential release time and the trigger the release-event keys hang
/// off. The returned plan is applied by each shard for its own
/// processors at the start of the next round.
fn try_release(procs: usize, config: &MachineConfig, st: &mut LeaderState) -> Option<ReleasePlan> {
    if st.arrivals.len() < procs {
        return None;
    }
    debug_assert_eq!(st.arrivals.len(), procs, "one arrival per processor");
    let max_arrival = st
        .arrivals
        .iter()
        .map(|a| a.arrive)
        .max()
        .expect("nonempty");
    let min_arrival = st
        .arrivals
        .iter()
        .map(|a| a.arrive)
        .min()
        .expect("nonempty");
    // The rendezvous point: the last arrival in dispatch order (the one
    // whose dispatch would have run `release_barrier` sequentially).
    let trig = st
        .arrivals
        .iter()
        .max_by(|a, b| a.pos.cmp(&b.pos))
        .expect("nonempty");
    let arr_pos = Arc::clone(&trig.pos);
    let trig_base = trig.push_base;
    // Net stores in flight at the rendezvous: all +1s precede it in
    // dispatch order (their processors were running; they are blocked
    // now), so the prefix sum up to `arr_pos` is the sequential counter.
    let mut inflight: i64 = 0;
    let mut cut = 0usize;
    for d in st.deltas.iter() {
        if d.pos.as_ref().cmp(arr_pos.as_ref()) == Ordering::Greater {
            break;
        }
        inflight += d.delta;
        cut += 1;
    }
    let (release, trigger, base) = if inflight == 0 {
        (max_arrival + config.barrier_cycles, arr_pos, trig_base)
    } else {
        // Stores still in flight at the rendezvous: walk the remaining
        // drains in dispatch order to the zero crossing — the drain whose
        // dispatch runs `release_barrier(done)` sequentially (pushing the
        // release Runs as its first children, hence base 0).
        let mut found = None;
        for (i, d) in st.deltas.iter().enumerate().skip(cut) {
            inflight += d.delta;
            if inflight == 0 {
                found = Some(i);
                break;
            }
        }
        let i = found?; // drains still crossing; resolve in a later round
        let d = &st.deltas[i];
        cut = i + 1;
        (
            max_arrival.max(d.done) + config.barrier_cycles,
            Arc::clone(&d.pos),
            0,
        )
    };
    st.deltas.drain(..cut);
    st.episodes.push(BarrierEpoch {
        first_arrival: min_arrival,
        last_arrival: max_arrival,
        release,
    });
    let mut arrive_of = vec![0u64; procs];
    for a in &st.arrivals {
        arrive_of[a.proc as usize] = a.arrive;
    }
    st.arrivals.clear();
    Some(ReleasePlan {
        release,
        trigger,
        base,
        arrive_of,
    })
}

/// Assembles the final [`SimResult`] from the per-shard simulators:
/// per-processor state from owners, memory by home, counters by sum,
/// plus the per-shard breakdown.
fn merge(
    sims: &mut [Simulator],
    shard_of: &[u32],
    config: &MachineConfig,
    outputs: SimOutputs,
    st: LeaderState,
) -> SimResult {
    let procs = shard_of.len();
    let mut proc_cycles = vec![0u64; procs];
    let mut per_proc = vec![ProcCycles::default(); procs];
    let mut seqs: Vec<Vec<AccessId>> = Vec::with_capacity(procs);
    for pi in 0..procs {
        let o = shard_of[pi] as usize;
        proc_cycles[pi] = sims[o].procs[pi]
            .finished_at
            .expect("finished proc has finish time");
        per_proc[pi] = sims[o].metrics.per_proc[pi];
        seqs.push(std::mem::take(&mut sims[o].procs[pi].barrier_seq));
    }
    let exec_cycles = proc_cycles.iter().copied().max().unwrap_or(0);
    for (pi, finish) in proc_cycles.iter().enumerate() {
        per_proc[pi].idle = exec_cycles - finish;
    }
    let barriers_aligned = !config.check_barrier_alignment || seqs.iter().all(|sq| sq == &seqs[0]);

    let mut net = NetStats::default();
    let mut stalls = StallStats::default();
    let mut work = SimWork::default();
    let mut latency = LatencyHistogram::new();
    let mut shards: Vec<ShardStats> = Vec::with_capacity(sims.len());
    for (sid, sim) in sims.iter().enumerate() {
        let n = &sim.net;
        net.get_requests += n.get_requests;
        net.get_replies += n.get_replies;
        net.put_requests += n.put_requests;
        net.put_acks += n.put_acks;
        net.store_requests += n.store_requests;
        net.post_messages += n.post_messages;
        net.wait_messages += n.wait_messages;
        net.lock_messages += n.lock_messages;
        net.barriers += n.barriers;
        let sl = &sim.stalls;
        stalls.sync += sl.sync;
        stalls.barrier += sl.barrier;
        stalls.wait += sl.wait;
        stalls.lock += sl.lock;
        stalls.blocking += sl.blocking;
        let w = &sim.metrics.work;
        work.events_scheduled += w.events_scheduled;
        work.events_dequeued += w.events_dequeued;
        work.bucket_rotations += w.bucket_rotations;
        work.overflow_promotions += w.overflow_promotions;
        work.arena_reuses += w.arena_reuses;
        work.waiter_scans += w.waiter_scans;
        let l = &sim.metrics.latency;
        if l.count > 0 {
            latency.min = if latency.count == 0 {
                l.min
            } else {
                latency.min.min(l.min)
            };
            latency.max = latency.max.max(l.max);
            latency.count += l.count;
            latency.total += l.total;
            for (b, lb) in latency.buckets.iter_mut().zip(l.buckets.iter()) {
                *b += lb;
            }
        }
        let sh = sim.shard.as_ref().expect("shard ctx");
        work.shard_cross_messages += sh.cross_messages;
        work.shard_idle_windows += sh.idle_windows;
        work.shard_mailbox_drains += sh.published_batches;
        work.shard_parallel_drains += sh.drained_events;
        work.shard_parallel_flattens += sh.flattened_parents;
        shards.push(ShardStats {
            procs: shard_of.iter().filter(|&&o| o as usize == sid).count() as u32,
            events: w.events_dequeued,
            drained: sh.drained_events,
            flattened: sh.flattened_parents,
            cross_messages: sh.cross_messages,
            idle_windows: sh.idle_windows,
        });
    }
    net.barriers += st.episodes.len() as u64;
    work.shard_horizon_advances = st.horizon_advances;
    work.shard_leader_merge_steps = st.merge_steps;
    work.hash_lookups = 0;

    let memory = if outputs.memory {
        // Every shard has the identical layout; each location's value is
        // authoritative at its home's shard.
        let snaps: Vec<_> = sims.iter().map(|s| s.memory.snapshot()).collect();
        let mut merged = snaps[0].clone();
        for (vi, (var, vals)) in merged.iter_mut().enumerate() {
            for (idx, v) in vals.iter_mut().enumerate() {
                let home = sims[0].memory.home(Location {
                    var: *var,
                    index: idx as u64,
                });
                *v = snaps[shard_of[home as usize] as usize][vi].1[idx];
            }
        }
        merged
    } else {
        Vec::new()
    };
    let barrier_seqs = if outputs.barrier_seqs {
        seqs
    } else {
        Vec::new()
    };

    SimResult {
        exec_cycles,
        proc_cycles,
        net,
        stalls,
        memory,
        barriers_aligned,
        metrics: SimMetrics {
            per_proc,
            latency,
            barrier_epochs: st.episodes,
            work,
            shards,
        },
        barrier_seqs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    const MIXED_SRC: &str = r#"
        shared int A[16]; shared int X; flag F; lock l;
        fn main() {
            work(MYPROC * 57);
            A[MYPROC] = MYPROC;
            barrier;
            int v; v = A[(MYPROC + 1) % PROCS];
            if (MYPROC == 0) { post F; } else { wait F; }
            lock l; X = X + v; unlock l;
            barrier;
        }
    "#;

    fn assert_matches_sequential(src: &str, procs: u32, shards: usize, part: ShardPartition) {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let config = MachineConfig::cm5(procs);
        let seq = simulate(&cfg, &config).unwrap();
        let par = simulate_sharded_with(&cfg, &config, shards, part, SimOutputs::full()).unwrap();
        assert_eq!(seq.exec_cycles, par.exec_cycles, "s={shards} {part}");
        assert_eq!(seq.proc_cycles, par.proc_cycles, "s={shards} {part}");
        assert_eq!(seq.net, par.net, "s={shards} {part}");
        assert_eq!(seq.stalls, par.stalls, "s={shards} {part}");
        assert_eq!(seq.memory, par.memory, "s={shards} {part}");
        assert_eq!(seq.barriers_aligned, par.barriers_aligned);
        assert_eq!(seq.barrier_seqs, par.barrier_seqs);
        assert_eq!(
            seq.metrics.per_proc, par.metrics.per_proc,
            "s={shards} {part}"
        );
        assert_eq!(
            seq.metrics.latency, par.metrics.latency,
            "s={shards} {part}"
        );
        assert_eq!(seq.metrics.barrier_epochs, par.metrics.barrier_epochs);
    }

    #[test]
    fn sharded_matches_sequential_on_mixed_workload() {
        for shards in [1, 2, 3, 4, 8] {
            assert_matches_sequential(MIXED_SRC, 8, shards, ShardPartition::Block);
        }
    }

    #[test]
    fn sharded_matches_sequential_under_all_partitions() {
        for part in ShardPartition::ALL {
            for shards in [2, 3, 4] {
                assert_matches_sequential(MIXED_SRC, 8, shards, part);
            }
        }
    }

    #[test]
    fn partition_maps_are_valid_and_deterministic() {
        let cfg = lower_main(&prepare_program(MIXED_SRC).unwrap()).unwrap();
        for part in ShardPartition::ALL {
            for (procs, s) in [(8u32, 4usize), (13, 4), (16, 3), (4, 8)] {
                let s = s.min(procs as usize);
                let map = partition_map(&cfg, procs, s, part);
                assert_eq!(map.len(), procs as usize, "{part} p{procs} s{s}");
                assert!(
                    map.iter().all(|&o| (o as usize) < s),
                    "{part} p{procs} s{s}"
                );
                assert_eq!(
                    map,
                    partition_map(&cfg, procs, s, part),
                    "{part} deterministic"
                );
            }
        }
        // Cyclic is round-robin; Block is contiguous.
        assert_eq!(
            partition_map(&cfg, 4, 2, ShardPartition::Cyclic),
            [0, 1, 0, 1]
        );
        assert_eq!(
            partition_map(&cfg, 4, 2, ShardPartition::Block),
            [0, 0, 1, 1]
        );
    }

    #[test]
    fn profiled_partition_spreads_hot_homes() {
        // All scalar/flag/lock homes land on processors 0..3 (round-robin),
        // and every processor hammers them: a block partition of 8 procs
        // into 4 shards puts all four hot homes in shards 0-1, while the
        // profiled partition must spread them across shards.
        let src = r#"
            shared int X; shared int Y; flag F; lock l;
            fn main() {
                lock l; X = X + 1; Y = Y + MYPROC; unlock l;
                if (MYPROC == 0) { post F; } else { wait F; }
                barrier;
            }
        "#;
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let map = partition_map(&cfg, 8, 4, ShardPartition::Profiled);
        let hot_shards: std::collections::HashSet<u32> = (0..4).map(|p| map[p as usize]).collect();
        assert!(
            hot_shards.len() > 2,
            "hot homes 0..3 should spread across shards, got map {map:?}"
        );
    }

    #[test]
    fn sharded_matches_sequential_on_store_heavy_barrier() {
        // One-way stores force the store-quiescence (drain-triggered)
        // release path through the leader's delta walk.
        let src = r#"
            shared int A[32];
            fn main() {
                A[(MYPROC + 5) % PROCS] = MYPROC;
                barrier;
                int v; v = A[MYPROC];
                work(v * 10);
                barrier;
            }
        "#;
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let analysis = syncopt_core::analyze_for(&cfg, 8);
        let opt = syncopt_codegen::optimize(
            &cfg,
            &analysis,
            syncopt_codegen::OptLevel::OneWay,
            syncopt_codegen::DelayChoice::SyncRefined,
        );
        let config = MachineConfig::cm5(8);
        let seq = simulate(&opt.cfg, &config).unwrap();
        for part in ShardPartition::ALL {
            for shards in [2, 4, 8] {
                let par =
                    simulate_sharded_with(&opt.cfg, &config, shards, part, SimOutputs::full())
                        .unwrap();
                assert_eq!(seq.exec_cycles, par.exec_cycles, "s={shards} {part}");
                assert_eq!(seq.memory, par.memory, "s={shards} {part}");
                assert_eq!(
                    seq.metrics.per_proc, par.metrics.per_proc,
                    "s={shards} {part}"
                );
                assert_eq!(seq.metrics.barrier_epochs, par.metrics.barrier_epochs);
            }
        }
    }

    #[test]
    fn sharded_matches_on_all_table1_machines() {
        let cfg = lower_main(&prepare_program(MIXED_SRC).unwrap()).unwrap();
        for config in MachineConfig::table1(8) {
            let seq = simulate(&cfg, &config).unwrap();
            let par = simulate_sharded(&cfg, &config, 4, SimOutputs::full()).unwrap();
            assert_eq!(seq.exec_cycles, par.exec_cycles, "{}", config.name);
            assert_eq!(seq.memory, par.memory, "{}", config.name);
            assert_eq!(seq.stalls, par.stalls, "{}", config.name);
        }
    }

    #[test]
    fn sharded_counts_parallel_machinery() {
        let cfg = lower_main(&prepare_program(MIXED_SRC).unwrap()).unwrap();
        let config = MachineConfig::cm5(8);
        let par = simulate_sharded(&cfg, &config, 4, SimOutputs::lean()).unwrap();
        let w = &par.metrics.work;
        assert!(w.shard_horizon_advances > 0, "windows must advance");
        assert!(
            w.shard_cross_messages > 0,
            "remote traffic must cross shards"
        );
        assert!(w.shard_mailbox_drains > 0, "mailboxes must drain");
        assert!(w.shard_leader_merge_steps > 0, "leader must rank positions");
        assert_eq!(
            w.shard_parallel_drains, w.shard_cross_messages,
            "every cross message is drained by its owner exactly once"
        );
        assert_eq!(w.hash_lookups, 0);
        // The per-shard breakdown covers the whole run.
        assert_eq!(par.metrics.shards.len(), 4);
        assert_eq!(
            par.metrics.shards.iter().map(|s| s.events).sum::<u64>(),
            w.events_dequeued
        );
        assert_eq!(par.metrics.shards.iter().map(|s| s.procs).sum::<u32>(), 8);
        assert!(par.metrics.shard_imbalance_permille().unwrap() >= 1000);
        // Sequential runs report no shard machinery at all.
        let seq = simulate(&cfg, &config).unwrap();
        assert_eq!(seq.metrics.work.shard_horizon_advances, 0);
        assert_eq!(seq.metrics.work.shard_cross_messages, 0);
        assert!(seq.metrics.shards.is_empty());
    }

    #[test]
    fn sharded_deadlock_matches_sequential_report() {
        let src = "fn main() { if (MYPROC == 0) { barrier; } }";
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let config = MachineConfig::cm5(2);
        let seq = simulate(&cfg, &config).unwrap_err();
        let par = simulate_sharded(&cfg, &config, 2, SimOutputs::full()).unwrap_err();
        assert_eq!(seq.message(), par.message());
    }

    #[test]
    fn sharded_runtime_fault_matches_sequential_report() {
        let src = "shared int A[4]; fn main() { A[7 + MYPROC] = 1; }";
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let config = MachineConfig::cm5(4);
        let seq = simulate(&cfg, &config).unwrap_err();
        let par = simulate_sharded(&cfg, &config, 2, SimOutputs::full()).unwrap_err();
        assert_eq!(seq.message(), par.message());
    }

    #[test]
    fn empty_program_and_shard_clamping() {
        let cfg = lower_main(&prepare_program("fn main() { }").unwrap()).unwrap();
        let config = MachineConfig::cm5(2);
        // More shards than processors (and zero shards) clamp cleanly.
        for shards in [0, 1, 2, 16] {
            let r = simulate_sharded(&cfg, &config, shards, SimOutputs::full()).unwrap();
            assert_eq!(r.exec_cycles, 0);
            assert_eq!(r.proc_cycles, vec![0; 2]);
        }
    }

    #[test]
    fn index_eval_resolves_spmd_patterns() {
        use syncopt_ir::ids::VarId;
        // MYPROC * 4 + 1 with MYPROC = 3 -> 13.
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Binary {
                op: BinOp::Mul,
                lhs: Box::new(Expr::MyProc),
                rhs: Box::new(Expr::Int(4)),
            }),
            rhs: Box::new(Expr::Int(1)),
        };
        assert_eq!(eval_index(&e, 3, 8, None), Some(13));
        // An unknown local without a binding is unresolvable...
        let q = VarId::from_index(0);
        let loopy = Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(Expr::Local(q)),
            rhs: Box::new(Expr::Procs),
        };
        assert_eq!(eval_index(&loopy, 0, 8, None), None);
        // ...but sampling spreads it across the processor range.
        let samples = index_samples(Some(&loopy), 0, 8);
        assert!(
            samples.len() > 1,
            "loop variable must be sampled: {samples:?}"
        );
        // Negative and dividing-by-zero indexes produce no samples.
        assert_eq!(eval_index(&Expr::Int(-1), 0, 8, None), None);
        let div0 = Expr::Binary {
            op: BinOp::Div,
            lhs: Box::new(Expr::Int(1)),
            rhs: Box::new(Expr::Int(0)),
        };
        assert_eq!(eval_index(&div0, 0, 8, None), None);
    }
}
