//! Simulator observability: per-processor cycle accounting, remote-access
//! latency histograms, and the barrier epoch timeline.
//!
//! The paper's evaluation (§8) is built on exactly these measurements —
//! cycle counts, message counts, and communication overlap on a CM-5.
//! [`SimMetrics`] is the machine-stage contribution to the pipeline
//! `PipelineReport`: every simulated cycle of every processor is
//! attributed to exactly one category, so
//!
//! ```text
//! busy + sync + barrier + wait + lock + network_wait + idle == exec_cycles
//! ```
//!
//! holds per processor ([`ProcCycles::accounted`]); the conservation is
//! asserted by the simulator's test suite.

/// Where one processor's cycles went, from time 0 to the end of the
/// simulation (`exec_cycles`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcCycles {
    /// Executing instructions: local ops, `work`, memory touches, message
    /// injection (including NIC backpressure), and cycles stolen by
    /// message handling.
    pub busy: u64,
    /// Blocked on a `sync_ctr` with outstanding split-phase operations.
    pub sync: u64,
    /// Blocked at a barrier rendezvous.
    pub barrier: u64,
    /// Blocked in `wait` for a flag.
    pub wait: u64,
    /// Blocked for a lock grant.
    pub lock: u64,
    /// Blocked for the round trip of a *blocking* remote access.
    pub network_wait: u64,
    /// Finished while other processors were still running.
    pub idle: u64,
    /// Messages this processor injected into the network.
    pub msgs_sent: u64,
    /// Remote requests serviced at this processor's memory home.
    pub msgs_handled: u64,
}

impl ProcCycles {
    /// Total accounted cycles; equals `exec_cycles` for every processor.
    pub fn accounted(&self) -> u64 {
        self.busy + self.stalled() + self.network_wait + self.idle
    }

    /// Cycles blocked on synchronization (sync + barrier + wait + lock).
    pub fn stalled(&self) -> u64 {
        self.sync + self.barrier + self.wait + self.lock
    }
}

/// A power-of-two histogram of remote-access completion latencies
/// (cycles from initiation to reply delivery — or to arrival at the home,
/// for unacknowledged one-way stores). Queueing at hot homes shows up as
/// mass in the upper buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts latencies in `[BOUNDS[i-1], BOUNDS[i])`; the
    /// last bucket is unbounded.
    pub buckets: [u64; LatencyHistogram::BOUNDS.len() + 1],
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples (for the mean).
    pub total: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl LatencyHistogram {
    /// Upper bucket boundaries, in cycles.
    pub const BOUNDS: [u64; 9] = [64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384];

    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; Self::BOUNDS.len() + 1],
            count: 0,
            total: 0,
            min: 0,
            max: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: u64) {
        let i = Self::BOUNDS
            .iter()
            .position(|&b| latency < b)
            .unwrap_or(Self::BOUNDS.len());
        self.buckets[i] += 1;
        self.min = if self.count == 0 {
            latency
        } else {
            self.min.min(latency)
        };
        self.max = self.max.max(latency);
        self.count += 1;
        self.total += latency;
    }

    /// Mean latency (0 when empty).
    pub fn mean(&self) -> u64 {
        self.total.checked_div(self.count).unwrap_or(0)
    }

    /// The human-readable label of bucket `i` (`"<64"`, …, `">=16384"`).
    pub fn bucket_label(i: usize) -> String {
        if i < Self::BOUNDS.len() {
            format!("<{}", Self::BOUNDS[i])
        } else {
            format!(">={}", Self::BOUNDS[Self::BOUNDS.len() - 1])
        }
    }

    /// The cycle range bucket `i` counts, as `"[64, 128)"` (the last
    /// bucket is `"[16384, inf)"`).
    pub fn bucket_range(i: usize) -> String {
        let lo = if i == 0 { 0 } else { Self::BOUNDS[i - 1] };
        if i < Self::BOUNDS.len() {
            format!("[{lo}, {})", Self::BOUNDS[i])
        } else {
            format!("[{lo}, inf)")
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// One completed barrier episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierEpoch {
    /// When the first processor arrived.
    pub first_arrival: u64,
    /// When the last processor arrived (rendezvous point).
    pub last_arrival: u64,
    /// When all processors were released (includes store drain and the
    /// combine/broadcast cost).
    pub release: u64,
}

impl BarrierEpoch {
    /// Arrival skew: how long the fastest processor waited for the
    /// slowest (load imbalance made visible).
    pub fn skew(&self) -> u64 {
        self.last_arrival - self.first_arrival
    }
}

/// All-integer work counters for the simulator engine itself: how much
/// machinery the event queue and state tables moved to produce the
/// result. These are the `sim_throughput` benchmark's regression-gate
/// signal — exact, deterministic, and independent of host load.
///
/// The dense-state invariant the counters witness: `hash_lookups` is the
/// number of hash-map probes performed inside the cycle loop, and with
/// the flat `Vec`-indexed state tables it is **always zero**.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimWork {
    /// Events pushed into the queue (arena allocations + free-list reuses).
    pub events_scheduled: u64,
    /// Events popped and dispatched.
    pub events_dequeued: u64,
    /// Calendar-wheel bucket slots inspected while seeking the next
    /// nonempty bucket (the wheel's analogue of heap sift work).
    pub bucket_rotations: u64,
    /// Events that missed the wheel window and went through the
    /// binary-heap overflow rung (scheduled far in the future).
    pub overflow_promotions: u64,
    /// Event-arena slots recycled from the free list (allocation-free
    /// steady state shows up as `arena_reuses` approaching
    /// `events_scheduled`).
    pub arena_reuses: u64,
    /// Waiter-list entries scanned when a `post` wakes blocked `wait`ers.
    pub waiter_scans: u64,
    /// Hash-table probes in the cycle loop. Zero by construction for the
    /// calendar engine; the reference heap engine reports its historical
    /// per-event map traffic here.
    pub hash_lookups: u64,
    /// Synchronization-horizon windows advanced by the sharded engine
    /// (zero for the sequential engines).
    pub shard_horizon_advances: u64,
    /// Events routed through a shard-pair mailbox instead of a local
    /// wheel (cross-shard arrivals, deliveries, and barrier traffic).
    pub shard_cross_messages: u64,
    /// Non-empty mailbox batches drained at horizon boundaries.
    pub shard_mailbox_drains: u64,
    /// Windows in which a shard had no event to dispatch (conservative
    /// lookahead idling — the parallel engine's waiting-on-peers signal).
    pub shard_idle_windows: u64,
    /// Positions rank-assigned by the round leader's key merge — the
    /// dominant work left in the leader's serial section (zero for the
    /// sequential engines).
    pub shard_leader_merge_steps: u64,
    /// Cross-shard events drained from mailboxes by their *owning* shard
    /// in the parallel phase (work the leader no longer serializes).
    pub shard_parallel_drains: u64,
    /// Event keys rewritten to their flat positions by the owning shard
    /// in the parallel phase (work the leader no longer serializes).
    pub shard_parallel_flattens: u64,
}

impl SimWork {
    /// Events dequeued per 1000 simulated cycles — the throughput-shape
    /// proxy the bench report derives (integer, deterministic).
    pub fn events_per_1k_cycles(&self, exec_cycles: u64) -> u64 {
        self.events_dequeued * 1000 / exec_cycles.max(1)
    }
}

/// One shard's share of a sharded run: how much of the event load, the
/// cross-shard traffic, and the lookahead idling landed on it. The
/// max/mean ratio of `events` across shards is the load-imbalance signal
/// the partitioning strategies compete on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Simulated processors owned by this shard.
    pub procs: u32,
    /// Events dispatched by this shard (its share of `events_dequeued`).
    pub events: u64,
    /// Cross-shard events this shard drained from its inbound mailboxes.
    pub drained: u64,
    /// Event keys this shard rewrote to flat positions.
    pub flattened: u64,
    /// Cross-shard events this shard sent.
    pub cross_messages: u64,
    /// Windows in which this shard had nothing to dispatch.
    pub idle_windows: u64,
}

/// Everything the simulator measured beyond the headline result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimMetrics {
    /// Per-processor cycle accounting; index = processor id.
    pub per_proc: Vec<ProcCycles>,
    /// Completion latency of remote gets/puts/stores.
    pub latency: LatencyHistogram,
    /// Barrier episodes in completion order.
    pub barrier_epochs: Vec<BarrierEpoch>,
    /// Engine work counters (event queue, state tables).
    pub work: SimWork,
    /// Per-shard breakdown of a sharded run; empty for the sequential
    /// engines. Like [`SimWork`], this is engine machinery — it varies
    /// with shard count and partition strategy while every other
    /// observable stays bit-identical.
    pub shards: Vec<ShardStats>,
}

impl SimMetrics {
    /// Per-shard event-load imbalance as `max * 1000 / mean` over
    /// [`ShardStats::events`] (1000 = perfectly balanced). `None` for
    /// sequential runs or when no events were dispatched.
    pub fn shard_imbalance_permille(&self) -> Option<u64> {
        let total: u64 = self.shards.iter().map(|s| s.events).sum();
        if self.shards.is_empty() || total == 0 {
            return None;
        }
        let max = self
            .shards
            .iter()
            .map(|s| s.events)
            .max()
            .expect("nonempty");
        Some(max * 1000 * self.shards.len() as u64 / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_cycles_accounting_sums_categories() {
        let p = ProcCycles {
            busy: 10,
            sync: 1,
            barrier: 2,
            wait: 3,
            lock: 4,
            network_wait: 5,
            idle: 6,
            msgs_sent: 0,
            msgs_handled: 0,
        };
        assert_eq!(p.stalled(), 10);
        assert_eq!(p.accounted(), 31);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = LatencyHistogram::new();
        for l in [10, 63, 64, 400, 20_000] {
            h.record(l);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 10);
        assert_eq!(h.max, 20_000);
        assert_eq!(h.mean(), (10 + 63 + 64 + 400 + 20_000) / 5);
        assert_eq!(h.buckets[0], 2, "10 and 63 land below 64");
        assert_eq!(h.buckets[1], 1, "64 lands in [64,128)");
        assert_eq!(h.buckets[3], 1, "400 lands in [256,512)");
        assert_eq!(*h.buckets.last().unwrap(), 1, "20000 overflows");
        assert_eq!(LatencyHistogram::bucket_label(0), "<64");
        assert_eq!(LatencyHistogram::bucket_label(9), ">=16384");
        assert_eq!(LatencyHistogram::bucket_range(0), "[0, 64)");
        assert_eq!(LatencyHistogram::bucket_range(1), "[64, 128)");
        assert_eq!(LatencyHistogram::bucket_range(9), "[16384, inf)");
    }

    #[test]
    fn shard_imbalance_ratio() {
        let mut m = SimMetrics::default();
        assert_eq!(m.shard_imbalance_permille(), None, "sequential run");
        m.shards = vec![
            ShardStats {
                events: 300,
                ..Default::default()
            },
            ShardStats {
                events: 100,
                ..Default::default()
            },
        ];
        // max 300, mean 200 -> 1500 permille.
        assert_eq!(m.shard_imbalance_permille(), Some(1500));
        m.shards = vec![ShardStats {
            events: 42,
            ..Default::default()
        }];
        assert_eq!(
            m.shard_imbalance_permille(),
            Some(1000),
            "one shard is balanced"
        );
    }

    #[test]
    fn barrier_epoch_skew() {
        let e = BarrierEpoch {
            first_arrival: 100,
            last_arrival: 180,
            release: 305,
        };
        assert_eq!(e.skew(), 80);
    }
}
