//! Machine parameters (Table 1 of the paper).
//!
//! The paper quotes round-trip remote access latencies and local access
//! times in machine cycles:
//!
//! | machine | remote | local |
//! |---------|--------|-------|
//! | CM-5    | 400    | 30    |
//! | T3D     | 85     | 23    |
//! | DASH    | 110    | 26    |
//!
//! The simulator decomposes the round trip into
//! `send_overhead + network_latency + handler + network_latency +
//! recv_overhead`; the presets below reproduce the Table 1 totals exactly
//! (see [`MachineConfig::remote_round_trip`] and the tests).

/// Parameters of the simulated distributed-memory multiprocessor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Human-readable machine name.
    pub name: String,
    /// Number of processors.
    pub procs: u32,
    /// Cycles for a blocking access to the local memory module.
    pub local_access_cycles: u64,
    /// Issuer CPU cycles to inject a message into the network.
    pub send_overhead: u64,
    /// Issuer CPU cycles to consume a data reply.
    pub recv_overhead: u64,
    /// One-way wire latency between any two processors.
    pub network_latency: u64,
    /// Owner-side cycles to service a request (read memory / apply write).
    pub handler_cycles: u64,
    /// Extra owner cycles to generate an acknowledgement, plus issuer
    /// cycles stolen when the ack arrives (two-way puts pay this twice;
    /// one-way stores never do).
    pub ack_cycles: u64,
    /// Cycles a barrier costs after the rendezvous (combine/broadcast).
    pub barrier_cycles: u64,
    /// Cycles per local compute instruction (assignments, address math).
    pub local_op_cycles: u64,
    /// Minimum spacing between two message *injections* by one processor
    /// (NIC serialization). `0` models an infinitely fast injection port;
    /// the CM-5's network interface could not keep two packets per
    /// `send_overhead`, so bursts of puts/stores serialize at this rate
    /// beyond the CPU overhead already charged.
    pub injection_gap_cycles: u64,
    /// Upper bound on executed instructions per processor (runaway guard).
    pub max_steps: u64,
    /// Verify at runtime that all processors execute the same barrier
    /// sequence (the paper's §5.2 dynamic check).
    pub check_barrier_alignment: bool,
}

impl MachineConfig {
    /// A 64-processor Thinking Machines CM-5 (the paper's testbed).
    pub fn cm5(procs: u32) -> Self {
        MachineConfig {
            name: "CM-5".to_string(),
            procs,
            local_access_cycles: 30,
            send_overhead: 25,
            recv_overhead: 25,
            network_latency: 160,
            handler_cycles: 30,
            ack_cycles: 15,
            barrier_cycles: 125,
            local_op_cycles: 2,
            injection_gap_cycles: 8,
            max_steps: 200_000_000,
            check_barrier_alignment: true,
        }
    }

    /// A Cray T3D (low-overhead remote access).
    pub fn t3d(procs: u32) -> Self {
        MachineConfig {
            name: "T3D".to_string(),
            procs,
            local_access_cycles: 23,
            send_overhead: 7,
            recv_overhead: 7,
            network_latency: 24,
            handler_cycles: 23,
            ack_cycles: 5,
            barrier_cycles: 40,
            local_op_cycles: 2,
            injection_gap_cycles: 2,
            max_steps: 200_000_000,
            check_barrier_alignment: true,
        }
    }

    /// A Stanford DASH (hardware cache coherence; we model its remote
    /// fill latency).
    pub fn dash(procs: u32) -> Self {
        MachineConfig {
            name: "DASH".to_string(),
            procs,
            local_access_cycles: 26,
            send_overhead: 12,
            recv_overhead: 12,
            network_latency: 30,
            handler_cycles: 26,
            ack_cycles: 8,
            barrier_cycles: 60,
            local_op_cycles: 2,
            injection_gap_cycles: 3,
            max_steps: 200_000_000,
            check_barrier_alignment: true,
        }
    }

    /// The modeled round-trip cost of a blocking remote access — must
    /// match the paper's Table 1 "Remote Access" row.
    pub fn remote_round_trip(&self) -> u64 {
        self.send_overhead
            + self.network_latency
            + self.handler_cycles
            + self.network_latency
            + self.recv_overhead
    }

    /// All three Table 1 presets with the given processor count.
    pub fn table1(procs: u32) -> Vec<MachineConfig> {
        vec![Self::cm5(procs), Self::t3d(procs), Self::dash(procs)]
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::cm5(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_round_trips_match_paper() {
        assert_eq!(MachineConfig::cm5(64).remote_round_trip(), 400);
        assert_eq!(MachineConfig::t3d(64).remote_round_trip(), 85);
        assert_eq!(MachineConfig::dash(64).remote_round_trip(), 110);
    }

    #[test]
    fn table1_local_accesses_match_paper() {
        assert_eq!(MachineConfig::cm5(64).local_access_cycles, 30);
        assert_eq!(MachineConfig::t3d(64).local_access_cycles, 23);
        assert_eq!(MachineConfig::dash(64).local_access_cycles, 26);
    }

    #[test]
    fn presets_cover_all_three_machines() {
        let names: Vec<String> = MachineConfig::table1(8)
            .into_iter()
            .map(|c| c.name)
            .collect();
        assert_eq!(names, ["CM-5", "T3D", "DASH"]);
    }

    #[test]
    fn default_is_paper_testbed() {
        let c = MachineConfig::default();
        assert_eq!(c.name, "CM-5");
        assert_eq!(c.procs, 64);
    }
}
