//! The distributed global address space.
//!
//! Shared scalars are placed round-robin across processors; distributed
//! arrays use the Split-C block layout (element `i` of an `L`-element array
//! on `P` processors lives on processor `i / ceil(L / P)`). Flags and locks
//! also have home processors (their operations are messages to the home).

use crate::value::{SimError, Value};
use std::collections::HashMap;
use syncopt_ir::ids::VarId;
use syncopt_ir::vars::{VarKind, VarTable};

/// A resolved shared location: variable plus concrete element index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location {
    /// The shared variable.
    pub var: VarId,
    /// Element index (0 for scalars).
    pub index: u64,
}

/// The machine's shared memory plus synchronization-object state.
#[derive(Debug, Clone)]
pub struct SharedMemory {
    procs: u32,
    scalars: HashMap<VarId, Value>,
    arrays: HashMap<VarId, Vec<Value>>,
    flags: HashMap<VarId, Vec<bool>>,
    home_cache: HashMap<VarId, HomeInfo>,
}

#[derive(Debug, Clone, Copy)]
enum HomeInfo {
    /// Fixed home processor (scalars, scalar flags, locks).
    Fixed(u32),
    /// Block-distributed: `home = index / block_size`.
    Blocked { block: u64 },
}

impl SharedMemory {
    /// Builds the memory image for a program's variables, zero-initialized.
    pub fn new(procs: u32, vars: &VarTable) -> Self {
        let mut scalars = HashMap::new();
        let mut arrays = HashMap::new();
        let mut flags = HashMap::new();
        let mut home_cache = HashMap::new();
        let mut rr = 0u32;
        for (id, info) in vars.iter() {
            match info.kind {
                VarKind::SharedScalar => {
                    scalars.insert(id, Value::zero(info.ty));
                    home_cache.insert(id, HomeInfo::Fixed(rr % procs));
                    rr += 1;
                }
                VarKind::SharedArray { len } => {
                    arrays.insert(id, vec![Value::zero(info.ty); len as usize]);
                    home_cache.insert(
                        id,
                        HomeInfo::Blocked {
                            block: len.div_ceil(procs as u64).max(1),
                        },
                    );
                }
                VarKind::Flag => {
                    flags.insert(id, vec![false]);
                    home_cache.insert(id, HomeInfo::Fixed(rr % procs));
                    rr += 1;
                }
                VarKind::FlagArray { len } => {
                    flags.insert(id, vec![false; len as usize]);
                    home_cache.insert(
                        id,
                        HomeInfo::Blocked {
                            block: len.div_ceil(procs as u64).max(1),
                        },
                    );
                }
                VarKind::Lock => {
                    home_cache.insert(id, HomeInfo::Fixed(rr % procs));
                    rr += 1;
                }
                VarKind::Local | VarKind::LocalArray { .. } => {}
            }
        }
        SharedMemory {
            procs,
            scalars,
            arrays,
            flags,
            home_cache,
        }
    }

    /// The home processor of a location.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a shared object.
    pub fn home(&self, loc: Location) -> u32 {
        match self.home_cache[&loc.var] {
            HomeInfo::Fixed(p) => p,
            HomeInfo::Blocked { block } => ((loc.index / block) as u32).min(self.procs - 1),
        }
    }

    /// Reads a shared data location.
    ///
    /// # Errors
    ///
    /// Fails on unknown variables or out-of-bounds indices.
    pub fn load(&self, loc: Location) -> Result<Value, SimError> {
        if let Some(v) = self.scalars.get(&loc.var) {
            return Ok(*v);
        }
        self.arrays
            .get(&loc.var)
            .and_then(|a| a.get(loc.index as usize))
            .copied()
            .ok_or_else(|| {
                SimError::new(format!(
                    "shared load out of bounds: {}[{}]",
                    loc.var, loc.index
                ))
            })
    }

    /// Writes a shared data location.
    ///
    /// # Errors
    ///
    /// Fails on unknown variables or out-of-bounds indices.
    pub fn store(&mut self, loc: Location, value: Value) -> Result<(), SimError> {
        if let Some(v) = self.scalars.get_mut(&loc.var) {
            *v = value;
            return Ok(());
        }
        let slot = self
            .arrays
            .get_mut(&loc.var)
            .and_then(|a| a.get_mut(loc.index as usize))
            .ok_or_else(|| {
                SimError::new(format!(
                    "shared store out of bounds: {}[{}]",
                    loc.var, loc.index
                ))
            })?;
        *slot = value;
        Ok(())
    }

    /// Reads a flag.
    ///
    /// # Errors
    ///
    /// Fails on unknown flags or out-of-bounds indices.
    pub fn flag(&self, loc: Location) -> Result<bool, SimError> {
        self.flags
            .get(&loc.var)
            .and_then(|f| f.get(loc.index as usize))
            .copied()
            .ok_or_else(|| SimError::new(format!("unknown flag {}[{}]", loc.var, loc.index)))
    }

    /// Sets a flag (posts the event).
    ///
    /// # Errors
    ///
    /// Fails on unknown flags or out-of-bounds indices.
    pub fn set_flag(&mut self, loc: Location) -> Result<(), SimError> {
        let slot = self
            .flags
            .get_mut(&loc.var)
            .and_then(|f| f.get_mut(loc.index as usize))
            .ok_or_else(|| SimError::new(format!("unknown flag {}[{}]", loc.var, loc.index)))?;
        *slot = true;
        Ok(())
    }

    /// Snapshot of all shared data (for end-state equivalence checks).
    pub fn snapshot(&self) -> Vec<(VarId, Vec<Value>)> {
        let mut out: Vec<(VarId, Vec<Value>)> = Vec::new();
        for (&v, &val) in &self.scalars {
            out.push((v, vec![val]));
        }
        for (&v, arr) in &self.arrays {
            out.push((v, arr.clone()));
        }
        out.sort_by_key(|(v, _)| *v);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::ast::Type;
    use syncopt_ir::vars::VarInfo;

    fn vars() -> (VarTable, VarId, VarId, VarId, VarId) {
        let mut t = VarTable::new();
        let x = t.push(VarInfo {
            name: "X".into(),
            kind: VarKind::SharedScalar,
            ty: Type::Int,
        });
        let a = t.push(VarInfo {
            name: "A".into(),
            kind: VarKind::SharedArray { len: 16 },
            ty: Type::Double,
        });
        let f = t.push(VarInfo {
            name: "f".into(),
            kind: VarKind::FlagArray { len: 4 },
            ty: Type::Flag,
        });
        let l = t.push(VarInfo {
            name: "l".into(),
            kind: VarKind::Lock,
            ty: Type::Lock,
        });
        (t, x, a, f, l)
    }

    #[test]
    fn block_layout_homes() {
        let (t, _, a, _, _) = vars();
        let m = SharedMemory::new(4, &t);
        // 16 elements on 4 procs: block of 4.
        assert_eq!(m.home(Location { var: a, index: 0 }), 0);
        assert_eq!(m.home(Location { var: a, index: 3 }), 0);
        assert_eq!(m.home(Location { var: a, index: 4 }), 1);
        assert_eq!(m.home(Location { var: a, index: 15 }), 3);
    }

    #[test]
    fn scalar_homes_are_round_robin() {
        let (t, x, _, f, l) = vars();
        let m = SharedMemory::new(4, &t);
        let hx = m.home(Location { var: x, index: 0 });
        let hf_home = m.home(Location { var: f, index: 0 });
        let hl = m.home(Location { var: l, index: 0 });
        // x and l are round-robin fixed; the flag array is blocked.
        assert_eq!(hx, 0);
        assert_eq!(hl, 1);
        assert_eq!(hf_home, 0);
    }

    #[test]
    fn load_store_round_trip() {
        let (t, x, a, _, _) = vars();
        let mut m = SharedMemory::new(4, &t);
        let lx = Location { var: x, index: 0 };
        assert_eq!(m.load(lx).unwrap(), Value::Int(0));
        m.store(lx, Value::Int(9)).unwrap();
        assert_eq!(m.load(lx).unwrap(), Value::Int(9));
        let la = Location { var: a, index: 7 };
        m.store(la, Value::Double(2.5)).unwrap();
        assert_eq!(m.load(la).unwrap(), Value::Double(2.5));
        assert!(m.load(Location { var: a, index: 99 }).is_err());
    }

    #[test]
    fn flags_start_clear_and_latch() {
        let (t, _, _, f, _) = vars();
        let mut m = SharedMemory::new(4, &t);
        let lf = Location { var: f, index: 2 };
        assert!(!m.flag(lf).unwrap());
        m.set_flag(lf).unwrap();
        assert!(m.flag(lf).unwrap());
        assert!(m.flag(Location { var: f, index: 9 }).is_err());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let (t, x, _, _, _) = vars();
        let mut m = SharedMemory::new(2, &t);
        m.store(Location { var: x, index: 0 }, Value::Int(3))
            .unwrap();
        let s1 = m.snapshot();
        let s2 = m.snapshot();
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 2, "scalar + array");
    }
}
