//! The distributed global address space.
//!
//! Shared scalars are placed round-robin across processors; distributed
//! arrays use the Split-C block layout (element `i` of an `L`-element array
//! on `P` processors lives on processor `i / ceil(L / P)`). Flags and locks
//! also have home processors (their operations are messages to the home).
//!
//! Storage is **dense**: every shared data variable and every flag gets a
//! contiguous slice of one flat slot vector, with per-variable base
//! offsets indexed by the dense [`VarId`]s the IR guarantees. The whole
//! image is sized once at construction; the simulator's cycle loop then
//! performs zero hashing and zero allocation to touch memory.

use crate::value::{SimError, Value};
use syncopt_ir::ids::VarId;
use syncopt_ir::vars::{VarKind, VarTable};

/// A resolved shared location: variable plus concrete element index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location {
    /// The shared variable.
    pub var: VarId,
    /// Element index (0 for scalars).
    pub index: u64,
}

/// Sentinel base offset for variables without storage of that class.
const NO_SLOT: u32 = u32::MAX;

/// The machine's shared memory plus synchronization-object state.
#[derive(Debug, Clone)]
pub struct SharedMemory {
    procs: u32,
    /// Home placement per variable (dense by `VarId`).
    home: Vec<HomeInfo>,
    /// Base offset of each data variable into `data` (`NO_SLOT` when the
    /// variable has no shared data storage).
    data_base: Vec<u32>,
    /// Element count of each data variable.
    data_len: Vec<u32>,
    /// All shared data slots, zero-initialized, in `VarId` order.
    data: Vec<Value>,
    /// Base offset of each flag variable into `flags` (`NO_SLOT` when the
    /// variable is not a flag).
    flag_base: Vec<u32>,
    /// Element count of each flag variable.
    flag_len: Vec<u32>,
    /// All flag slots, in `VarId` order.
    flags: Vec<bool>,
}

#[derive(Debug, Clone, Copy)]
enum HomeInfo {
    /// Not a shared object (locals have no home).
    NotShared,
    /// Fixed home processor (scalars, scalar flags, locks).
    Fixed(u32),
    /// Block-distributed: `home = index / block_size`.
    Blocked { block: u64 },
}

impl SharedMemory {
    /// Builds the memory image for a program's variables, zero-initialized.
    pub fn new(procs: u32, vars: &VarTable) -> Self {
        let n = vars.len();
        let mut home = vec![HomeInfo::NotShared; n];
        let mut data_base = vec![NO_SLOT; n];
        let mut data_len = vec![0u32; n];
        let mut flag_base = vec![NO_SLOT; n];
        let mut flag_len = vec![0u32; n];
        let mut data = Vec::new();
        let mut flags = Vec::new();
        let mut rr = 0u32;
        for (id, info) in vars.iter() {
            let i = id.index();
            match info.kind {
                VarKind::SharedScalar => {
                    data_base[i] = u32::try_from(data.len()).expect("data image too large");
                    data_len[i] = 1;
                    data.push(Value::zero(info.ty));
                    home[i] = HomeInfo::Fixed(rr % procs);
                    rr += 1;
                }
                VarKind::SharedArray { len } => {
                    data_base[i] = u32::try_from(data.len()).expect("data image too large");
                    data_len[i] = u32::try_from(len).expect("array too large");
                    data.extend(std::iter::repeat_n(Value::zero(info.ty), len as usize));
                    home[i] = HomeInfo::Blocked {
                        block: len.div_ceil(procs as u64).max(1),
                    };
                }
                VarKind::Flag => {
                    flag_base[i] = u32::try_from(flags.len()).expect("flag image too large");
                    flag_len[i] = 1;
                    flags.push(false);
                    home[i] = HomeInfo::Fixed(rr % procs);
                    rr += 1;
                }
                VarKind::FlagArray { len } => {
                    flag_base[i] = u32::try_from(flags.len()).expect("flag image too large");
                    flag_len[i] = u32::try_from(len).expect("flag array too large");
                    flags.extend(std::iter::repeat_n(false, len as usize));
                    home[i] = HomeInfo::Blocked {
                        block: len.div_ceil(procs as u64).max(1),
                    };
                }
                VarKind::Lock => {
                    home[i] = HomeInfo::Fixed(rr % procs);
                    rr += 1;
                }
                VarKind::Local | VarKind::LocalArray { .. } => {}
            }
        }
        SharedMemory {
            procs,
            home,
            data_base,
            data_len,
            data,
            flag_base,
            flag_len,
            flags,
        }
    }

    /// The home processor of a location.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a shared object.
    pub fn home(&self, loc: Location) -> u32 {
        match self.home[loc.var.index()] {
            HomeInfo::NotShared => panic!("{} is not a shared object", loc.var),
            HomeInfo::Fixed(p) => p,
            HomeInfo::Blocked { block } => ((loc.index / block) as u32).min(self.procs - 1),
        }
    }

    /// Resolves a data location to its flat slot index.
    #[inline]
    fn data_slot(&self, loc: Location) -> Option<usize> {
        let i = loc.var.index();
        let base = *self.data_base.get(i)?;
        if base == NO_SLOT || loc.index >= u64::from(self.data_len[i]) {
            return None;
        }
        Some(base as usize + loc.index as usize)
    }

    /// Resolves a flag location to its flat slot index.
    ///
    /// # Errors
    ///
    /// Fails on unknown flags or out-of-bounds indices.
    pub fn flag_slot(&self, loc: Location) -> Result<usize, SimError> {
        let i = loc.var.index();
        match self.flag_base.get(i) {
            Some(&base) if base != NO_SLOT && loc.index < u64::from(self.flag_len[i]) => {
                Ok(base as usize + loc.index as usize)
            }
            _ => Err(SimError::new(format!(
                "unknown flag {}[{}]",
                loc.var, loc.index
            ))),
        }
    }

    /// Total flag slots across all flag variables (for dense waiter lists).
    pub fn num_flag_slots(&self) -> usize {
        self.flags.len()
    }

    /// Reads a shared data location.
    ///
    /// # Errors
    ///
    /// Fails on unknown variables or out-of-bounds indices.
    pub fn load(&self, loc: Location) -> Result<Value, SimError> {
        self.data_slot(loc).map(|s| self.data[s]).ok_or_else(|| {
            SimError::new(format!(
                "shared load out of bounds: {}[{}]",
                loc.var, loc.index
            ))
        })
    }

    /// Writes a shared data location.
    ///
    /// # Errors
    ///
    /// Fails on unknown variables or out-of-bounds indices.
    pub fn store(&mut self, loc: Location, value: Value) -> Result<(), SimError> {
        match self.data_slot(loc) {
            Some(s) => {
                self.data[s] = value;
                Ok(())
            }
            None => Err(SimError::new(format!(
                "shared store out of bounds: {}[{}]",
                loc.var, loc.index
            ))),
        }
    }

    /// Reads a flag.
    ///
    /// # Errors
    ///
    /// Fails on unknown flags or out-of-bounds indices.
    pub fn flag(&self, loc: Location) -> Result<bool, SimError> {
        Ok(self.flags[self.flag_slot(loc)?])
    }

    /// Sets a flag (posts the event).
    ///
    /// # Errors
    ///
    /// Fails on unknown flags or out-of-bounds indices.
    pub fn set_flag(&mut self, loc: Location) -> Result<(), SimError> {
        let s = self.flag_slot(loc)?;
        self.flags[s] = true;
        Ok(())
    }

    /// Snapshot of all shared data (for end-state equivalence checks).
    /// Already in `VarId` order — a linear walk, no sorting.
    pub fn snapshot(&self) -> Vec<(VarId, Vec<Value>)> {
        let mut out = Vec::new();
        for (i, &base) in self.data_base.iter().enumerate() {
            if base == NO_SLOT {
                continue;
            }
            let len = self.data_len[i] as usize;
            out.push((
                VarId::from_index(i),
                self.data[base as usize..base as usize + len].to_vec(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::ast::Type;
    use syncopt_ir::vars::VarInfo;

    fn vars() -> (VarTable, VarId, VarId, VarId, VarId) {
        let mut t = VarTable::new();
        let x = t.push(VarInfo {
            name: "X".into(),
            kind: VarKind::SharedScalar,
            ty: Type::Int,
        });
        let a = t.push(VarInfo {
            name: "A".into(),
            kind: VarKind::SharedArray { len: 16 },
            ty: Type::Double,
        });
        let f = t.push(VarInfo {
            name: "f".into(),
            kind: VarKind::FlagArray { len: 4 },
            ty: Type::Flag,
        });
        let l = t.push(VarInfo {
            name: "l".into(),
            kind: VarKind::Lock,
            ty: Type::Lock,
        });
        (t, x, a, f, l)
    }

    #[test]
    fn block_layout_homes() {
        let (t, _, a, _, _) = vars();
        let m = SharedMemory::new(4, &t);
        // 16 elements on 4 procs: block of 4.
        assert_eq!(m.home(Location { var: a, index: 0 }), 0);
        assert_eq!(m.home(Location { var: a, index: 3 }), 0);
        assert_eq!(m.home(Location { var: a, index: 4 }), 1);
        assert_eq!(m.home(Location { var: a, index: 15 }), 3);
    }

    #[test]
    fn scalar_homes_are_round_robin() {
        let (t, x, _, f, l) = vars();
        let m = SharedMemory::new(4, &t);
        let hx = m.home(Location { var: x, index: 0 });
        let hf_home = m.home(Location { var: f, index: 0 });
        let hl = m.home(Location { var: l, index: 0 });
        // x and l are round-robin fixed; the flag array is blocked.
        assert_eq!(hx, 0);
        assert_eq!(hl, 1);
        assert_eq!(hf_home, 0);
    }

    #[test]
    fn load_store_round_trip() {
        let (t, x, a, _, _) = vars();
        let mut m = SharedMemory::new(4, &t);
        let lx = Location { var: x, index: 0 };
        assert_eq!(m.load(lx).unwrap(), Value::Int(0));
        m.store(lx, Value::Int(9)).unwrap();
        assert_eq!(m.load(lx).unwrap(), Value::Int(9));
        let la = Location { var: a, index: 7 };
        m.store(la, Value::Double(2.5)).unwrap();
        assert_eq!(m.load(la).unwrap(), Value::Double(2.5));
        assert!(m.load(Location { var: a, index: 99 }).is_err());
    }

    #[test]
    fn flags_start_clear_and_latch() {
        let (t, _, _, f, _) = vars();
        let mut m = SharedMemory::new(4, &t);
        let lf = Location { var: f, index: 2 };
        assert!(!m.flag(lf).unwrap());
        m.set_flag(lf).unwrap();
        assert!(m.flag(lf).unwrap());
        assert!(m.flag(Location { var: f, index: 9 }).is_err());
    }

    #[test]
    fn flag_slots_are_dense_and_stable() {
        let (t, _, _, f, l) = vars();
        let m = SharedMemory::new(4, &t);
        assert_eq!(m.num_flag_slots(), 4);
        for i in 0..4 {
            assert_eq!(
                m.flag_slot(Location { var: f, index: i }).unwrap(),
                i as usize
            );
        }
        assert!(m.flag_slot(Location { var: l, index: 0 }).is_err());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let (t, x, _, _, _) = vars();
        let mut m = SharedMemory::new(2, &t);
        m.store(Location { var: x, index: 0 }, Value::Int(3))
            .unwrap();
        let s1 = m.snapshot();
        let s2 = m.snapshot();
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 2, "scalar + array");
        // VarId-sorted, scalar expands to a one-element image.
        assert_eq!(s1[0], (x, vec![Value::Int(3)]));
        assert!(s1[0].0 < s1[1].0);
    }
}
