//! Runtime values and local-pure expression evaluation.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use syncopt_frontend::ast::{BinOp, Type, UnOp};
use syncopt_ir::expr::Expr;
use syncopt_ir::ids::VarId;
use syncopt_ir::vars::{VarKind, VarTable};

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// Boolean (expression results only).
    Bool(bool),
}

impl Value {
    /// The zero value of a type.
    pub fn zero(ty: Type) -> Value {
        match ty {
            Type::Double => Value::Double(0.0),
            _ => Value::Int(0),
        }
    }

    /// Interprets the value as an integer.
    ///
    /// # Errors
    ///
    /// Fails for non-integer values.
    pub fn as_int(self) -> Result<i64, SimError> {
        match self {
            Value::Int(v) => Ok(v),
            other => Err(SimError::new(format!("expected int, got {other:?}"))),
        }
    }

    /// Interprets the value as a boolean.
    ///
    /// # Errors
    ///
    /// Fails for non-boolean values.
    pub fn as_bool(self) -> Result<bool, SimError> {
        match self {
            Value::Bool(v) => Ok(v),
            other => Err(SimError::new(format!("expected bool, got {other:?}"))),
        }
    }

    /// Numeric view for mixed arithmetic.
    fn as_f64(self) -> Result<f64, SimError> {
        match self {
            Value::Int(v) => Ok(v as f64),
            Value::Double(v) => Ok(v),
            Value::Bool(_) => Err(SimError::new("boolean used in arithmetic")),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// A runtime error in the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    message: String,
}

impl SimError {
    /// Creates an error with `message`.
    pub fn new(message: impl Into<String>) -> Self {
        SimError {
            message: message.into(),
        }
    }

    /// The error description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation error: {}", self.message)
    }
}

impl Error for SimError {}

/// Per-processor local storage.
#[derive(Debug, Clone)]
pub struct ProcEnv {
    /// This processor's id.
    pub myproc: i64,
    /// Total processor count.
    pub procs: i64,
    scalars: HashMap<VarId, Value>,
    arrays: HashMap<VarId, Vec<Value>>,
}

impl ProcEnv {
    /// Creates an environment with all locals zero-initialized.
    pub fn new(myproc: u32, procs: u32, vars: &VarTable) -> Self {
        let mut scalars = HashMap::new();
        let mut arrays = HashMap::new();
        for (id, info) in vars.iter() {
            match info.kind {
                VarKind::Local => {
                    scalars.insert(id, Value::zero(info.ty));
                }
                VarKind::LocalArray { len } => {
                    arrays.insert(id, vec![Value::zero(info.ty); len as usize]);
                }
                _ => {}
            }
        }
        ProcEnv {
            myproc: myproc as i64,
            procs: procs as i64,
            scalars,
            arrays,
        }
    }

    /// Reads a local scalar.
    ///
    /// # Errors
    ///
    /// Fails if `var` is not a local scalar.
    pub fn load(&self, var: VarId) -> Result<Value, SimError> {
        self.scalars
            .get(&var)
            .copied()
            .ok_or_else(|| SimError::new(format!("{var} is not a local scalar")))
    }

    /// Writes a local scalar.
    ///
    /// # Errors
    ///
    /// Fails if `var` is not a local scalar.
    pub fn store(&mut self, var: VarId, value: Value) -> Result<(), SimError> {
        match self.scalars.get_mut(&var) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(SimError::new(format!("{var} is not a local scalar"))),
        }
    }

    /// Reads a local array element.
    ///
    /// # Errors
    ///
    /// Fails on unknown arrays or out-of-bounds indices.
    pub fn load_elem(&self, var: VarId, idx: i64) -> Result<Value, SimError> {
        let arr = self
            .arrays
            .get(&var)
            .ok_or_else(|| SimError::new(format!("{var} is not a local array")))?;
        usize::try_from(idx)
            .ok()
            .and_then(|i| arr.get(i))
            .copied()
            .ok_or_else(|| SimError::new(format!("local index {idx} out of bounds for {var}")))
    }

    /// Writes a local array element.
    ///
    /// # Errors
    ///
    /// Fails on unknown arrays or out-of-bounds indices.
    pub fn store_elem(&mut self, var: VarId, idx: i64, value: Value) -> Result<(), SimError> {
        let arr = self
            .arrays
            .get_mut(&var)
            .ok_or_else(|| SimError::new(format!("{var} is not a local array")))?;
        let slot = usize::try_from(idx)
            .ok()
            .and_then(|i| arr.get_mut(i))
            .ok_or_else(|| SimError::new(format!("local index {idx} out of bounds for {var}")))?;
        *slot = value;
        Ok(())
    }
}

/// Evaluates a local-pure expression.
///
/// # Errors
///
/// Fails on type confusion, unknown variables, out-of-bounds local array
/// indices, or division by zero.
pub fn eval(expr: &Expr, env: &ProcEnv) -> Result<Value, SimError> {
    match expr {
        Expr::Int(v) => Ok(Value::Int(*v)),
        Expr::Float(v) => Ok(Value::Double(*v)),
        Expr::Bool(v) => Ok(Value::Bool(*v)),
        Expr::MyProc => Ok(Value::Int(env.myproc)),
        Expr::Procs => Ok(Value::Int(env.procs)),
        Expr::Local(v) => env.load(*v),
        Expr::LocalElem { array, index } => {
            let idx = eval(index, env)?.as_int()?;
            env.load_elem(*array, idx)
        }
        Expr::Unary { op, expr } => {
            let v = eval(expr, env)?;
            match op {
                UnOp::Neg => match v {
                    Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
                    Value::Double(d) => Ok(Value::Double(-d)),
                    Value::Bool(_) => Err(SimError::new("cannot negate bool")),
                },
                UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval(lhs, env)?;
            let r = eval(rhs, env)?;
            eval_binop(*op, l, r)
        }
    }
}

fn eval_binop(op: BinOp, l: Value, r: Value) -> Result<Value, SimError> {
    use BinOp::*;
    match op {
        And => Ok(Value::Bool(l.as_bool()? && r.as_bool()?)),
        Or => Ok(Value::Bool(l.as_bool()? || r.as_bool()?)),
        Rem => {
            let (a, b) = (l.as_int()?, r.as_int()?);
            if b == 0 {
                return Err(SimError::new("modulo by zero"));
            }
            Ok(Value::Int(a.rem_euclid(b)))
        }
        _ => match (l, r) {
            (Value::Int(a), Value::Int(b)) => match op {
                Add => Ok(Value::Int(a.wrapping_add(b))),
                Sub => Ok(Value::Int(a.wrapping_sub(b))),
                Mul => Ok(Value::Int(a.wrapping_mul(b))),
                Div => {
                    if b == 0 {
                        Err(SimError::new("division by zero"))
                    } else {
                        Ok(Value::Int(a.wrapping_div(b)))
                    }
                }
                Eq => Ok(Value::Bool(a == b)),
                Ne => Ok(Value::Bool(a != b)),
                Lt => Ok(Value::Bool(a < b)),
                Le => Ok(Value::Bool(a <= b)),
                Gt => Ok(Value::Bool(a > b)),
                Ge => Ok(Value::Bool(a >= b)),
                And | Or | Rem => unreachable!("handled above"),
            },
            _ => {
                let (a, b) = (l.as_f64()?, r.as_f64()?);
                match op {
                    Add => Ok(Value::Double(a + b)),
                    Sub => Ok(Value::Double(a - b)),
                    Mul => Ok(Value::Double(a * b)),
                    Div => Ok(Value::Double(a / b)),
                    Eq => Ok(Value::Bool(a == b)),
                    Ne => Ok(Value::Bool(a != b)),
                    Lt => Ok(Value::Bool(a < b)),
                    Le => Ok(Value::Bool(a <= b)),
                    Gt => Ok(Value::Bool(a > b)),
                    Ge => Ok(Value::Bool(a >= b)),
                    And | Or | Rem => unreachable!("handled above"),
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_ir::vars::VarInfo;

    fn env() -> (ProcEnv, VarId, VarId) {
        let mut vars = VarTable::new();
        let s = vars.push(VarInfo {
            name: "s".into(),
            kind: VarKind::Local,
            ty: Type::Int,
        });
        let a = vars.push(VarInfo {
            name: "a".into(),
            kind: VarKind::LocalArray { len: 4 },
            ty: Type::Double,
        });
        (ProcEnv::new(3, 8, &vars), s, a)
    }

    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(l),
            rhs: Box::new(r),
        }
    }

    #[test]
    fn myproc_and_procs() {
        let (env, _, _) = env();
        assert_eq!(eval(&Expr::MyProc, &env).unwrap(), Value::Int(3));
        assert_eq!(eval(&Expr::Procs, &env).unwrap(), Value::Int(8));
    }

    #[test]
    fn locals_default_to_zero_and_are_mutable() {
        let (mut env, s, a) = env();
        assert_eq!(env.load(s).unwrap(), Value::Int(0));
        env.store(s, Value::Int(7)).unwrap();
        assert_eq!(eval(&Expr::Local(s), &env).unwrap(), Value::Int(7));
        assert_eq!(env.load_elem(a, 2).unwrap(), Value::Double(0.0));
        env.store_elem(a, 2, Value::Double(1.5)).unwrap();
        let e = Expr::LocalElem {
            array: a,
            index: Box::new(Expr::Int(2)),
        };
        assert_eq!(eval(&e, &env).unwrap(), Value::Double(1.5));
    }

    #[test]
    fn integer_arithmetic() {
        let (env, _, _) = env();
        assert_eq!(
            eval(&bin(BinOp::Add, Expr::Int(2), Expr::Int(3)), &env).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            eval(&bin(BinOp::Rem, Expr::Int(-1), Expr::Int(8)), &env).unwrap(),
            Value::Int(7),
            "rem_euclid keeps processor indices positive"
        );
        assert!(eval(&bin(BinOp::Div, Expr::Int(1), Expr::Int(0)), &env).is_err());
        assert!(eval(&bin(BinOp::Rem, Expr::Int(1), Expr::Int(0)), &env).is_err());
    }

    #[test]
    fn mixed_arithmetic_widens() {
        let (env, _, _) = env();
        assert_eq!(
            eval(&bin(BinOp::Mul, Expr::Int(2), Expr::Float(1.5)), &env).unwrap(),
            Value::Double(3.0)
        );
        assert_eq!(
            eval(&bin(BinOp::Lt, Expr::Float(0.5), Expr::Int(1)), &env).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn logic_and_comparison() {
        let (env, _, _) = env();
        let t = Expr::Bool(true);
        let f = Expr::Bool(false);
        assert_eq!(
            eval(&bin(BinOp::And, t.clone(), f.clone()), &env).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval(&bin(BinOp::Or, t.clone(), f.clone()), &env).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(
                &Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(f)
                },
                &env
            )
            .unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn type_errors_are_reported() {
        let (env, _, _) = env();
        assert!(eval(&bin(BinOp::Add, Expr::Bool(true), Expr::Int(1)), &env).is_err());
        assert!(Value::Double(1.0).as_int().is_err());
        assert!(Value::Int(1).as_bool().is_err());
    }

    #[test]
    fn out_of_bounds_local_array() {
        let (env, _, a) = env();
        assert!(env.load_elem(a, 4).is_err());
        assert!(env.load_elem(a, -1).is_err());
    }
}

// Needs the `proptest` crate (network registry): compiled only with
// `RUSTFLAGS="--cfg proptest"` after re-adding the dev-dependency.
#[cfg(all(test, proptest))]
mod fold_consistency {
    //! Cross-module property: `syncopt_ir::fold` must be semantics
    //! preserving w.r.t. this evaluator — for any expression that
    //! evaluates successfully, the folded expression evaluates to the
    //! same value.

    use super::*;
    use proptest::prelude::*;
    use syncopt_frontend::ast::BinOp;
    use syncopt_ir::expr::Expr;
    use syncopt_ir::fold::fold_expr;
    use syncopt_ir::vars::VarTable;

    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (-20i64..20).prop_map(Expr::Int),
            Just(Expr::MyProc),
            Just(Expr::Procs),
        ];
        leaf.prop_recursive(4, 64, 2, |inner| {
            (
                inner.clone(),
                inner,
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Rem),
                ],
            )
                .prop_map(|(l, r, op)| Expr::Binary {
                    op,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn folding_preserves_evaluation(e in arb_expr(), myproc in 0u32..8) {
            let env = ProcEnv::new(myproc, 8, &VarTable::new());
            let folded = fold_expr(&e);
            // Idempotence.
            prop_assert_eq!(&fold_expr(&folded), &folded);
            match eval(&e, &env) {
                Ok(v) => {
                    let fv = eval(&folded, &env);
                    prop_assert_eq!(fv.ok(), Some(v), "fold changed value of {:?}", e);
                }
                Err(_) => {
                    // Folding may not *introduce* success where evaluation
                    // trapped... it may, though, if the trap was in a
                    // discarded pure position? No: identities only discard
                    // trap-free sides. So the folded expression must trap
                    // too.
                    prop_assert!(
                        eval(&folded, &env).is_err(),
                        "fold hid a trap in {:?}",
                        e
                    );
                }
            }
        }
    }
}
