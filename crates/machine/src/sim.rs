//! The discrete-event simulator.
//!
//! Every processor runs the SPMD program (the same CFG); all shared-memory
//! and synchronization effects are serialized through a timestamped event
//! queue, so results are deterministic and independent of host scheduling.
//!
//! Cost model (see [`crate::config::MachineConfig`]):
//!
//! * a **blocking** remote access costs the full round trip
//!   (`send + latency + handler + latency + recv` — Table 1);
//! * a **split-phase** access costs the issuer only `send_overhead`; the
//!   reply/ack decrements a synchronizing counter when it arrives and
//!   steals `recv_overhead`/`ack_cycles` from the issuing CPU;
//! * a **store** has no ack at all; global barriers wait for store
//!   quiescence (the paper's completion rule for one-way communication);
//! * request handlers at a home node serialize (hot homes congest);
//! * `post`/`wait`/`lock`/`unlock` are messages to the object's home.
//!
//! The simulator also performs the paper's §5.2 **runtime barrier check**:
//! it records each processor's sequence of barrier sites and reports
//! whether they lined up.
//!
//! # Engine
//!
//! The hot path is allocation- and hash-free: processor counters, lock
//! tables, flag-waiter lists, and shared memory are flat `Vec`s indexed by
//! the dense integer ids the IR guarantees, sized once from the program
//! header. Pending events live in a **calendar queue** — a bucketed time
//! wheel with a binary-heap overflow rung and a free-list event arena
//! ([`EngineKind::Calendar`]). The original `BinaryHeap`-of-tuples engine
//! is retained as [`EngineKind::ReferenceHeap`] so differential tests can
//! prove the two are observationally identical; both dispatch events in
//! strictly increasing `(time, seq)` order, where `seq` is the global
//! push order, so the tie-break is exactly the historical one.

use crate::config::MachineConfig;
use crate::memory::{Location, SharedMemory};
use crate::metrics::{BarrierEpoch, ProcCycles, SimMetrics, SimWork};
use crate::trace::{FlowKind, StateKind, Trace, TraceKind};
use crate::value::{eval, ProcEnv, SimError, Value};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use syncopt_ir::cfg::{Cfg, CtrId, Instr, Terminator};
use syncopt_ir::expr::SharedRef;
use syncopt_ir::ids::{AccessId, BlockId, VarId};

/// Network / synchronization message counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Split-phase or blocking read requests sent to a remote home.
    pub get_requests: u64,
    /// Data replies for gets.
    pub get_replies: u64,
    /// Two-way write requests.
    pub put_requests: u64,
    /// Acknowledgements for two-way writes.
    pub put_acks: u64,
    /// One-way store requests (never acknowledged).
    pub store_requests: u64,
    /// Post messages.
    pub post_messages: u64,
    /// Wait check/notify messages.
    pub wait_messages: u64,
    /// Lock request/grant/release messages.
    pub lock_messages: u64,
    /// Barrier episodes completed.
    pub barriers: u64,
}

impl NetStats {
    /// Total messages on the wire.
    pub fn total_messages(&self) -> u64 {
        self.get_requests
            + self.get_replies
            + self.put_requests
            + self.put_acks
            + self.store_requests
            + self.post_messages
            + self.wait_messages
            + self.lock_messages
    }
}

/// Cycles spent blocked, by cause, summed over processors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallStats {
    /// Waiting on `sync_ctr`.
    pub sync: u64,
    /// Waiting at barriers.
    pub barrier: u64,
    /// Waiting on events (`wait`).
    pub wait: u64,
    /// Waiting for lock grants.
    pub lock: u64,
    /// Blocking (non-split) remote accesses.
    pub blocking: u64,
}

/// The outcome of a simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Execution time: the maximum processor finish time, in cycles.
    pub exec_cycles: u64,
    /// Per-processor finish times.
    pub proc_cycles: Vec<u64>,
    /// Message counters.
    pub net: NetStats,
    /// Stall cycle accounting.
    pub stalls: StallStats,
    /// Final shared-memory image (in variable-id order). Empty when the
    /// run was configured with [`SimOutputs::memory`] off.
    pub memory: Vec<(VarId, Vec<Value>)>,
    /// Whether all processors executed the same barrier-site sequence
    /// (`true` when the check is disabled or there are no barriers).
    pub barriers_aligned: bool,
    /// Per-processor cycle accounting, remote-access latency histogram,
    /// and the barrier epoch timeline.
    pub metrics: SimMetrics,
    /// Each processor's sequence of barrier sites, for diagnosing a
    /// misaligned-barrier fallback (the §5.2 runtime check). Empty when
    /// the run was configured with [`SimOutputs::barrier_seqs`] off.
    pub barrier_seqs: Vec<Vec<AccessId>>,
}

/// Which event-queue implementation drives the simulation.
///
/// Both dispatch in identical `(time, seq)` order, so every observable
/// output except the [`SimWork`] engine counters is bit-identical; the
/// differential suite in the `syncopt` crate relies on that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// Bucketed time-wheel/calendar queue with a binary-heap overflow rung
    /// and a free-list event arena (the production engine).
    #[default]
    Calendar,
    /// The historical `BinaryHeap<(time, seq, idx)>` plus grow-only side
    /// event storage, kept as the differential-testing reference. Its
    /// [`SimWork::hash_lookups`] reports the hash-map traffic the
    /// pre-dense simulator paid per run.
    ReferenceHeap,
}

/// Which result components to extract when the run completes.
///
/// Building `SimResult.memory` (a full snapshot of shared memory) and
/// `barrier_seqs` (per-processor clones) is pure overhead for harnesses
/// that only read cycle counts — throughput benches, sweep drivers,
/// exhaustive explorers. Both default to **on**, preserving `simulate`'s
/// historical behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOutputs {
    /// Extract the final shared-memory image.
    pub memory: bool,
    /// Extract per-processor barrier-site sequences. (The alignment
    /// *check* always runs; only the copies are skipped.)
    pub barrier_seqs: bool,
}

impl SimOutputs {
    /// Everything extracted (the `simulate` default).
    pub fn full() -> Self {
        SimOutputs {
            memory: true,
            barrier_seqs: true,
        }
    }

    /// Timing-only: skip final-state extraction entirely.
    pub fn lean() -> Self {
        SimOutputs {
            memory: false,
            barrier_seqs: false,
        }
    }
}

impl Default for SimOutputs {
    fn default() -> Self {
        Self::full()
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Msg {
    Get {
        from: u32,
        loc: Location,
        dst: VarId,
        ctr: Option<CtrId>,
        /// Injection time at the issuer (`None` for a local access) —
        /// carried through to the reply for the latency histogram.
        issued: Option<u64>,
    },
    Put {
        from: u32,
        loc: Location,
        val: Value,
        ctr: Option<CtrId>,
        issued: Option<u64>,
    },
    Store {
        from: u32,
        loc: Location,
        val: Value,
        issued: Option<u64>,
    },
    Post {
        from: u32,
        loc: Location,
    },
    WaitCheck {
        from: u32,
        loc: Location,
    },
    LockReq {
        from: u32,
        lock: VarId,
    },
    Unlock {
        from: u32,
        lock: VarId,
    },
}

#[derive(Debug, Clone)]
pub(crate) enum Delivery {
    GetReply {
        dst: VarId,
        val: Value,
        ctr: Option<CtrId>,
        /// Receive cost paid inline by a *blocking* issuer (0 for local).
        recv: u64,
        /// Injection time of the originating request (`None` for local).
        issued: Option<u64>,
    },
    PutAck {
        ctr: Option<CtrId>,
        /// Ack cost paid inline by a *blocking* issuer (0 for local).
        recv: u64,
        /// Injection time of the originating request (`None` for local).
        issued: Option<u64>,
    },
    FlagSet {
        /// Receive cost to steal from the woken processor at delivery.
        /// Zero in the sequential engines (the steal is written directly
        /// at the home); the sharded engine defers the steal of a
        /// non-owned waker target into the delivery, which is equivalent
        /// because a blocked processor has no pending `Run` to observe
        /// the difference.
        credit: u64,
    },
    LockGrant {
        /// Which lock was granted, so the trace can attribute the hold
        /// interval when the unlock is serviced.
        lock: VarId,
        /// Deferred receive-cost steal; see [`Delivery::FlagSet`].
        credit: u64,
    },
}

#[derive(Debug, Clone)]
pub(crate) enum Event {
    Run(u32),
    Arrive {
        home: u32,
        msg: Msg,
    },
    Deliver {
        to: u32,
        del: Delivery,
    },
    /// Sharded engine only: apply a deferred split-phase receive steal to
    /// a processor's CPU. Scheduled by the *issuing* shard at the
    /// request's arrival time, keyed immediately after the request, so it
    /// lands at exactly the global dispatch position where the sequential
    /// engine writes the steal at the remote home.
    Credit {
        to: u32,
        amount: u64,
    },
}

// ---- the event queue ----------------------------------------------------

/// Wheel width: one bucket per cycle over a `[cursor, cursor + WHEEL_SIZE)`
/// window. Covers every Table 1 one-hop cost; only far-future schedules
/// (long `work`, barrier releases) take the overflow rung.
const WHEEL_SIZE: u64 = 1024;
const WHEEL_MASK: u64 = WHEEL_SIZE - 1;
/// Null link in the event arena.
const NIL: u32 = u32::MAX;

struct ArenaSlot {
    time: u64,
    seq: u64,
    /// Next slot in the bucket chain, or next free slot when recycled.
    next: u32,
    event: Event,
}

/// Bucketed calendar queue.
///
/// Invariants that make dispatch order exactly `(time, seq)`:
///
/// * every live wheel event has `time ∈ [cursor, cursor + WHEEL_SIZE)`, so
///   a bucket holds at most one *distinct* timestamp at a time;
/// * bucket chains are appended at the tail and `seq` is assigned
///   monotonically at push, so each chain is seq-ascending;
/// * events at or past `cursor + WHEEL_SIZE` go to the binary-heap
///   overflow rung, which is itself `(time, seq)`-ordered; a batch at
///   time `t` merges the bucket chain with the overflow stream by `seq`.
///
/// Overflow events are never promoted into future buckets — promotion
/// would append a low-seq event behind higher-seq residents and break the
/// tie-break. The merge at drain time sidesteps that entirely.
struct CalendarQueue {
    /// `(head, tail)` arena links per bucket; `NIL` when empty.
    buckets: Vec<(u32, u32)>,
    /// Start of the wheel window == the current batch time.
    cursor: u64,
    /// Live events resident in wheel buckets.
    wheel_live: u64,
    /// Far-future rung, `(time, seq, slot)`.
    overflow: BinaryHeap<Reverse<(u64, u64, u32)>>,
    arena: Vec<ArenaSlot>,
    free_head: u32,
    next_seq: u64,
}

impl CalendarQueue {
    fn new() -> Self {
        CalendarQueue {
            buckets: vec![(NIL, NIL); WHEEL_SIZE as usize],
            cursor: 0,
            wheel_live: 0,
            overflow: BinaryHeap::new(),
            arena: Vec::new(),
            free_head: NIL,
            next_seq: 0,
        }
    }

    fn alloc(&mut self, time: u64, seq: u64, event: Event, work: &mut SimWork) -> u32 {
        if self.free_head != NIL {
            let s = self.free_head;
            self.free_head = self.arena[s as usize].next;
            self.arena[s as usize] = ArenaSlot {
                time,
                seq,
                next: NIL,
                event,
            };
            work.arena_reuses += 1;
            s
        } else {
            self.arena.push(ArenaSlot {
                time,
                seq,
                next: NIL,
                event,
            });
            u32::try_from(self.arena.len() - 1).expect("event arena too large")
        }
    }

    fn free(&mut self, slot: u32) -> Event {
        let event = std::mem::replace(&mut self.arena[slot as usize].event, Event::Run(0));
        self.arena[slot as usize].next = self.free_head;
        self.free_head = slot;
        event
    }

    fn push(&mut self, time: u64, event: Event, work: &mut SimWork) {
        debug_assert!(time >= self.cursor, "event scheduled in the past");
        work.events_scheduled += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        if time >= self.cursor + WHEEL_SIZE {
            work.overflow_promotions += 1;
            let slot = self.alloc(time, seq, event, work);
            self.overflow.push(Reverse((time, seq, slot)));
        } else {
            let slot = self.alloc(time, seq, event, work);
            let b = (time & WHEEL_MASK) as usize;
            let (head, tail) = self.buckets[b];
            if head == NIL {
                self.buckets[b] = (slot, slot);
            } else {
                debug_assert_eq!(self.arena[tail as usize].time, time);
                self.arena[tail as usize].next = slot;
                self.buckets[b].1 = slot;
            }
            self.wheel_live += 1;
        }
    }

    /// Earliest pending timestamp; advances `cursor` (and with it the
    /// wheel window) to it. Scanned empty slots are the wheel's analogue
    /// of heap sift work and are counted as `bucket_rotations`.
    fn next_time(&mut self, work: &mut SimWork) -> Option<u64> {
        let t_over = self.overflow.peek().map(|Reverse((t, _, _))| *t);
        if self.wheel_live == 0 {
            let t = t_over?;
            self.cursor = t;
            return Some(t);
        }
        let mut t = self.cursor;
        loop {
            work.bucket_rotations += 1;
            if self.buckets[(t & WHEEL_MASK) as usize].0 != NIL {
                break;
            }
            t += 1;
            debug_assert!(t < self.cursor + WHEEL_SIZE, "live wheel event not found");
        }
        let t = match t_over {
            Some(o) if o < t => o,
            _ => t,
        };
        self.cursor = t;
        Some(t)
    }

    /// Pops the next event of the batch at time `t` in seq order, merging
    /// the bucket chain with same-time overflow arrivals. Same-cycle
    /// pushes made while the batch drains land back in the bucket (their
    /// seq is larger than anything live) and are picked up before the
    /// batch ends.
    fn pop_at(&mut self, t: u64, work: &mut SimWork) -> Option<Event> {
        debug_assert_eq!(t, self.cursor);
        let b = (t & WHEEL_MASK) as usize;
        let head = self.buckets[b].0;
        let bucket_seq = (head != NIL).then(|| {
            debug_assert_eq!(self.arena[head as usize].time, t);
            self.arena[head as usize].seq
        });
        let over_seq = match self.overflow.peek() {
            Some(Reverse((ot, oseq, _))) if *ot == t => Some(*oseq),
            _ => None,
        };
        let from_bucket = match (bucket_seq, over_seq) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(bs), Some(os)) => bs < os,
        };
        work.events_dequeued += 1;
        if from_bucket {
            let next = self.arena[head as usize].next;
            self.buckets[b].0 = next;
            if next == NIL {
                self.buckets[b].1 = NIL;
            }
            self.wheel_live -= 1;
            Some(self.free(head))
        } else {
            let Reverse((_, _, slot)) = self.overflow.pop().expect("peeked");
            Some(self.free(slot))
        }
    }
}

/// The historical engine: a binary heap of `(time, seq, idx)` tuples with
/// grow-only side event storage, exactly as shipped before the calendar
/// queue. Kept for differential testing.
struct HeapQueue {
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
    events: Vec<Event>,
}

impl HeapQueue {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            events: Vec::new(),
        }
    }

    fn push(&mut self, time: u64, event: Event, work: &mut SimWork) {
        work.events_scheduled += 1;
        let seq = self.events.len() as u64;
        self.events.push(event);
        self.heap.push(Reverse((time, seq, self.events.len() - 1)));
    }

    fn next_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    fn pop_at(&mut self, t: u64, work: &mut SimWork) -> Option<Event> {
        match self.heap.peek() {
            Some(Reverse((pt, _, _))) if *pt == t => {
                let Reverse((_, _, idx)) = self.heap.pop().expect("peeked");
                work.events_dequeued += 1;
                Some(self.events[idx].clone())
            }
            _ => None,
        }
    }
}

enum EventQueue {
    Calendar(CalendarQueue),
    Heap(HeapQueue),
}

impl EventQueue {
    fn new(kind: EngineKind) -> Self {
        match kind {
            EngineKind::Calendar => EventQueue::Calendar(CalendarQueue::new()),
            EngineKind::ReferenceHeap => EventQueue::Heap(HeapQueue::new()),
        }
    }

    fn push(&mut self, time: u64, event: Event, work: &mut SimWork) {
        match self {
            EventQueue::Calendar(q) => q.push(time, event, work),
            EventQueue::Heap(q) => q.push(time, event, work),
        }
    }

    fn next_time(&mut self, work: &mut SimWork) -> Option<u64> {
        match self {
            EventQueue::Calendar(q) => q.next_time(work),
            EventQueue::Heap(q) => q.next_time(),
        }
    }

    fn pop_at(&mut self, t: u64, work: &mut SimWork) -> Option<Event> {
        match self {
            EventQueue::Calendar(q) => q.pop_at(t, work),
            EventQueue::Heap(q) => q.pop_at(t, work),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Status {
    Ready,
    BlockedSync(CtrId, u64),
    BlockedReply(u64),
    BlockedWait(u64),
    BlockedLock(u64),
    BlockedBarrier(u64),
    Finished,
}

pub(crate) struct ProcState {
    env: ProcEnv,
    block: BlockId,
    instr: usize,
    pub(crate) time: u64,
    steal: u64,
    steps: u64,
    pub(crate) status: Status,
    /// Outstanding split-phase operations per counter, dense by `CtrId`.
    ctrs: Vec<u64>,
    pub(crate) barrier_seq: Vec<AccessId>,
    pub(crate) finished_at: Option<u64>,
}

struct LockState {
    held: bool,
    queue: VecDeque<u32>,
    /// Grant-delivery time of the current holder; maintained only while
    /// tracing, for lock-hold spans.
    acquired_at: u64,
}

/// Runs `cfg` on the machine described by `config`.
///
/// # Errors
///
/// Returns a [`SimError`] on runtime faults (out-of-bounds indices,
/// division by zero), deadlock, or when a processor exceeds
/// `config.max_steps`.
pub fn simulate(cfg: &Cfg, config: &MachineConfig) -> Result<SimResult, SimError> {
    Simulator::new(cfg, config, EngineKind::Calendar, SimOutputs::full())
        .run()
        .map(|(r, _)| r)
}

/// [`simulate`] with an explicit event engine and output selection; the
/// entry point for differential tests and timing-only harnesses.
///
/// # Errors
///
/// Same failure modes as [`simulate`].
pub fn simulate_configured(
    cfg: &Cfg,
    config: &MachineConfig,
    engine: EngineKind,
    outputs: SimOutputs,
) -> Result<SimResult, SimError> {
    Simulator::new(cfg, config, engine, outputs)
        .run()
        .map(|(r, _)| r)
}

/// [`simulate`], additionally returning an execution trace (bounded to
/// `trace_cap` events).
///
/// # Errors
///
/// Same failure modes as [`simulate`].
pub fn simulate_traced(
    cfg: &Cfg,
    config: &MachineConfig,
    trace_cap: usize,
) -> Result<(SimResult, Trace), SimError> {
    let mut sim = Simulator::new(cfg, config, EngineKind::Calendar, SimOutputs::full());
    sim.trace = Some(Trace::with_capacity(trace_cap));
    sim.run().map(|(r, t)| (r, t.unwrap_or_default()))
}

pub(crate) struct Simulator<'a> {
    cfg: &'a Cfg,
    pub(crate) config: &'a MachineConfig,
    engine: EngineKind,
    pub(crate) outputs: SimOutputs,
    pub(crate) procs: Vec<ProcState>,
    pub(crate) memory: SharedMemory,
    queue: EventQueue,
    /// Lock state, dense by `VarId` (non-lock slots stay untouched).
    locks: Vec<LockState>,
    /// Blocked waiters per flag slot, dense by `SharedMemory::flag_slot`.
    waiters: Vec<Vec<u32>>,
    handler_free: Vec<u64>,
    next_inject: Vec<u64>,
    // Barrier rendezvous state.
    barrier_arrivals: Vec<Option<(AccessId, u64)>>,
    // Arrival times of stores still in flight.
    stores_in_flight: u64,
    barrier_release_pending: bool,
    /// Accesses that the pre-dense simulator served from hash maps
    /// (memory images, home cache, counters, locks, waiters). Reported as
    /// `SimWork::hash_lookups` by the reference engine; the dense tables
    /// make the calendar engine's count zero by construction.
    legacy_probes: u64,
    pub(crate) net: NetStats,
    pub(crate) stalls: StallStats,
    pub(crate) metrics: SimMetrics,
    trace: Option<Trace>,
    /// Sharded-engine context: event routing, dispatch-position keys, and
    /// barrier/store episode logs. `None` for the sequential engines.
    pub(crate) shard: Option<Box<crate::shard::ShardCtx>>,
}

impl<'a> Simulator<'a> {
    pub(crate) fn new(
        cfg: &'a Cfg,
        config: &'a MachineConfig,
        engine: EngineKind,
        outputs: SimOutputs,
    ) -> Self {
        let p = config.procs;
        assert!(p >= 1, "need at least one processor");
        let num_ctrs = cfg.num_ctrs as usize;
        let procs = (0..p)
            .map(|i| ProcState {
                env: ProcEnv::new(i, p, &cfg.vars),
                block: cfg.entry,
                instr: 0,
                time: 0,
                steal: 0,
                steps: 0,
                status: Status::Ready,
                ctrs: vec![0; num_ctrs],
                barrier_seq: Vec::new(),
                finished_at: None,
            })
            .collect();
        let memory = SharedMemory::new(p, &cfg.vars);
        let locks = (0..cfg.vars.len())
            .map(|_| LockState {
                held: false,
                queue: VecDeque::new(),
                acquired_at: 0,
            })
            .collect();
        let waiters = vec![Vec::new(); memory.num_flag_slots()];
        Simulator {
            cfg,
            config,
            engine,
            outputs,
            procs,
            memory,
            queue: EventQueue::new(engine),
            locks,
            waiters,
            handler_free: vec![0; p as usize],
            next_inject: vec![0; p as usize],
            barrier_arrivals: vec![None; p as usize],
            stores_in_flight: 0,
            barrier_release_pending: false,
            legacy_probes: 0,
            net: NetStats::default(),
            stalls: StallStats::default(),
            metrics: SimMetrics {
                per_proc: vec![ProcCycles::default(); p as usize],
                ..SimMetrics::default()
            },
            trace: None,
            shard: None,
        }
    }

    /// Whether processor `p`'s private state (env, clock, steal, status)
    /// belongs to this simulator instance. Always true for the sequential
    /// engines; the sharded engine partitions processors across instances.
    fn shard_owns(&self, p: u32) -> bool {
        self.shard.as_ref().is_none_or(|s| s.owns(p))
    }

    /// Split-phase receive steal for a wake-up delivery to `to`: written
    /// directly when `to` is owned (the sequential path), otherwise
    /// returned so it can ride in the delivery and be applied at the
    /// target shard. Equivalent because the target is blocked with no
    /// pending `Run` until that very delivery arrives.
    fn deferred_credit(&mut self, to: u32, recv: u64) -> u64 {
        if self.shard_owns(to) {
            self.procs[to as usize].steal += recv;
            0
        } else {
            recv
        }
    }

    fn trace(&mut self, time: u64, proc: u32, kind: TraceKind) {
        if let Some(t) = &mut self.trace {
            t.record(time, proc, kind);
        }
    }

    /// Records that processor `pi` spent `[start, end)` in `state`
    /// (no-op when tracing is off).
    fn trace_state(&mut self, pi: usize, state: StateKind, start: u64, end: u64) {
        if let Some(t) = &mut self.trace {
            t.record_state(pi as u32, state, start, end);
        }
    }

    /// Advances processor `pi`'s clock by `delta` busy cycles: the one
    /// attribution path for execution, injection, and stolen handler time,
    /// so the cycle counter and the traced busy spans cannot diverge.
    fn charge_busy(&mut self, pi: usize, delta: u64) {
        let start = self.procs[pi].time;
        self.procs[pi].time += delta;
        self.metrics.per_proc[pi].busy += delta;
        self.trace_state(pi, StateKind::Busy, start, start + delta);
    }

    fn push(&mut self, time: u64, event: Event) {
        if let Some(sh) = &mut self.shard {
            sh.route(time, event, &mut self.metrics.work);
        } else {
            self.queue.push(time, event, &mut self.metrics.work);
        }
    }

    /// Home lookup; the pre-dense memory resolved this through a
    /// per-variable hash cache.
    fn home_of(&mut self, loc: Location) -> u32 {
        self.legacy_probes += 1;
        self.memory.home(loc)
    }

    fn run(mut self) -> Result<(SimResult, Option<Trace>), SimError> {
        for p in 0..self.config.procs {
            self.push(0, Event::Run(p));
        }
        // Batched drain: take the earliest pending timestamp, then pop
        // every event at that time (including same-cycle pushes made while
        // draining) in seq order before advancing.
        while let Some(time) = self.queue.next_time(&mut self.metrics.work) {
            while let Some(event) = self.queue.pop_at(time, &mut self.metrics.work) {
                self.dispatch(time, event)?;
            }
        }
        // Everything drained: all processors must have finished.
        let unfinished: Vec<usize> = self
            .procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.status != Status::Finished)
            .map(|(i, _)| i)
            .collect();
        if !unfinished.is_empty() {
            return Err(SimError::new(format!(
                "deadlock: processors {unfinished:?} blocked ({:?})",
                self.procs[unfinished[0]].status
            )));
        }
        let proc_cycles: Vec<u64> = self
            .procs
            .iter()
            .map(|p| p.finished_at.expect("finished proc has finish time"))
            .collect();
        let exec_cycles = proc_cycles.iter().copied().max().unwrap_or(0);
        let barriers_aligned = self.barriers_aligned();
        // Processors that finished early were idle until the slowest one
        // was done; with that, every simulated cycle is accounted for.
        for (pi, finish) in proc_cycles.iter().enumerate() {
            self.metrics.per_proc[pi].idle = exec_cycles - finish;
            if let Some(t) = &mut self.trace {
                t.record_state(pi as u32, StateKind::Idle, *finish, exec_cycles);
            }
        }
        self.metrics.work.hash_lookups = match self.engine {
            EngineKind::Calendar => 0,
            EngineKind::ReferenceHeap => self.legacy_probes,
        };
        let memory = if self.outputs.memory {
            self.memory.snapshot()
        } else {
            Vec::new()
        };
        let barrier_seqs = if self.outputs.barrier_seqs {
            self.procs.iter().map(|p| p.barrier_seq.clone()).collect()
        } else {
            Vec::new()
        };
        Ok((
            SimResult {
                exec_cycles,
                proc_cycles,
                net: self.net,
                stalls: self.stalls,
                memory,
                barriers_aligned,
                metrics: self.metrics,
                barrier_seqs,
            },
            self.trace,
        ))
    }

    fn barriers_aligned(&self) -> bool {
        if !self.config.check_barrier_alignment {
            return true;
        }
        let first = &self.procs[0].barrier_seq;
        self.procs.iter().all(|p| &p.barrier_seq == first)
    }

    /// Dispatches one popped event: the shared interpreter core for the
    /// sequential drain loop and the sharded engine's window workers.
    pub(crate) fn dispatch(&mut self, time: u64, event: Event) -> Result<(), SimError> {
        match event {
            Event::Run(p) => {
                let pi = p as usize;
                if self.procs[pi].status == Status::Finished {
                    return Ok(());
                }
                let slack = time.saturating_sub(self.procs[pi].time);
                self.charge_busy(pi, slack);
                self.run_proc(p)
            }
            Event::Arrive { home, msg } => self.handle_arrive(time, home, msg),
            Event::Deliver { to, del } => self.handle_deliver(time, to, del),
            Event::Credit { to, amount } => {
                self.procs[to as usize].steal += amount;
                Ok(())
            }
        }
    }

    // ---- the per-processor interpreter ---------------------------------

    fn run_proc(&mut self, p: u32) -> Result<(), SimError> {
        let pi = p as usize;
        // Consume stolen cycles (message handling charged to this CPU).
        let steal = std::mem::take(&mut self.procs[pi].steal);
        self.charge_busy(pi, steal);
        self.procs[pi].status = Status::Ready;
        loop {
            self.procs[pi].steps += 1;
            if self.procs[pi].steps > self.config.max_steps {
                return Err(SimError::new(format!(
                    "processor {p} exceeded max_steps ({})",
                    self.config.max_steps
                )));
            }
            let block = self.procs[pi].block;
            let idx = self.procs[pi].instr;
            let instrs_len = self.cfg.block(block).instrs.len();
            if idx >= instrs_len {
                // Terminator.
                match self.cfg.block(block).term.clone() {
                    Terminator::Goto(t) => {
                        self.procs[pi].block = t;
                        self.procs[pi].instr = 0;
                    }
                    Terminator::Branch {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        self.charge_busy(pi, self.config.local_op_cycles);
                        let taken = eval(&cond, &self.procs[pi].env)?.as_bool()?;
                        self.procs[pi].block = if taken { then_bb } else { else_bb };
                        self.procs[pi].instr = 0;
                    }
                    Terminator::Return => {
                        self.procs[pi].status = Status::Finished;
                        self.procs[pi].finished_at = Some(self.procs[pi].time);
                        let t = self.procs[pi].time;
                        self.trace(t, p, TraceKind::Finished);
                        return Ok(());
                    }
                }
                continue;
            }
            let instr = self.cfg.block(block).instrs[idx].clone();
            self.procs[pi].instr += 1;
            if !self.exec_instr(p, &instr)? {
                // Blocked: the instruction will be *re-tried or resumed* by
                // a Deliver; blocking instructions are responsible for
                // setting up their own continuation (we re-run the same
                // instruction only for barrier-style retries, so blocked
                // instructions rewind the counter themselves if needed).
                return Ok(());
            }
        }
    }

    /// Executes one instruction; returns `false` if the processor blocked.
    fn exec_instr(&mut self, p: u32, instr: &Instr) -> Result<bool, SimError> {
        let pi = p as usize;
        match instr {
            Instr::AssignLocal { dst, value } => {
                let v = eval(value, &self.procs[pi].env)?;
                self.procs[pi].env.store(*dst, v)?;
                self.charge_busy(pi, self.config.local_op_cycles);
                Ok(true)
            }
            Instr::AssignLocalElem {
                array,
                index,
                value,
            } => {
                let idx = eval(index, &self.procs[pi].env)?.as_int()?;
                let v = eval(value, &self.procs[pi].env)?;
                self.procs[pi].env.store_elem(*array, idx, v)?;
                self.charge_busy(pi, self.config.local_op_cycles);
                Ok(true)
            }
            Instr::Work { cost } => {
                let c = eval(cost, &self.procs[pi].env)?.as_int()?;
                if c < 0 {
                    return Err(SimError::new("negative work cost"));
                }
                self.charge_busy(pi, c as u64);
                Ok(true)
            }
            Instr::GetShared { dst, src, .. } => {
                let loc = self.resolve(p, src)?;
                let home = self.home_of(loc);
                let t = if home == p {
                    self.local_touch(pi)
                } else {
                    self.net.get_requests += 1;
                    self.remote_send(pi)
                };
                let issued = (home != p).then(|| self.procs[pi].time);
                self.push(
                    t,
                    Event::Arrive {
                        home,
                        msg: Msg::Get {
                            from: p,
                            loc,
                            dst: *dst,
                            ctr: None,
                            issued,
                        },
                    },
                );
                self.procs[pi].status = Status::BlockedReply(self.procs[pi].time);
                Ok(false)
            }
            Instr::PutShared { dst, src, .. } => {
                let loc = self.resolve(p, dst)?;
                let val = eval(src, &self.procs[pi].env)?;
                let home = self.home_of(loc);
                let t = if home == p {
                    self.local_touch(pi)
                } else {
                    self.net.put_requests += 1;
                    self.remote_send(pi)
                };
                let issued = (home != p).then(|| self.procs[pi].time);
                self.push(
                    t,
                    Event::Arrive {
                        home,
                        msg: Msg::Put {
                            from: p,
                            loc,
                            val,
                            ctr: None,
                            issued,
                        },
                    },
                );
                self.procs[pi].status = Status::BlockedReply(self.procs[pi].time);
                Ok(false)
            }
            Instr::GetInit { dst, src, ctr, .. } => {
                let loc = self.resolve(p, src)?;
                let home = self.home_of(loc);
                self.legacy_probes += 1;
                self.procs[pi].ctrs[ctr.0 as usize] += 1;
                let t = if home == p {
                    self.local_touch(pi)
                } else {
                    self.net.get_requests += 1;
                    self.remote_send(pi)
                };
                let issued = (home != p).then(|| self.procs[pi].time);
                self.push(
                    t,
                    Event::Arrive {
                        home,
                        msg: Msg::Get {
                            from: p,
                            loc,
                            dst: *dst,
                            ctr: Some(*ctr),
                            issued,
                        },
                    },
                );
                if !self.shard_owns(home) {
                    // The reply's receive steal, scheduled locally and
                    // keyed adjacent to the request's arrival — the exact
                    // global position where the sequential engine writes
                    // it at the home.
                    self.push(
                        t,
                        Event::Credit {
                            to: p,
                            amount: self.config.recv_overhead,
                        },
                    );
                }
                Ok(true)
            }
            Instr::PutInit { dst, src, ctr, .. } => {
                let loc = self.resolve(p, dst)?;
                let val = eval(src, &self.procs[pi].env)?;
                let home = self.home_of(loc);
                self.legacy_probes += 1;
                self.procs[pi].ctrs[ctr.0 as usize] += 1;
                let t = if home == p {
                    self.local_touch(pi)
                } else {
                    self.net.put_requests += 1;
                    self.remote_send(pi)
                };
                let issued = (home != p).then(|| self.procs[pi].time);
                self.push(
                    t,
                    Event::Arrive {
                        home,
                        msg: Msg::Put {
                            from: p,
                            loc,
                            val,
                            ctr: Some(*ctr),
                            issued,
                        },
                    },
                );
                if !self.shard_owns(home) {
                    // Ack steal; see the split-phase get above.
                    self.push(
                        t,
                        Event::Credit {
                            to: p,
                            amount: self.config.ack_cycles,
                        },
                    );
                }
                Ok(true)
            }
            Instr::StoreInit { dst, src, .. } => {
                let loc = self.resolve(p, dst)?;
                let val = eval(src, &self.procs[pi].env)?;
                let home = self.home_of(loc);
                let t = if home == p {
                    self.local_touch(pi)
                } else {
                    self.net.store_requests += 1;
                    self.remote_send(pi)
                };
                let issued = (home != p).then(|| self.procs[pi].time);
                if let Some(sh) = &mut self.shard {
                    sh.log_store_init();
                } else {
                    self.stores_in_flight += 1;
                }
                self.push(
                    t,
                    Event::Arrive {
                        home,
                        msg: Msg::Store {
                            from: p,
                            loc,
                            val,
                            issued,
                        },
                    },
                );
                Ok(true)
            }
            Instr::SyncCtr { ctr } => {
                self.charge_busy(pi, self.config.local_op_cycles);
                self.legacy_probes += 1;
                if self.procs[pi].ctrs[ctr.0 as usize] == 0 {
                    Ok(true)
                } else {
                    self.procs[pi].status = Status::BlockedSync(*ctr, self.procs[pi].time);
                    Ok(false)
                }
            }
            Instr::Post { flag, index, .. } => {
                let loc = self.resolve_flag(p, *flag, index.as_ref())?;
                let home = self.home_of(loc);
                let t = if home == p {
                    self.local_touch(pi)
                } else {
                    self.net.post_messages += 1;
                    self.remote_send(pi)
                };
                self.push(
                    t,
                    Event::Arrive {
                        home,
                        msg: Msg::Post { from: p, loc },
                    },
                );
                Ok(true)
            }
            Instr::Wait { flag, index, .. } => {
                let loc = self.resolve_flag(p, *flag, index.as_ref())?;
                let home = self.home_of(loc);
                let t = if home == p {
                    self.local_touch(pi)
                } else {
                    self.net.wait_messages += 1;
                    self.remote_send(pi)
                };
                self.push(
                    t,
                    Event::Arrive {
                        home,
                        msg: Msg::WaitCheck { from: p, loc },
                    },
                );
                self.procs[pi].status = Status::BlockedWait(self.procs[pi].time);
                Ok(false)
            }
            Instr::LockAcq { lock, .. } => {
                let loc = Location {
                    var: *lock,
                    index: 0,
                };
                let home = self.home_of(loc);
                let t = if home == p {
                    self.local_touch(pi)
                } else {
                    self.net.lock_messages += 1;
                    self.remote_send(pi)
                };
                self.push(
                    t,
                    Event::Arrive {
                        home,
                        msg: Msg::LockReq {
                            from: p,
                            lock: *lock,
                        },
                    },
                );
                self.procs[pi].status = Status::BlockedLock(self.procs[pi].time);
                Ok(false)
            }
            Instr::LockRel { lock, .. } => {
                let loc = Location {
                    var: *lock,
                    index: 0,
                };
                let home = self.home_of(loc);
                let t = if home == p {
                    self.local_touch(pi)
                } else {
                    self.net.lock_messages += 1;
                    self.remote_send(pi)
                };
                self.push(
                    t,
                    Event::Arrive {
                        home,
                        msg: Msg::Unlock {
                            from: p,
                            lock: *lock,
                        },
                    },
                );
                Ok(true)
            }
            Instr::Barrier { access } => {
                self.procs[pi].barrier_seq.push(*access);
                let arrive = self.procs[pi].time;
                self.procs[pi].status = Status::BlockedBarrier(arrive);
                if let Some(sh) = &mut self.shard {
                    // Sharded: the rendezvous is global, so arrivals are
                    // logged and resolved by the round leader at the next
                    // horizon boundary.
                    sh.log_barrier_arrival(p, arrive);
                    return Ok(false);
                }
                self.barrier_arrivals[pi] = Some((*access, arrive));
                if self.barrier_arrivals.iter().all(|a| a.is_some()) {
                    // One-way stores must drain before the barrier
                    // completes (the completion rule for stores); if any
                    // are still in flight the last drain triggers release.
                    if self.stores_in_flight == 0 {
                        self.release_barrier(arrive)?;
                    } else {
                        self.barrier_release_pending = true;
                    }
                }
                Ok(false)
            }
        }
    }

    fn release_barrier(&mut self, base: u64) -> Result<(), SimError> {
        let max_arrival = self
            .barrier_arrivals
            .iter()
            .map(|a| a.expect("all arrived").1)
            .max()
            .unwrap_or(0);
        let min_arrival = self
            .barrier_arrivals
            .iter()
            .map(|a| a.expect("all arrived").1)
            .min()
            .unwrap_or(0);
        let release = max_arrival.max(base) + self.config.barrier_cycles;
        self.trace(release, 0, TraceKind::BarrierRelease);
        if let Some(t) = &mut self.trace {
            t.record_barrier(min_arrival, max_arrival, release);
        }
        self.net.barriers += 1;
        self.metrics.barrier_epochs.push(BarrierEpoch {
            first_arrival: min_arrival,
            last_arrival: max_arrival,
            release,
        });
        for pi in 0..self.procs.len() {
            let (_, arrive) = self.barrier_arrivals[pi].take().expect("arrived");
            self.stalls.barrier += release - arrive;
            let start = self.procs[pi].time;
            self.metrics.per_proc[pi].barrier += release - start;
            self.procs[pi].time = release;
            self.trace_state(pi, StateKind::Barrier, start, release);
            self.push(release, Event::Run(pi as u32));
        }
        Ok(())
    }

    // ---- home-node message handling -------------------------------------

    fn handle_arrive(&mut self, time: u64, home: u32, msg: Msg) -> Result<(), SimError> {
        let hi = home as usize;
        // Handlers at one node serialize. A message from the home processor
        // itself models a plain local access: no handler cost.
        let from_proc = match &msg {
            Msg::Get { from, .. }
            | Msg::Put { from, .. }
            | Msg::Store { from, .. }
            | Msg::Post { from, .. }
            | Msg::WaitCheck { from, .. }
            | Msg::LockReq { from, .. }
            | Msg::Unlock { from, .. } => *from,
        };
        let local = from_proc == home;
        let start = time.max(self.handler_free[hi]);
        let handler = if local { 0 } else { self.config.handler_cycles };
        let done = start + handler;
        self.handler_free[hi] = done;
        if !local {
            self.metrics.per_proc[hi].msgs_handled += 1;
        }
        match msg {
            Msg::Get {
                from,
                loc,
                dst,
                ctr,
                issued,
            } => {
                self.trace(done, home, TraceKind::Service { what: "get" });
                self.legacy_probes += 1;
                let val = self.memory.load(loc)?;
                let (deliver, recv) = if local {
                    (done, 0)
                } else {
                    self.net.get_replies += 1;
                    (
                        done + self.config.network_latency,
                        self.config.recv_overhead,
                    )
                };
                if let (Some(t), Some(iss)) = (&mut self.trace, issued) {
                    t.record_flow(FlowKind::Get, from, home, iss, done, Some(deliver));
                }
                if ctr.is_some() && self.shard_owns(from) {
                    // Split-phase replies interrupt the issuing CPU. A
                    // non-owned issuer already scheduled this steal as a
                    // local Credit event at issue time.
                    self.procs[from as usize].steal += recv;
                }
                self.push(
                    deliver,
                    Event::Deliver {
                        to: from,
                        del: Delivery::GetReply {
                            dst,
                            val,
                            ctr,
                            recv,
                            issued,
                        },
                    },
                );
            }
            Msg::Put {
                from,
                loc,
                val,
                ctr,
                issued,
            } => {
                self.trace(done, home, TraceKind::Service { what: "put" });
                self.legacy_probes += 1;
                self.memory.store(loc, val)?;
                let (deliver, recv) = if local {
                    (done, 0)
                } else {
                    self.net.put_acks += 1;
                    (
                        done + self.config.ack_cycles + self.config.network_latency,
                        self.config.ack_cycles,
                    )
                };
                if let (Some(t), Some(iss)) = (&mut self.trace, issued) {
                    t.record_flow(FlowKind::Put, from, home, iss, done, Some(deliver));
                }
                if ctr.is_some() && self.shard_owns(from) {
                    self.procs[from as usize].steal += recv;
                }
                self.push(
                    deliver,
                    Event::Deliver {
                        to: from,
                        del: Delivery::PutAck { ctr, recv, issued },
                    },
                );
            }
            Msg::Store {
                from,
                loc,
                val,
                issued,
            } => {
                self.trace(done, home, TraceKind::Service { what: "store" });
                self.legacy_probes += 1;
                self.memory.store(loc, val)?;
                // A store has no reply: its latency ends when the home
                // applies it.
                if let Some(iss) = issued {
                    self.metrics.latency.record(done.saturating_sub(iss));
                    if let Some(t) = &mut self.trace {
                        t.record_flow(FlowKind::Store, from, home, iss, done, None);
                    }
                }
                if let Some(sh) = &mut self.shard {
                    sh.log_store_drain(done);
                } else {
                    self.stores_in_flight -= 1;
                    if self.stores_in_flight == 0 && self.barrier_release_pending {
                        self.barrier_release_pending = false;
                        self.release_barrier(done)?;
                    }
                }
            }
            Msg::Post { loc, .. } => {
                self.trace(done, home, TraceKind::Service { what: "post" });
                self.legacy_probes += 2;
                self.memory.set_flag(loc)?;
                let slot = self.memory.flag_slot(loc)?;
                let waiters = std::mem::take(&mut self.waiters[slot]);
                self.metrics.work.waiter_scans += waiters.len() as u64;
                for w in waiters {
                    let (deliver, recv) = if w == home {
                        (done, 0)
                    } else {
                        self.net.wait_messages += 1;
                        (
                            done + self.config.network_latency,
                            self.config.recv_overhead,
                        )
                    };
                    let credit = self.deferred_credit(w, recv);
                    self.push(
                        deliver,
                        Event::Deliver {
                            to: w,
                            del: Delivery::FlagSet { credit },
                        },
                    );
                }
            }
            Msg::WaitCheck { from, loc } => {
                self.trace(done, home, TraceKind::Service { what: "wait" });
                self.legacy_probes += 1;
                if self.memory.flag(loc)? {
                    let (deliver, recv) = if from == home {
                        (done, 0)
                    } else {
                        self.net.wait_messages += 1;
                        (
                            done + self.config.network_latency,
                            self.config.recv_overhead,
                        )
                    };
                    let credit = self.deferred_credit(from, recv);
                    self.push(
                        deliver,
                        Event::Deliver {
                            to: from,
                            del: Delivery::FlagSet { credit },
                        },
                    );
                } else {
                    self.legacy_probes += 1;
                    let slot = self.memory.flag_slot(loc)?;
                    self.waiters[slot].push(from);
                    self.metrics.work.waiter_scans += 1;
                }
            }
            Msg::LockReq { from, lock } => {
                self.trace(done, home, TraceKind::Service { what: "lock" });
                self.legacy_probes += 1;
                let state = &mut self.locks[lock.index()];
                if state.held {
                    state.queue.push_back(from);
                } else {
                    state.held = true;
                    let (deliver, recv) = if from == home {
                        (done, 0)
                    } else {
                        self.net.lock_messages += 1;
                        (
                            done + self.config.network_latency,
                            self.config.recv_overhead,
                        )
                    };
                    let credit = self.deferred_credit(from, recv);
                    self.push(
                        deliver,
                        Event::Deliver {
                            to: from,
                            del: Delivery::LockGrant { lock, credit },
                        },
                    );
                }
            }
            Msg::Unlock { from, lock } => {
                self.trace(done, home, TraceKind::Service { what: "unlock" });
                self.legacy_probes += 1;
                if let Some(t) = &mut self.trace {
                    let acquired = self.locks[lock.index()].acquired_at;
                    t.record_lock(from, lock.index() as u32, acquired, done);
                }
                let state = &mut self.locks[lock.index()];
                if let Some(next) = state.queue.pop_front() {
                    // Hand over directly to the next waiter.
                    let (deliver, recv) = if next == home {
                        (done, 0)
                    } else {
                        self.net.lock_messages += 1;
                        (
                            done + self.config.network_latency,
                            self.config.recv_overhead,
                        )
                    };
                    let credit = self.deferred_credit(next, recv);
                    self.push(
                        deliver,
                        Event::Deliver {
                            to: next,
                            del: Delivery::LockGrant { lock, credit },
                        },
                    );
                } else {
                    state.held = false;
                }
            }
        }
        Ok(())
    }

    fn handle_deliver(&mut self, time: u64, to: u32, del: Delivery) -> Result<(), SimError> {
        let pi = to as usize;
        match del {
            Delivery::GetReply {
                dst,
                val,
                ctr,
                recv,
                issued,
            } => {
                self.trace(time, to, TraceKind::Deliver { what: "data" });
                if let Some(iss) = issued {
                    self.metrics.latency.record(time.saturating_sub(iss));
                }
                self.procs[pi].env.store(dst, val)?;
                match ctr {
                    Some(c) => self.ctr_completed(to, c, time),
                    None => {
                        if let Status::BlockedReply(since) = self.procs[pi].status {
                            self.stalls.blocking += time.saturating_sub(since);
                            // Blocking reads pay the receive cost inline.
                            self.resume_blocking(to, time, recv);
                        }
                    }
                }
            }
            Delivery::PutAck { ctr, recv, issued } => {
                self.trace(time, to, TraceKind::Deliver { what: "ack" });
                if let Some(iss) = issued {
                    self.metrics.latency.record(time.saturating_sub(iss));
                }
                match ctr {
                    Some(c) => self.ctr_completed(to, c, time),
                    None => {
                        if let Status::BlockedReply(since) = self.procs[pi].status {
                            self.stalls.blocking += time.saturating_sub(since);
                            self.resume_blocking(to, time, recv);
                        }
                    }
                }
            }
            Delivery::FlagSet { credit } => {
                self.trace(time, to, TraceKind::Deliver { what: "flag" });
                self.procs[pi].steal += credit;
                if let Status::BlockedWait(since) = self.procs[pi].status {
                    self.stalls.wait += time.saturating_sub(since);
                    let advanced = self.resume(to, time);
                    self.metrics.per_proc[pi].wait += advanced;
                    let end = self.procs[pi].time;
                    self.trace_state(pi, StateKind::Wait, end - advanced, end);
                }
            }
            Delivery::LockGrant { lock, credit } => {
                self.trace(time, to, TraceKind::Deliver { what: "grant" });
                self.procs[pi].steal += credit;
                if self.trace.is_some() {
                    self.locks[lock.index()].acquired_at = time;
                }
                if let Status::BlockedLock(since) = self.procs[pi].status {
                    self.stalls.lock += time.saturating_sub(since);
                    let advanced = self.resume(to, time);
                    self.metrics.per_proc[pi].lock += advanced;
                    let end = self.procs[pi].time;
                    self.trace_state(pi, StateKind::Lock, end - advanced, end);
                }
            }
        }
        Ok(())
    }

    /// A split-phase operation on counter `c` completed at `time`.
    fn ctr_completed(&mut self, p: u32, c: CtrId, time: u64) {
        let pi = p as usize;
        self.legacy_probes += 1;
        let n = &mut self.procs[pi].ctrs[c.0 as usize];
        *n -= 1;
        if *n == 0 {
            if let Status::BlockedSync(bc, since) = self.procs[pi].status {
                if bc == c {
                    self.stalls.sync += time.saturating_sub(since);
                    let advanced = self.resume(p, time);
                    self.metrics.per_proc[pi].sync += advanced;
                    let end = self.procs[pi].time;
                    self.trace_state(pi, StateKind::Sync, end - advanced, end);
                }
            }
        }
    }

    /// Charges a local memory touch and returns its completion time.
    fn local_touch(&mut self, pi: usize) -> u64 {
        self.charge_busy(pi, self.config.local_access_cycles);
        self.procs[pi].time
    }

    /// Charges a remote message injection (CPU overhead plus NIC
    /// serialization) and returns the arrival time at the destination.
    /// NIC backpressure (waiting out the injection gap) counts as busy:
    /// the CPU is occupied with communication, not blocked on a peer.
    fn remote_send(&mut self, pi: usize) -> u64 {
        let gap = self.next_inject[pi].saturating_sub(self.procs[pi].time);
        self.charge_busy(pi, gap + self.config.send_overhead);
        self.metrics.per_proc[pi].msgs_sent += 1;
        self.next_inject[pi] = self.procs[pi].time + self.config.injection_gap_cycles;
        self.procs[pi].time + self.config.network_latency
    }

    /// Unblocks `p` at `time` and returns how many cycles its clock
    /// advanced, so the caller can attribute them to the blocking cause.
    fn resume(&mut self, p: u32, time: u64) -> u64 {
        let pi = p as usize;
        let advanced = time.saturating_sub(self.procs[pi].time);
        self.procs[pi].time += advanced;
        self.procs[pi].status = Status::Ready;
        let t = self.procs[pi].time;
        self.push(t, Event::Run(p));
        advanced
    }

    /// Unblocks `p` after a blocking remote access: the round trip counts
    /// as network wait, the inline receive cost (`recv`) as busy.
    fn resume_blocking(&mut self, p: u32, time: u64, recv: u64) {
        let pi = p as usize;
        let start = self.procs[pi].time;
        let advanced = self.resume(p, time + recv);
        let busy_part = advanced.min(recv);
        self.metrics.per_proc[pi].busy += busy_part;
        self.metrics.per_proc[pi].network_wait += advanced - busy_part;
        let split = start + (advanced - busy_part);
        self.trace_state(pi, StateKind::NetworkWait, start, split);
        self.trace_state(pi, StateKind::Busy, split, start + advanced);
    }

    // ---- helpers ---------------------------------------------------------

    fn resolve(&self, p: u32, sref: &SharedRef) -> Result<Location, SimError> {
        let index = match &sref.index {
            Some(e) => {
                let i = eval(e, &self.procs[p as usize].env)?.as_int()?;
                u64::try_from(i).map_err(|_| {
                    SimError::new(format!("negative shared index {i} into {}", sref.var))
                })?
            }
            None => 0,
        };
        Ok(Location {
            var: sref.var,
            index,
        })
    }

    fn resolve_flag(
        &self,
        p: u32,
        flag: VarId,
        index: Option<&syncopt_ir::expr::Expr>,
    ) -> Result<Location, SimError> {
        let index = match index {
            Some(e) => {
                let i = eval(e, &self.procs[p as usize].env)?.as_int()?;
                u64::try_from(i)
                    .map_err(|_| SimError::new(format!("negative flag index {i} into {flag}")))?
            }
            None => 0,
        };
        Ok(Location { var: flag, index })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    fn sim(src: &str, procs: u32) -> SimResult {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let r = simulate(&cfg, &MachineConfig::cm5(procs)).expect("simulation should succeed");
        assert_cycles_conserved(&r);
        r
    }

    /// Every processor's cycle accounting must sum exactly to the
    /// execution time — no cycle unattributed, none double-counted.
    fn assert_cycles_conserved(r: &SimResult) {
        assert_eq!(r.metrics.per_proc.len(), r.proc_cycles.len());
        for (pi, pc) in r.metrics.per_proc.iter().enumerate() {
            assert_eq!(
                pc.accounted(),
                r.exec_cycles,
                "proc {pi} accounting off: {pc:?} vs exec_cycles {}",
                r.exec_cycles
            );
            assert_eq!(
                r.exec_cycles - r.proc_cycles[pi],
                pc.idle,
                "proc {pi} idle must be the gap to the slowest processor"
            );
        }
    }

    fn mem_value(result: &SimResult, cfg_src: &str, name: &str, idx: usize) -> Value {
        let cfg = lower_main(&prepare_program(cfg_src).unwrap()).unwrap();
        let var = cfg.vars.by_name(name).unwrap();
        result
            .memory
            .iter()
            .find(|(v, _)| *v == var)
            .map(|(_, vals)| vals[idx])
            .unwrap()
    }

    /// Asserts two runs agree on every observable except the engine work
    /// counters (which legitimately differ between queue implementations).
    fn assert_observationally_equal(a: &SimResult, b: &SimResult) {
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.proc_cycles, b.proc_cycles);
        assert_eq!(a.net, b.net);
        assert_eq!(a.stalls, b.stalls);
        assert_eq!(a.memory, b.memory);
        assert_eq!(a.barriers_aligned, b.barriers_aligned);
        assert_eq!(a.barrier_seqs, b.barrier_seqs);
        assert_eq!(a.metrics.per_proc, b.metrics.per_proc);
        assert_eq!(a.metrics.latency, b.metrics.latency);
        assert_eq!(a.metrics.barrier_epochs, b.metrics.barrier_epochs);
    }

    const MIXED_SRC: &str = r#"
        shared int A[16]; shared int X; flag F; lock l;
        fn main() {
            work(MYPROC * 57);
            A[MYPROC] = MYPROC;
            barrier;
            int v; v = A[(MYPROC + 1) % PROCS];
            if (MYPROC == 0) { post F; } else { wait F; }
            lock l; X = X + v; unlock l;
            barrier;
        }
    "#;

    #[test]
    fn empty_program_finishes_immediately() {
        let r = sim("fn main() { }", 4);
        assert_eq!(r.exec_cycles, 0);
        assert_eq!(r.proc_cycles, vec![0; 4]);
        assert!(r.barriers_aligned);
    }

    #[test]
    fn work_costs_its_cycles() {
        let r = sim("fn main() { work(1000); }", 2);
        assert_eq!(r.exec_cycles, 1000);
    }

    #[test]
    fn blocking_remote_read_costs_table1_round_trip() {
        // Proc 1 reads a scalar homed on proc 0; only measure proc 1.
        let src = "shared int X; fn main() { if (MYPROC == 1) { int v; v = X; } }";
        let r = sim(src, 2);
        // branch (2) + send+2·latency+handler+recv (400) = 402.
        assert_eq!(r.proc_cycles[1], 402, "stats: {:?}", r.net);
        assert_eq!(r.net.get_requests, 1);
        assert_eq!(r.net.get_replies, 1);
    }

    #[test]
    fn local_access_is_cheap() {
        // Proc 0 owns X (round-robin home of first scalar).
        let src = "shared int X; fn main() { if (MYPROC == 0) { int v; v = X; } }";
        let r = sim(src, 2);
        // branch (2) + local access (30).
        assert_eq!(r.proc_cycles[0], 32);
        assert_eq!(r.net.get_requests, 0);
    }

    #[test]
    fn writes_become_visible() {
        let src = "shared int A[8]; fn main() { A[MYPROC] = MYPROC * 10; }";
        let r = sim(src, 4);
        for p in 0..4 {
            assert_eq!(mem_value(&r, src, "A", p), Value::Int(p as i64 * 10));
        }
    }

    #[test]
    fn flag_synchronization_orders_data() {
        let src = r#"
            shared int Data; flag F;
            fn main() {
                if (MYPROC == 0) { Data = 42; post F; }
                else { wait F; int v; v = Data; Data = v + 1; }
            }
        "#;
        let r = sim(src, 2);
        assert_eq!(mem_value(&r, src, "Data", 0), Value::Int(43));
        assert!(r.stalls.wait > 0, "consumer must have waited");
    }

    #[test]
    fn barrier_synchronizes_and_aligns() {
        let src = r#"
            shared int A[4];
            fn main() {
                A[MYPROC] = 1;
                barrier;
                int v; v = A[(MYPROC + 1) % PROCS];
                work(v);
            }
        "#;
        let r = sim(src, 4);
        assert!(r.barriers_aligned);
        assert_eq!(r.net.barriers, 1);
        assert!(r.stalls.barrier > 0);
    }

    #[test]
    fn misaligned_barriers_are_detected() {
        let src = "fn main() { if (MYPROC == 0) { barrier; } }";
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let r = simulate(&cfg, &MachineConfig::cm5(2));
        // Proc 0 blocks at the barrier forever: deadlock.
        assert!(r.is_err());
    }

    #[test]
    fn locks_serialize_increments() {
        let src = r#"
            shared int X; lock l;
            fn main() {
                lock l;
                int v; v = X;
                X = v + 1;
                unlock l;
            }
        "#;
        let r = sim(src, 8);
        assert_eq!(mem_value(&r, src, "X", 0), Value::Int(8));
        assert!(r.net.lock_messages > 0);
    }

    #[test]
    fn loop_accumulates() {
        let src = r#"
            shared int A[4];
            fn main() {
                int i; int acc; acc = 0;
                for (i = 0; i < 10; i = i + 1) { acc = acc + i; }
                A[MYPROC] = acc;
            }
        "#;
        let r = sim(src, 2);
        assert_eq!(mem_value(&r, src, "A", 0), Value::Int(45));
        assert_eq!(mem_value(&r, src, "A", 1), Value::Int(45));
    }

    #[test]
    fn deterministic_across_runs() {
        let src = r#"
            shared int A[16]; lock l; shared int X;
            fn main() {
                A[MYPROC] = MYPROC;
                barrier;
                int v; v = A[(MYPROC + 1) % PROCS];
                lock l; X = X + v; unlock l;
            }
        "#;
        let r1 = sim(src, 8);
        let r2 = sim(src, 8);
        assert_eq!(r1.exec_cycles, r2.exec_cycles);
        assert_eq!(r1.memory, r2.memory);
        assert_eq!(r1.net, r2.net);
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let src = "shared int A[4]; fn main() { A[7 + MYPROC] = 1; }";
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        assert!(simulate(&cfg, &MachineConfig::cm5(2)).is_err());
    }

    #[test]
    fn posted_flags_latch() {
        // The post happens long before the wait: the waiter passes with a
        // cheap check instead of blocking.
        let src = r#"
            flag F;
            fn main() {
                if (MYPROC == 0) { post F; }
                else { work(100000); wait F; }
            }
        "#;
        let r = sim(src, 2);
        // The check still costs one round trip to the flag's home, but
        // never the 100k-cycle gap a real block would show.
        let rt = MachineConfig::cm5(2).remote_round_trip();
        assert!(
            r.stalls.wait <= rt,
            "latched flag should cost at most a check: {}",
            r.stalls.wait
        );
    }

    #[test]
    fn flag_array_elements_are_independent() {
        let src = r#"
            flag F[4];
            fn main() {
                post F[MYPROC];
                wait F[(MYPROC + 1) % PROCS];
            }
        "#;
        let r = sim(src, 4);
        assert_eq!(r.proc_cycles.len(), 4);
        // Everyone finished (no deadlock) — the elements did not collide.
    }

    #[test]
    fn locks_grant_in_fifo_order() {
        // All processors contend once; the total increments must all land
        // regardless of grant order, and the lock hand-off chain should
        // cost roughly one round trip per holder.
        let src = r#"
            shared int X; lock l;
            fn main() {
                work(MYPROC * 3);
                lock l;
                int v; v = X;
                X = v + 1;
                unlock l;
            }
        "#;
        let r = sim(src, 6);
        let x = r.memory.iter().find(|(_, vals)| vals.len() == 1).unwrap();
        assert_eq!(x.1[0], Value::Int(6));
        assert!(r.stalls.lock > 0, "contention must appear as lock stalls");
    }

    #[test]
    fn t3d_and_dash_blocking_costs_match_table1() {
        let src = "shared int X; fn main() { if (MYPROC == 1) { int v; v = X; } }";
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        for config in MachineConfig::table1(2) {
            let r = simulate(&cfg, &config).unwrap();
            assert_eq!(
                r.proc_cycles[1],
                config.remote_round_trip() + config.local_op_cycles,
                "{}",
                config.name
            );
        }
    }

    #[test]
    fn split_phase_overlaps_but_blocking_does_not() {
        // Two independent remote reads (elements 4+ home on proc 1):
        // blocking pays 2 round trips, split-phase roughly one.
        let config = MachineConfig::cm5(2);
        let src = r#"
            shared int A[8]; shared int B[8];
            fn main() {
                int x; int y;
                if (MYPROC == 0) {
                    x = A[MYPROC + 4];
                    y = B[MYPROC + 5];
                    work(x + y);
                }
            }
        "#;
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let blocking = simulate(&cfg, &config).unwrap();
        let analysis = syncopt_core::analyze_for(&cfg, 2);
        let opt = syncopt_codegen::optimize(
            &cfg,
            &analysis,
            syncopt_codegen::OptLevel::Pipelined,
            syncopt_codegen::DelayChoice::SyncRefined,
        );
        let pipelined = simulate(&opt.cfg, &config).unwrap();
        let rt = config.remote_round_trip();
        assert!(
            blocking.proc_cycles[0] >= 2 * rt,
            "blocking: {}",
            blocking.proc_cycles[0]
        );
        assert!(
            pipelined.proc_cycles[0] < blocking.proc_cycles[0] - rt / 2,
            "pipelined {} vs blocking {}",
            pipelined.proc_cycles[0],
            blocking.proc_cycles[0]
        );
    }

    #[test]
    fn traced_simulation_matches_untraced() {
        let src = r#"
            shared int A[4]; flag F;
            fn main() {
                A[MYPROC] = MYPROC;
                barrier;
                int v; v = A[(MYPROC + 1) % PROCS];
                if (MYPROC == 0) { post F; } else { wait F; }
                work(v);
            }
        "#;
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let config = MachineConfig::cm5(4);
        let plain = simulate(&cfg, &config).unwrap();
        let (traced, trace) = crate::sim::simulate_traced(&cfg, &config, 10_000).unwrap();
        assert_eq!(plain.exec_cycles, traced.exec_cycles);
        assert_eq!(plain.memory, traced.memory);
        let events = trace.events();
        assert!(!events.is_empty());
        // Trace is time-sorted and contains the expected event families.
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        let has =
            |pred: &dyn Fn(&crate::trace::TraceKind) -> bool| events.iter().any(|e| pred(&e.kind));
        use crate::trace::TraceKind;
        assert!(has(
            &|k| matches!(k, TraceKind::Service { what } if *what == "get")
        ));
        assert!(has(
            &|k| matches!(k, TraceKind::Service { what } if *what == "post")
        ));
        assert!(has(&|k| matches!(k, TraceKind::BarrierRelease)));
        assert!(
            events
                .iter()
                .filter(|e| matches!(e.kind, TraceKind::Finished))
                .count()
                == 4
        );
    }

    #[test]
    fn state_spans_reproduce_cycle_accounting_exactly() {
        use crate::trace::StateKind;
        let cfg = lower_main(&prepare_program(MIXED_SRC).unwrap()).unwrap();
        let config = MachineConfig::cm5(8);
        let (r, trace) = crate::sim::simulate_traced(&cfg, &config, 1_000_000).unwrap();
        assert!(!trace.truncated());
        for (pi, pc) in r.metrics.per_proc.iter().enumerate() {
            let p = pi as u32;
            assert_eq!(
                trace.state_cycles(p, StateKind::Busy),
                pc.busy,
                "busy p{pi}"
            );
            assert_eq!(
                trace.state_cycles(p, StateKind::Sync),
                pc.sync,
                "sync p{pi}"
            );
            assert_eq!(
                trace.state_cycles(p, StateKind::Barrier),
                pc.barrier,
                "barrier p{pi}"
            );
            assert_eq!(
                trace.state_cycles(p, StateKind::Wait),
                pc.wait,
                "wait p{pi}"
            );
            assert_eq!(
                trace.state_cycles(p, StateKind::Lock),
                pc.lock,
                "lock p{pi}"
            );
            assert_eq!(
                trace.state_cycles(p, StateKind::NetworkWait),
                pc.network_wait,
                "network_wait p{pi}"
            );
            assert_eq!(
                trace.state_cycles(p, StateKind::Idle),
                pc.idle,
                "idle p{pi}"
            );
            // Per-processor spans tile [0, exec_cycles) without overlap.
            let mut spans: Vec<_> = trace.state_spans().iter().filter(|s| s.proc == p).collect();
            spans.sort_by_key(|s| s.start);
            let mut cursor = 0;
            for s in &spans {
                assert!(s.start >= cursor, "overlap at p{pi} cycle {}", s.start);
                cursor = s.end;
            }
            let covered: u64 = spans.iter().map(|s| s.cycles()).sum();
            assert_eq!(covered, r.exec_cycles, "p{pi} spans must tile the run");
        }
    }

    #[test]
    fn flow_and_lock_spans_track_message_lives() {
        let cfg = lower_main(&prepare_program(MIXED_SRC).unwrap()).unwrap();
        let config = MachineConfig::cm5(4);
        let (r, trace) = crate::sim::simulate_traced(&cfg, &config, 1_000_000).unwrap();
        // One flow per remote request with a reply for gets/puts.
        use crate::trace::FlowKind;
        let gets = trace
            .flow_spans()
            .iter()
            .filter(|f| f.kind == FlowKind::Get)
            .count() as u64;
        let puts = trace
            .flow_spans()
            .iter()
            .filter(|f| f.kind == FlowKind::Put)
            .count() as u64;
        assert_eq!(gets, r.net.get_requests);
        assert_eq!(puts, r.net.put_requests);
        for f in trace.flow_spans() {
            assert!(f.issued <= f.service, "flow {}: service before issue", f.id);
            if let Some(d) = f.delivered {
                assert!(f.service <= d, "flow {}: delivery before service", f.id);
            } else {
                assert_eq!(f.kind, FlowKind::Store, "only stores lack replies");
            }
        }
        // Ids are the insertion order.
        for (i, f) in trace.flow_spans().iter().enumerate() {
            assert_eq!(f.id, i as u64);
        }
        // Every processor holds the lock exactly once, holds ordered.
        assert_eq!(trace.lock_spans().len(), 4);
        for w in trace.lock_spans().windows(2) {
            assert!(
                w[0].released <= w[1].acquired,
                "lock holds must not overlap"
            );
        }
        // Barrier spans mirror the metrics epochs.
        assert_eq!(trace.barrier_spans().len(), r.metrics.barrier_epochs.len());
        for (s, e) in trace.barrier_spans().iter().zip(&r.metrics.barrier_epochs) {
            assert_eq!(s.first_arrival, e.first_arrival);
            assert_eq!(s.last_arrival, e.last_arrival);
            assert_eq!(s.release, e.release);
        }
    }

    #[test]
    fn injection_gap_serializes_bursts() {
        // Eight split-phase puts back to back: with a larger injection gap
        // the burst takes longer even though CPU overhead is identical.
        let src = r#"
            shared int A[16];
            fn main() {
                if (MYPROC == 0) {
                    A[8] = 1; A[9] = 1; A[10] = 1; A[11] = 1;
                    A[12] = 1; A[13] = 1; A[14] = 1; A[15] = 1;
                }
                barrier;
            }
        "#;
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let analysis = syncopt_core::analyze_for(&cfg, 2);
        let opt = syncopt_codegen::optimize(
            &cfg,
            &analysis,
            syncopt_codegen::OptLevel::OneWay,
            syncopt_codegen::DelayChoice::SyncRefined,
        );
        let mut fast = MachineConfig::cm5(2);
        fast.injection_gap_cycles = 0;
        let mut slow = MachineConfig::cm5(2);
        slow.injection_gap_cycles = 100;
        let rf = simulate(&opt.cfg, &fast).unwrap();
        let rs = simulate(&opt.cfg, &slow).unwrap();
        assert!(
            rs.exec_cycles > rf.exec_cycles,
            "gap should slow the burst: {} vs {}",
            rs.exec_cycles,
            rf.exec_cycles
        );
        assert_eq!(rf.memory, rs.memory);
    }

    #[test]
    fn hot_home_handler_serializes() {
        // Every processor reads a scalar homed on proc 0: handler
        // serialization makes the last reply later than one round trip.
        let src = "shared int X; fn main() { if (MYPROC > 0) { int v; v = X; } }";
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let config = MachineConfig::cm5(16);
        let r = simulate(&cfg, &config).unwrap();
        let rt = config.remote_round_trip() + config.local_op_cycles;
        let slowest = *r.proc_cycles.iter().max().unwrap();
        assert!(
            slowest > rt,
            "15 concurrent requests must queue at the home: {slowest} vs {rt}"
        );
        // Queueing delay ≈ (n-1)·handler on top of the round trip.
        assert!(slowest >= rt + 14 * config.handler_cycles);
    }

    #[test]
    fn cycle_accounting_conserves_on_mixed_workload() {
        // Exercises every blocking cause at once: blocking remote reads,
        // barriers, flags, locks, and uneven work.
        let r = sim(MIXED_SRC, 8);
        // `sim` already asserts conservation; spot-check the categories
        // that this workload must populate.
        let total: u64 = r.metrics.per_proc.iter().map(|p| p.barrier).sum();
        assert_eq!(total, r.stalls.barrier, "per-proc barrier sums to global");
        let lock: u64 = r.metrics.per_proc.iter().map(|p| p.lock).sum();
        assert_eq!(lock, r.stalls.lock);
        let wait: u64 = r.metrics.per_proc.iter().map(|p| p.wait).sum();
        assert_eq!(wait, r.stalls.wait);
        assert!(r.metrics.per_proc.iter().any(|p| p.network_wait > 0));
        assert!(r.metrics.per_proc.iter().all(|p| p.busy > 0));
    }

    #[test]
    fn split_phase_cycle_accounting_conserves() {
        let config = MachineConfig::cm5(2);
        let src = r#"
            shared int A[8]; shared int B[8];
            fn main() {
                int x; int y;
                if (MYPROC == 0) {
                    x = A[MYPROC + 4];
                    y = B[MYPROC + 5];
                    work(x + y);
                }
                barrier;
            }
        "#;
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let analysis = syncopt_core::analyze_for(&cfg, 2);
        for level in [
            syncopt_codegen::OptLevel::Pipelined,
            syncopt_codegen::OptLevel::OneWay,
            syncopt_codegen::OptLevel::Full,
        ] {
            let opt = syncopt_codegen::optimize(
                &cfg,
                &analysis,
                level,
                syncopt_codegen::DelayChoice::SyncRefined,
            );
            let r = simulate(&opt.cfg, &config).unwrap();
            assert_cycles_conserved(&r);
            let sync: u64 = r.metrics.per_proc.iter().map(|p| p.sync).sum();
            assert_eq!(sync, r.stalls.sync);
        }
    }

    #[test]
    fn latency_histogram_counts_remote_completions() {
        let src = "shared int X; fn main() { if (MYPROC == 1) { int v; v = X; X = v + 1; } }";
        let r = sim(src, 2);
        // One remote get reply plus one remote put ack, nothing local.
        assert_eq!(
            r.metrics.latency.count,
            r.net.get_replies + r.net.put_acks + r.net.store_requests
        );
        assert_eq!(r.metrics.latency.count, 2);
        // Each one-way leg is at least the network latency.
        let config = MachineConfig::cm5(2);
        assert!(r.metrics.latency.min >= config.network_latency);
    }

    #[test]
    fn local_accesses_record_no_latency() {
        let src = "shared int X; fn main() { if (MYPROC == 0) { int v; v = X; } }";
        let r = sim(src, 2);
        assert_eq!(r.metrics.latency.count, 0);
    }

    #[test]
    fn barrier_epochs_track_arrival_spread() {
        let src = r#"
            fn main() {
                work(MYPROC * 1000);
                barrier;
                barrier;
            }
        "#;
        let r = sim(src, 4);
        assert_eq!(r.metrics.barrier_epochs.len() as u64, r.net.barriers);
        assert_eq!(r.metrics.barrier_epochs.len(), 2);
        let first = &r.metrics.barrier_epochs[0];
        // Proc 0 arrives ~3000 cycles before proc 3.
        assert!(first.skew() >= 2000, "skew {}", first.skew());
        assert!(first.release > first.last_arrival);
        // Epochs are in completion order.
        assert!(r.metrics.barrier_epochs[1].release > first.release);
    }

    #[test]
    fn barrier_seqs_are_exposed_per_processor() {
        let src = "fn main() { barrier; barrier; }";
        let r = sim(src, 3);
        assert_eq!(r.barrier_seqs.len(), 3);
        assert!(r.barrier_seqs.iter().all(|s| s.len() == 2));
        assert!(r.barrier_seqs.iter().all(|s| s == &r.barrier_seqs[0]));
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let src = "fn main() { int i; i = 0; while (i < 1) { i = 0; } }";
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let mut config = MachineConfig::cm5(1);
        config.max_steps = 10_000;
        let err = simulate(&cfg, &config).unwrap_err();
        assert!(err.message().contains("max_steps"));
    }

    // ---- engine differential and work-counter tests ---------------------

    #[test]
    fn calendar_and_reference_heap_agree_bit_for_bit() {
        let cfg = lower_main(&prepare_program(MIXED_SRC).unwrap()).unwrap();
        for procs in [2, 8] {
            let config = MachineConfig::cm5(procs);
            let cal = simulate_configured(&cfg, &config, EngineKind::Calendar, SimOutputs::full())
                .unwrap();
            let heap =
                simulate_configured(&cfg, &config, EngineKind::ReferenceHeap, SimOutputs::full())
                    .unwrap();
            assert_observationally_equal(&cal, &heap);
            // Identical dispatch order means identical event traffic.
            assert_eq!(
                cal.metrics.work.events_scheduled,
                heap.metrics.work.events_scheduled
            );
            assert_eq!(
                cal.metrics.work.events_dequeued,
                heap.metrics.work.events_dequeued
            );
        }
    }

    #[test]
    fn calendar_cycle_loop_does_no_hashing() {
        let r = sim(MIXED_SRC, 8);
        assert_eq!(r.metrics.work.hash_lookups, 0);
        assert!(r.metrics.work.events_dequeued > 0);
        // The reference engine reports the historical hash traffic the
        // dense tables eliminated.
        let cfg = lower_main(&prepare_program(MIXED_SRC).unwrap()).unwrap();
        let heap = simulate_configured(
            &cfg,
            &MachineConfig::cm5(8),
            EngineKind::ReferenceHeap,
            SimOutputs::full(),
        )
        .unwrap();
        assert!(heap.metrics.work.hash_lookups > 0);
        assert!(heap.metrics.work.hash_lookups >= heap.metrics.work.events_dequeued / 2);
    }

    #[test]
    fn overflow_rung_preserves_order() {
        // Work deltas far beyond the wheel window force the overflow rung.
        let src = r#"
            shared int A[4]; flag F;
            fn main() {
                work(MYPROC * 100000);
                A[MYPROC] = MYPROC;
                barrier;
                if (MYPROC == 0) { post F; } else { wait F; }
                work(50000);
                barrier;
            }
        "#;
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let config = MachineConfig::cm5(4);
        let cal =
            simulate_configured(&cfg, &config, EngineKind::Calendar, SimOutputs::full()).unwrap();
        let heap =
            simulate_configured(&cfg, &config, EngineKind::ReferenceHeap, SimOutputs::full())
                .unwrap();
        assert!(
            cal.metrics.work.overflow_promotions > 0,
            "100k-cycle jumps must route through the overflow rung"
        );
        assert_observationally_equal(&cal, &heap);
    }

    #[test]
    fn arena_recycles_event_slots() {
        // A loop of remote traffic drains and refills the queue: steady
        // state must reuse freed slots instead of growing the arena.
        let src = r#"
            shared int X;
            fn main() {
                int i; int v;
                if (MYPROC == 1) {
                    for (i = 0; i < 50; i = i + 1) { v = X; }
                }
            }
        "#;
        let r = sim(src, 2);
        let w = r.metrics.work;
        assert!(
            w.arena_reuses > w.events_scheduled / 2,
            "steady state should recycle: {} reuses of {} scheduled",
            w.arena_reuses,
            w.events_scheduled
        );
    }

    #[test]
    fn waiter_scans_count_wakeups() {
        // Three waiters block on one flag before the post lands.
        let src = r#"
            flag F;
            fn main() {
                if (MYPROC == 0) { work(100000); post F; } else { wait F; }
            }
        "#;
        let r = sim(src, 4);
        assert!(
            r.metrics.work.waiter_scans >= 3,
            "three blocked waiters must be scanned: {}",
            r.metrics.work.waiter_scans
        );
    }

    #[test]
    fn lean_outputs_skip_extraction_but_not_timing() {
        let cfg = lower_main(&prepare_program(MIXED_SRC).unwrap()).unwrap();
        let config = MachineConfig::cm5(4);
        let full =
            simulate_configured(&cfg, &config, EngineKind::Calendar, SimOutputs::full()).unwrap();
        let lean =
            simulate_configured(&cfg, &config, EngineKind::Calendar, SimOutputs::lean()).unwrap();
        assert!(lean.memory.is_empty());
        assert!(lean.barrier_seqs.is_empty());
        assert!(!full.memory.is_empty());
        assert_eq!(full.exec_cycles, lean.exec_cycles);
        assert_eq!(full.proc_cycles, lean.proc_cycles);
        assert_eq!(full.net, lean.net);
        assert_eq!(full.barriers_aligned, lean.barriers_aligned);
    }

    #[test]
    fn default_entry_points_use_full_outputs() {
        assert_eq!(SimOutputs::default(), SimOutputs::full());
        assert_eq!(EngineKind::default(), EngineKind::Calendar);
    }
}
