//! Execution tracing: a timestamped record of the simulation's
//! communication and synchronization events, for debugging optimized
//! programs and for teaching (the `codegen_walkthrough` example uses it to
//! show overlap visually).
//!
//! Two layers share one [`Trace`] buffer:
//!
//! * the original **flat event list** ([`TraceEvent`]) — services,
//!   deliveries, barrier releases, finishes — still printed by
//!   `syncoptc run --trace`;
//! * the **structured timeline** — per-processor [`StateSpan`]s whose
//!   durations reproduce the `sim.per_proc` cycle accounting exactly,
//!   [`FlowSpan`]s linking each remote get/put/store initiation to its
//!   home service and reply delivery, [`LockSpan`]s covering lock-hold
//!   intervals, and [`BarrierSpan`]s covering barrier episodes — the
//!   data model behind the Chrome Trace Event export
//!   (`syncoptc trace`).
//!
//! Everything is recorded only when tracing is enabled (the simulator
//! holds an `Option<Trace>`), so `TraceLevel::Off` pays nothing.

use std::fmt;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time (cycles).
    pub time: u64,
    /// The processor the event belongs to (issuer for sends, receiver for
    /// deliveries, home for services).
    pub proc: u32,
    /// What happened.
    pub kind: TraceKind,
}

/// Event classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A request was serviced at its home node.
    Service {
        /// `"get"`, `"put"`, `"store"`, `"post"`, `"wait"`, `"lock"`,
        /// `"unlock"`.
        what: &'static str,
    },
    /// A reply/grant/notification was delivered to a processor.
    Deliver {
        /// `"data"`, `"ack"`, `"flag"`, `"grant"`.
        what: &'static str,
    },
    /// A barrier episode released all processors.
    BarrierRelease,
    /// A processor finished executing.
    Finished,
}

/// What a processor was doing over a [`StateSpan`] — one variant per
/// `ProcCycles` accounting category, so span durations and the per-proc
/// counters are two views of the same attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateKind {
    /// Executing instructions, injecting messages, stolen handler cycles.
    Busy,
    /// Blocked on a `sync_ctr` with outstanding split-phase operations.
    Sync,
    /// Blocked at a barrier rendezvous.
    Barrier,
    /// Blocked in `wait` for a flag.
    Wait,
    /// Blocked for a lock grant.
    Lock,
    /// Blocked for the round trip of a blocking remote access.
    NetworkWait,
    /// Finished while other processors were still running.
    Idle,
}

impl StateKind {
    /// The lowercase label used in the per-proc accounting and the trace
    /// export (`busy`, `sync`, `barrier`, `wait`, `lock`, `network_wait`,
    /// `idle`).
    pub fn label(self) -> &'static str {
        match self {
            StateKind::Busy => "busy",
            StateKind::Sync => "sync",
            StateKind::Barrier => "barrier",
            StateKind::Wait => "wait",
            StateKind::Lock => "lock",
            StateKind::NetworkWait => "network_wait",
            StateKind::Idle => "idle",
        }
    }
}

/// A half-open interval `[start, end)` during which `proc` was in one
/// accounting state. Adjacent same-state spans are coalesced on record,
/// so for each processor the spans of one state sum exactly to that
/// state's `ProcCycles` counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSpan {
    /// The processor.
    pub proc: u32,
    /// What it was doing.
    pub state: StateKind,
    /// First cycle of the interval.
    pub start: u64,
    /// One past the last cycle of the interval.
    pub end: u64,
}

impl StateSpan {
    /// The interval length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end - self.start
    }
}

/// The split-phase operation class of a [`FlowSpan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// A remote read: request → home service → data reply.
    Get,
    /// A remote write: request → home service → acknowledgment.
    Put,
    /// An unacknowledged one-way store: request → home service.
    Store,
}

impl FlowKind {
    /// The lowercase label (`get`, `put`, `store`).
    pub fn label(self) -> &'static str {
        match self {
            FlowKind::Get => "get",
            FlowKind::Put => "put",
            FlowKind::Store => "store",
        }
    }
}

/// The life of one remote split-phase message: initiated on `from` at
/// `issued`, serviced at the home memory at `service`, and (for gets and
/// puts) its reply delivered back to `from` at `delivered`. One-way
/// stores have no reply: `delivered` is `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSpan {
    /// Stable id in initiation-service order (deterministic across runs).
    pub id: u64,
    /// Operation class.
    pub kind: FlowKind,
    /// The issuing processor.
    pub from: u32,
    /// The home processor that serviced the request.
    pub home: u32,
    /// Cycle the request was injected on `from`.
    pub issued: u64,
    /// Cycle the home memory finished servicing the request.
    pub service: u64,
    /// Cycle the reply arrived back at `from` (`None` for stores).
    pub delivered: Option<u64>,
}

/// The interval during which a processor held a lock, from grant
/// delivery to the home servicing its unlock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSpan {
    /// The holding processor.
    pub proc: u32,
    /// Dense index of the lock variable.
    pub lock: u32,
    /// Cycle the grant was delivered.
    pub acquired: u64,
    /// Cycle the unlock was serviced at the home.
    pub released: u64,
}

/// One barrier episode, mirroring `BarrierEpoch` in the metrics layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierSpan {
    /// Cycle the first processor arrived.
    pub first_arrival: u64,
    /// Cycle the last processor arrived.
    pub last_arrival: u64,
    /// Cycle every processor was released.
    pub release: u64,
}

/// A bounded trace buffer (keeps the first `cap` events and the first
/// `cap` spans of each structured kind; everything past the cap is
/// counted, and [`Trace::truncated`] reports that the buffer clipped).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    cap: usize,
    dropped: u64,
    state_spans: Vec<StateSpan>,
    flow_spans: Vec<FlowSpan>,
    lock_spans: Vec<LockSpan>,
    barrier_spans: Vec<BarrierSpan>,
    spans_dropped: u64,
    next_flow_id: u64,
    /// Per-processor index of the last recorded state span, for
    /// coalescing adjacent same-state intervals.
    last_state: Vec<usize>,
}

const NO_SPAN: usize = usize::MAX;

impl Trace {
    /// A trace keeping at most `cap` events (and `cap` spans per
    /// structured kind).
    pub fn with_capacity(cap: usize) -> Self {
        Trace {
            events: Vec::new(),
            cap,
            dropped: 0,
            state_spans: Vec::new(),
            flow_spans: Vec::new(),
            lock_spans: Vec::new(),
            barrier_spans: Vec::new(),
            spans_dropped: 0,
            next_flow_id: 0,
            last_state: Vec::new(),
        }
    }

    /// Records an event (dropped silently past the cap, counted).
    pub fn record(&mut self, time: u64, proc: u32, kind: TraceKind) {
        if self.events.len() < self.cap {
            self.events.push(TraceEvent { time, proc, kind });
        } else {
            self.dropped += 1;
        }
    }

    /// Records that `proc` spent `[start, end)` in `state`. Zero-length
    /// intervals are ignored; an interval starting where the processor's
    /// previous same-state interval ended extends it in place, so span
    /// durations stay in exact correspondence with the cycle counters
    /// without one span per instruction.
    pub fn record_state(&mut self, proc: u32, state: StateKind, start: u64, end: u64) {
        if end <= start {
            return;
        }
        let pi = proc as usize;
        if pi >= self.last_state.len() {
            self.last_state.resize(pi + 1, NO_SPAN);
        }
        let last = self.last_state[pi];
        if last != NO_SPAN {
            let span = &mut self.state_spans[last];
            if span.state == state && span.end == start {
                span.end = end;
                return;
            }
        }
        if self.state_spans.len() < self.cap {
            self.last_state[pi] = self.state_spans.len();
            self.state_spans.push(StateSpan {
                proc,
                state,
                start,
                end,
            });
        } else {
            self.spans_dropped += 1;
        }
    }

    /// Records the life of one remote split-phase message and returns its
    /// stable id. Ids keep counting past the cap so they stay
    /// deterministic regardless of the buffer size.
    pub fn record_flow(
        &mut self,
        kind: FlowKind,
        from: u32,
        home: u32,
        issued: u64,
        service: u64,
        delivered: Option<u64>,
    ) -> u64 {
        let id = self.next_flow_id;
        self.next_flow_id += 1;
        if self.flow_spans.len() < self.cap {
            self.flow_spans.push(FlowSpan {
                id,
                kind,
                from,
                home,
                issued,
                service,
                delivered,
            });
        } else {
            self.spans_dropped += 1;
        }
        id
    }

    /// Records a lock-hold interval.
    pub fn record_lock(&mut self, proc: u32, lock: u32, acquired: u64, released: u64) {
        if self.lock_spans.len() < self.cap {
            self.lock_spans.push(LockSpan {
                proc,
                lock,
                acquired,
                released,
            });
        } else {
            self.spans_dropped += 1;
        }
    }

    /// Records a barrier episode.
    pub fn record_barrier(&mut self, first_arrival: u64, last_arrival: u64, release: u64) {
        if self.barrier_spans.len() < self.cap {
            self.barrier_spans.push(BarrierSpan {
                first_arrival,
                last_arrival,
                release,
            });
        } else {
            self.spans_dropped += 1;
        }
    }

    /// The recorded events, sorted by time (stable on ties).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = self.events.clone();
        out.sort_by_key(|e| e.time);
        out
    }

    /// The per-processor state timeline, in recording order (per
    /// processor this is increasing start time).
    pub fn state_spans(&self) -> &[StateSpan] {
        &self.state_spans
    }

    /// The message-flow spans, in home-service order.
    pub fn flow_spans(&self) -> &[FlowSpan] {
        &self.flow_spans
    }

    /// The lock-hold spans, in release order.
    pub fn lock_spans(&self) -> &[LockSpan] {
        &self.lock_spans
    }

    /// The barrier episodes, in release order.
    pub fn barrier_spans(&self) -> &[BarrierSpan] {
        &self.barrier_spans
    }

    /// Total cycles `proc` spent in `state` according to the recorded
    /// spans — the quantity that must equal the `ProcCycles` counter.
    pub fn state_cycles(&self, proc: u32, state: StateKind) -> u64 {
        self.state_spans
            .iter()
            .filter(|s| s.proc == proc && s.state == state)
            .map(StateSpan::cycles)
            .sum()
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Structured spans dropped because the buffer was full.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Whether anything (event or span) was clipped by the cap.
    pub fn truncated(&self) -> bool {
        self.dropped > 0 || self.spans_dropped > 0
    }

    /// Renders the whole trace, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        if self.dropped > 0 {
            out.push_str(&format!("... ({} events dropped)\n", self.dropped));
        }
        out
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TraceKind::Service { what } => {
                write!(f, "[{:>8}] p{:<3} service {what}", self.time, self.proc)
            }
            TraceKind::Deliver { what } => {
                write!(f, "[{:>8}] p{:<3} deliver {what}", self.time, self.proc)
            }
            TraceKind::BarrierRelease => {
                write!(f, "[{:>8}] ---  barrier release", self.time)
            }
            TraceKind::Finished => {
                write!(f, "[{:>8}] p{:<3} finished", self.time, self.proc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sorts() {
        let mut t = Trace::with_capacity(10);
        t.record(5, 1, TraceKind::Finished);
        t.record(2, 0, TraceKind::Service { what: "get" });
        let ev = t.events();
        assert_eq!(ev[0].time, 2);
        assert_eq!(ev[1].time, 5);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn caps_and_counts_drops() {
        let mut t = Trace::with_capacity(1);
        t.record(1, 0, TraceKind::BarrierRelease);
        t.record(2, 0, TraceKind::BarrierRelease);
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.dropped(), 1);
        assert!(t.render().contains("dropped"));
        assert!(t.truncated());
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent {
            time: 42,
            proc: 3,
            kind: TraceKind::Deliver { what: "data" },
        };
        let s = e.to_string();
        assert!(
            s.contains("42") && s.contains("p3") && s.contains("data"),
            "{s}"
        );
    }

    #[test]
    fn state_spans_coalesce_adjacent_same_state() {
        let mut t = Trace::with_capacity(100);
        t.record_state(0, StateKind::Busy, 0, 5);
        t.record_state(0, StateKind::Busy, 5, 9);
        t.record_state(1, StateKind::Busy, 0, 3); // other proc: no merge
        t.record_state(0, StateKind::Wait, 9, 12);
        t.record_state(0, StateKind::Busy, 12, 13); // gap in state: new span
        assert_eq!(t.state_spans().len(), 4);
        assert_eq!(t.state_spans()[0].end, 9);
        assert_eq!(t.state_cycles(0, StateKind::Busy), 10);
        assert_eq!(t.state_cycles(0, StateKind::Wait), 3);
        assert_eq!(t.state_cycles(1, StateKind::Busy), 3);
    }

    #[test]
    fn zero_length_state_spans_are_ignored() {
        let mut t = Trace::with_capacity(100);
        t.record_state(0, StateKind::Busy, 4, 4);
        assert!(t.state_spans().is_empty());
        assert!(!t.truncated());
    }

    #[test]
    fn flow_ids_stay_deterministic_past_cap() {
        let mut t = Trace::with_capacity(1);
        let a = t.record_flow(FlowKind::Get, 0, 1, 0, 10, Some(15));
        let b = t.record_flow(FlowKind::Store, 1, 0, 2, 12, None);
        assert_eq!((a, b), (0, 1));
        assert_eq!(t.flow_spans().len(), 1);
        assert_eq!(t.spans_dropped(), 1);
        assert!(t.truncated());
    }

    #[test]
    fn lock_and_barrier_spans_record() {
        let mut t = Trace::with_capacity(8);
        t.record_lock(2, 0, 10, 40);
        t.record_barrier(5, 9, 20);
        assert_eq!(t.lock_spans()[0].released, 40);
        assert_eq!(t.barrier_spans()[0].release, 20);
    }

    #[test]
    fn state_labels_match_accounting_fields() {
        for (k, label) in [
            (StateKind::Busy, "busy"),
            (StateKind::Sync, "sync"),
            (StateKind::Barrier, "barrier"),
            (StateKind::Wait, "wait"),
            (StateKind::Lock, "lock"),
            (StateKind::NetworkWait, "network_wait"),
            (StateKind::Idle, "idle"),
        ] {
            assert_eq!(k.label(), label);
        }
        assert_eq!(FlowKind::Get.label(), "get");
        assert_eq!(FlowKind::Put.label(), "put");
        assert_eq!(FlowKind::Store.label(), "store");
    }
}
