//! Execution tracing: a timestamped record of the simulation's
//! communication and synchronization events, for debugging optimized
//! programs and for teaching (the `codegen_walkthrough` example uses it to
//! show overlap visually).

use std::fmt;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time (cycles).
    pub time: u64,
    /// The processor the event belongs to (issuer for sends, receiver for
    /// deliveries, home for services).
    pub proc: u32,
    /// What happened.
    pub kind: TraceKind,
}

/// Event classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A request was serviced at its home node.
    Service {
        /// `"get"`, `"put"`, `"store"`, `"post"`, `"wait"`, `"lock"`,
        /// `"unlock"`.
        what: &'static str,
    },
    /// A reply/grant/notification was delivered to a processor.
    Deliver {
        /// `"data"`, `"ack"`, `"flag"`, `"grant"`.
        what: &'static str,
    },
    /// A barrier episode released all processors.
    BarrierRelease,
    /// A processor finished executing.
    Finished,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TraceKind::Service { what } => {
                write!(f, "[{:>8}] p{:<3} service {what}", self.time, self.proc)
            }
            TraceKind::Deliver { what } => {
                write!(f, "[{:>8}] p{:<3} deliver {what}", self.time, self.proc)
            }
            TraceKind::BarrierRelease => {
                write!(f, "[{:>8}] ---  barrier release", self.time)
            }
            TraceKind::Finished => {
                write!(f, "[{:>8}] p{:<3} finished", self.time, self.proc)
            }
        }
    }
}

/// A bounded trace buffer (keeps the first `cap` events).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl Trace {
    /// A trace keeping at most `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        Trace {
            events: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    /// Records an event (dropped silently past the cap, counted).
    pub fn record(&mut self, time: u64, proc: u32, kind: TraceKind) {
        if self.events.len() < self.cap {
            self.events.push(TraceEvent { time, proc, kind });
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, sorted by time (stable on ties).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = self.events.clone();
        out.sort_by_key(|e| e.time);
        out
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the whole trace, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        if self.dropped > 0 {
            out.push_str(&format!("... ({} events dropped)\n", self.dropped));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sorts() {
        let mut t = Trace::with_capacity(10);
        t.record(5, 1, TraceKind::Finished);
        t.record(2, 0, TraceKind::Service { what: "get" });
        let ev = t.events();
        assert_eq!(ev[0].time, 2);
        assert_eq!(ev[1].time, 5);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn caps_and_counts_drops() {
        let mut t = Trace::with_capacity(1);
        t.record(1, 0, TraceKind::BarrierRelease);
        t.record(2, 0, TraceKind::BarrierRelease);
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.dropped(), 1);
        assert!(t.render().contains("dropped"));
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent {
            time: 42,
            proc: 3,
            kind: TraceKind::Deliver { what: "data" },
        };
        let s = e.to_string();
        assert!(
            s.contains("42") && s.contains("p3") && s.contains("data"),
            "{s}"
        );
    }
}
