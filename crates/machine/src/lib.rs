#![warn(missing_docs)]

//! Deterministic simulator of a distributed-memory multiprocessor with a
//! global address space — the execution substrate for the PLDI'95
//! reproduction.
//!
//! The paper evaluated on a 64-processor CM-5 (with T3D and DASH latency
//! figures in its Table 1); this crate provides the synthetic equivalent: a
//! discrete-event machine ([`sim`]) whose cost parameters ([`config`])
//! reproduce those latencies, and whose operations mirror Split-C's
//! blocking accesses, split-phase `get`/`put` with synchronizing counters,
//! one-way `store`s, barriers, post/wait events, and queueing locks.
//!
//! [`litmus`] additionally implements a small-model **sequential-consistency
//! explorer** used to validate delay sets: it enumerates the weak-memory
//! outcomes a machine may produce under a given delay set and compares them
//! with the sequentially consistent outcomes.
//!
//! # Example
//!
//! ```
//! use syncopt_frontend::prepare_program;
//! use syncopt_ir::lower::lower_main;
//! use syncopt_machine::{simulate, MachineConfig};
//!
//! let src = r#"
//!     shared int A[8];
//!     fn main() { A[MYPROC] = MYPROC; barrier; }
//! "#;
//! let cfg = lower_main(&prepare_program(src)?)?;
//! let result = simulate(&cfg, &MachineConfig::cm5(8))?;
//! assert!(result.barriers_aligned);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod config;
pub mod litmus;
pub mod memory;
pub mod metrics;
pub mod shard;
pub mod sim;
pub mod trace;
pub mod value;

pub use config::MachineConfig;
pub use memory::{Location, SharedMemory};
pub use metrics::{BarrierEpoch, LatencyHistogram, ProcCycles, ShardStats, SimMetrics, SimWork};
pub use shard::{simulate_sharded, simulate_sharded_with, ShardPartition};
pub use sim::{
    simulate, simulate_configured, simulate_traced, EngineKind, NetStats, SimOutputs, SimResult,
    StallStats,
};
pub use trace::{
    BarrierSpan, FlowKind, FlowSpan, LockSpan, StateKind, StateSpan, Trace, TraceEvent, TraceKind,
};
pub use value::{SimError, Value};
