//! Small-model sequential-consistency checking ("litmus mode").
//!
//! This module validates delay sets operationally, the way Figure 1 of the
//! paper motivates them. For a small program it enumerates every **weak**
//! execution a machine may produce when only the delay set (plus
//! per-processor same-location order and blocking synchronization) is
//! enforced, and every **sequentially consistent** execution (program order
//! fully enforced). A delay set is SC-preserving on the program iff the
//! weak outcomes are a subset of the SC outcomes.
//!
//! The model: each processor *issues* its operations in program order —
//! blocking operations (`wait`, `barrier`) stall issue — but an issued
//! operation's *commit* (its globally visible effect) may be delayed
//! arbitrarily, subject to the constraint edges. This captures write
//! buffers, network reordering, and outstanding split-phase operations.
//!
//! Supported programs: loop-free control flow decided by `MYPROC`/`PROCS`
//! only (or loops with processor-independent bounds), integer shared data,
//! write values independent of read results, `post`/`wait`/`barrier`
//! synchronization. Locks are not supported (mutual exclusion has no
//! single-commit formulation in this model).
//!
//! An *outcome* is the vector of values returned by the program's shared
//! reads, ordered by (processor, trace position).

use crate::memory::Location;
use crate::value::{SimError, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use syncopt_core::DelaySet;
use syncopt_frontend::ast::{BinOp, UnOp};
use syncopt_ir::cfg::{Cfg, Instr, Terminator};
use syncopt_ir::expr::Expr;
use syncopt_ir::ids::{AccessId, VarId};

/// One operation in a processor's extracted trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// Shared read; its returned value is part of the outcome.
    Read {
        /// Which location.
        loc: Location,
        /// Originating access site.
        access: AccessId,
    },
    /// Shared write of a known integer.
    Write {
        /// Which location.
        loc: Location,
        /// Value written.
        val: i64,
        /// Originating access site.
        access: AccessId,
    },
    /// Event post.
    Post {
        /// Which event.
        loc: Location,
        /// Originating access site.
        access: AccessId,
    },
    /// Event wait (blocking).
    Wait {
        /// Which event.
        loc: Location,
        /// Originating access site.
        access: AccessId,
    },
    /// Global barrier (blocking; episodes match by per-processor count).
    Barrier {
        /// Originating access site.
        access: AccessId,
    },
}

impl TraceOp {
    fn access(&self) -> AccessId {
        match self {
            TraceOp::Read { access, .. }
            | TraceOp::Write { access, .. }
            | TraceOp::Post { access, .. }
            | TraceOp::Wait { access, .. }
            | TraceOp::Barrier { access } => *access,
        }
    }

    fn is_blocking(&self) -> bool {
        matches!(self, TraceOp::Wait { .. } | TraceOp::Barrier { .. })
    }

    fn data_loc(&self) -> Option<Location> {
        match self {
            TraceOp::Read { loc, .. } | TraceOp::Write { loc, .. } => Some(*loc),
            _ => None,
        }
    }
}

/// Extracts each processor's operation trace by symbolic local execution.
///
/// # Errors
///
/// Fails if the program's control flow or written values depend on values
/// read from shared memory, if it uses locks or split-phase operations, or
/// if traces exceed the internal step limit.
pub fn extract_traces(cfg: &Cfg, procs: u32) -> Result<Vec<Vec<TraceOp>>, SimError> {
    (0..procs).map(|p| extract_one(cfg, p, procs)).collect()
}

fn extract_one(cfg: &Cfg, myproc: u32, procs: u32) -> Result<Vec<TraceOp>, SimError> {
    let mut locals: HashMap<VarId, Option<Value>> = HashMap::new();
    let mut trace = Vec::new();
    let mut block = cfg.entry;
    let mut idx = 0usize;
    let mut steps = 0u64;
    loop {
        steps += 1;
        if steps > 100_000 {
            return Err(SimError::new("litmus trace extraction exceeded step limit"));
        }
        let instrs = &cfg.block(block).instrs;
        if idx >= instrs.len() {
            match &cfg.block(block).term {
                Terminator::Goto(t) => {
                    block = *t;
                    idx = 0;
                }
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let v = sym_eval(cond, &locals, myproc, procs).ok_or_else(|| {
                        SimError::new("litmus: branch condition depends on a shared read")
                    })?;
                    block = if v.as_bool()? { *then_bb } else { *else_bb };
                    idx = 0;
                }
                Terminator::Return => return Ok(trace),
            }
            continue;
        }
        let instr = &instrs[idx];
        idx += 1;
        match instr {
            Instr::GetShared { access, dst, src } => {
                let loc = resolve_sym(src, &locals, myproc, procs)?;
                trace.push(TraceOp::Read {
                    loc,
                    access: *access,
                });
                locals.insert(*dst, None);
            }
            Instr::PutShared { access, dst, src } => {
                let loc = resolve_sym(dst, &locals, myproc, procs)?;
                let val = sym_eval(src, &locals, myproc, procs)
                    .ok_or_else(|| SimError::new("litmus: written value depends on a shared read"))?
                    .as_int()?;
                trace.push(TraceOp::Write {
                    loc,
                    val,
                    access: *access,
                });
            }
            Instr::AssignLocal { dst, value } => {
                let v = sym_eval(value, &locals, myproc, procs);
                locals.insert(*dst, v);
            }
            Instr::AssignLocalElem { .. } => {
                return Err(SimError::new("litmus: local arrays are not supported"));
            }
            Instr::Work { .. } => {}
            Instr::Post {
                access,
                flag,
                index,
            } => {
                let loc = resolve_flag_sym(*flag, index.as_ref(), &locals, myproc, procs)?;
                trace.push(TraceOp::Post {
                    loc,
                    access: *access,
                });
            }
            Instr::Wait {
                access,
                flag,
                index,
            } => {
                let loc = resolve_flag_sym(*flag, index.as_ref(), &locals, myproc, procs)?;
                trace.push(TraceOp::Wait {
                    loc,
                    access: *access,
                });
            }
            Instr::Barrier { access } => {
                trace.push(TraceOp::Barrier { access: *access });
            }
            Instr::LockAcq { .. } | Instr::LockRel { .. } => {
                return Err(SimError::new("litmus: locks are not supported"));
            }
            Instr::GetInit { .. }
            | Instr::PutInit { .. }
            | Instr::StoreInit { .. }
            | Instr::SyncCtr { .. } => {
                return Err(SimError::new(
                    "litmus runs on the source CFG (blocking accesses only)",
                ));
            }
        }
    }
}

fn sym_eval(
    expr: &Expr,
    locals: &HashMap<VarId, Option<Value>>,
    myproc: u32,
    procs: u32,
) -> Option<Value> {
    match expr {
        Expr::Int(v) => Some(Value::Int(*v)),
        Expr::Float(v) => Some(Value::Double(*v)),
        Expr::Bool(v) => Some(Value::Bool(*v)),
        Expr::MyProc => Some(Value::Int(myproc as i64)),
        Expr::Procs => Some(Value::Int(procs as i64)),
        Expr::Local(v) => locals
            .get(v)
            .copied()
            .unwrap_or(Some(Value::Int(0)))?
            .into(),
        Expr::LocalElem { .. } => None,
        Expr::Unary { op, expr } => {
            let v = sym_eval(expr, locals, myproc, procs)?;
            match (op, v) {
                (UnOp::Neg, Value::Int(i)) => Some(Value::Int(-i)),
                (UnOp::Neg, Value::Double(d)) => Some(Value::Double(-d)),
                (UnOp::Not, Value::Bool(b)) => Some(Value::Bool(!b)),
                _ => None,
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = sym_eval(lhs, locals, myproc, procs)?;
            let r = sym_eval(rhs, locals, myproc, procs)?;
            sym_binop(*op, l, r)
        }
    }
}

fn sym_binop(op: BinOp, l: Value, r: Value) -> Option<Value> {
    use BinOp::*;
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Some(match op {
            Add => Value::Int(a.wrapping_add(b)),
            Sub => Value::Int(a.wrapping_sub(b)),
            Mul => Value::Int(a.wrapping_mul(b)),
            Div => Value::Int(a.checked_div(b)?),
            Rem => {
                if b == 0 {
                    return None;
                }
                Value::Int(a.rem_euclid(b))
            }
            Eq => Value::Bool(a == b),
            Ne => Value::Bool(a != b),
            Lt => Value::Bool(a < b),
            Le => Value::Bool(a <= b),
            Gt => Value::Bool(a > b),
            Ge => Value::Bool(a >= b),
            And | Or => return None,
        }),
        (Value::Bool(a), Value::Bool(b)) => Some(match op {
            And => Value::Bool(a && b),
            Or => Value::Bool(a || b),
            Eq => Value::Bool(a == b),
            Ne => Value::Bool(a != b),
            _ => return None,
        }),
        _ => None,
    }
}

fn resolve_sym(
    sref: &syncopt_ir::expr::SharedRef,
    locals: &HashMap<VarId, Option<Value>>,
    myproc: u32,
    procs: u32,
) -> Result<Location, SimError> {
    let index = match &sref.index {
        Some(e) => {
            let v = sym_eval(e, locals, myproc, procs)
                .ok_or_else(|| SimError::new("litmus: shared index depends on a shared read"))?
                .as_int()?;
            u64::try_from(v).map_err(|_| SimError::new("litmus: negative shared index"))?
        }
        None => 0,
    };
    Ok(Location {
        var: sref.var,
        index,
    })
}

fn resolve_flag_sym(
    flag: VarId,
    index: Option<&Expr>,
    locals: &HashMap<VarId, Option<Value>>,
    myproc: u32,
    procs: u32,
) -> Result<Location, SimError> {
    let index = match index {
        Some(e) => {
            let v = sym_eval(e, locals, myproc, procs)
                .ok_or_else(|| SimError::new("litmus: flag index depends on a shared read"))?
                .as_int()?;
            u64::try_from(v).map_err(|_| SimError::new("litmus: negative flag index"))?
        }
        None => 0,
    };
    Ok(Location { var: flag, index })
}

/// An outcome: the values returned by every shared read, in
/// (processor, trace-position) order.
pub type Outcome = Vec<i64>;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ExploreState {
    committed: Vec<u64>, // bitmask per processor
    memory: BTreeMap<Location, i64>,
    flags: BTreeSet<Location>,
    reads: BTreeMap<(u32, u32), i64>,
}

struct Explorer<'a> {
    traces: &'a [Vec<TraceOp>],
    delay: Option<&'a DelaySet>, // None ⇒ SC (full program order)
    outcomes: BTreeSet<Outcome>,
    visited: HashSet<ExploreState>,
    state_cap: usize,
}

/// Enumerates the outcomes a weak machine may produce when exactly `delay`
/// (plus same-location per-processor order and blocking synchronization) is
/// enforced.
///
/// # Errors
///
/// Fails when trace extraction fails ([`extract_traces`]), a processor has
/// more than 64 trace operations, barrier counts mismatch, or the state
/// space exceeds the internal cap.
pub fn weak_outcomes(
    cfg: &Cfg,
    delay: &DelaySet,
    procs: u32,
) -> Result<BTreeSet<Outcome>, SimError> {
    let traces = extract_traces(cfg, procs)?;
    explore(&traces, Some(delay))
}

/// Enumerates the sequentially consistent outcomes (full program order).
///
/// # Errors
///
/// Same failure modes as [`weak_outcomes`].
pub fn sc_outcomes(cfg: &Cfg, procs: u32) -> Result<BTreeSet<Outcome>, SimError> {
    let traces = extract_traces(cfg, procs)?;
    explore(&traces, None)
}

/// Does enforcing `delay` keep every weak outcome sequentially consistent?
///
/// # Errors
///
/// Same failure modes as [`weak_outcomes`].
pub fn is_sc_preserving(cfg: &Cfg, delay: &DelaySet, procs: u32) -> Result<bool, SimError> {
    let weak = weak_outcomes(cfg, delay, procs)?;
    let sc = sc_outcomes(cfg, procs)?;
    Ok(weak.is_subset(&sc))
}

/// Monte-Carlo variant of [`weak_outcomes`] for programs too large to
/// enumerate exhaustively: performs `runs` random walks through the
/// commit nondeterminism (seeded, so reproducible) and returns the
/// outcomes observed. Always a **subset** of the exhaustive set.
///
/// # Errors
///
/// Same failure modes as [`weak_outcomes`] except the state-space cap
/// (sampling never explodes).
pub fn sample_weak_outcomes(
    cfg: &Cfg,
    delay: &DelaySet,
    procs: u32,
    runs: u32,
    seed: u64,
) -> Result<BTreeSet<Outcome>, SimError> {
    let traces = extract_traces(cfg, procs)?;
    for t in &traces {
        if t.len() > 64 {
            return Err(SimError::new("litmus: trace longer than 64 operations"));
        }
    }
    let ex = Explorer {
        traces: &traces,
        delay: Some(delay),
        outcomes: BTreeSet::new(),
        visited: HashSet::new(),
        state_cap: usize::MAX,
    };
    let mut rng = SplitMix64::new(seed);
    let mut outcomes = BTreeSet::new();
    for _ in 0..runs {
        let mut state = ExploreState {
            committed: vec![0; traces.len()],
            memory: BTreeMap::new(),
            flags: BTreeSet::new(),
            reads: BTreeMap::new(),
        };
        loop {
            // Enumerate the enabled commits.
            let mut moves: Vec<(usize, usize)> = Vec::new();
            for (p, trace) in traces.iter().enumerate() {
                for (i, op) in trace.iter().enumerate() {
                    if !ex.committable(&state, p, i) {
                        continue;
                    }
                    match op {
                        TraceOp::Barrier { .. } => continue,
                        TraceOp::Wait { loc, .. } if !state.flags.contains(loc) => continue,
                        _ => moves.push((p, i)),
                    }
                }
            }
            let episode = ex.barrier_episode(&state);
            let total = moves.len() + usize::from(episode.is_some());
            if total == 0 {
                break;
            }
            let pick = rng.below(total);
            if pick == moves.len() {
                for (p, i) in episode.expect("episode exists when picked") {
                    state.committed[p] |= 1 << i;
                }
                continue;
            }
            let (p, i) = moves[pick];
            state.committed[p] |= 1 << i;
            match &traces[p][i] {
                TraceOp::Read { loc, .. } => {
                    let v = *state.memory.get(loc).unwrap_or(&0);
                    state.reads.insert((p as u32, i as u32), v);
                }
                TraceOp::Write { loc, val, .. } => {
                    state.memory.insert(*loc, *val);
                }
                TraceOp::Post { loc, .. } => {
                    state.flags.insert(*loc);
                }
                TraceOp::Wait { .. } => {}
                TraceOp::Barrier { .. } => unreachable!(),
            }
        }
        if ex.all_committed(&state) {
            outcomes.insert(state.reads.values().copied().collect());
        }
    }
    Ok(outcomes)
}

/// Seeded PRNG (SplitMix64) so the Monte-Carlo walk needs no external
/// crates and stays reproducible across platforms.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` via Lemire's multiply-shift reduction
    /// (the tiny modulo bias is irrelevant for sampling walks).
    fn below(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

fn explore(
    traces: &[Vec<TraceOp>],
    delay: Option<&DelaySet>,
) -> Result<BTreeSet<Outcome>, SimError> {
    for t in traces {
        if t.len() > 64 {
            return Err(SimError::new("litmus: trace longer than 64 operations"));
        }
    }
    let barrier_counts: Vec<usize> = traces
        .iter()
        .map(|t| {
            t.iter()
                .filter(|o| matches!(o, TraceOp::Barrier { .. }))
                .count()
        })
        .collect();
    if barrier_counts.iter().any(|&c| c != barrier_counts[0]) {
        return Err(SimError::new(
            "litmus: processors execute different numbers of barriers",
        ));
    }
    let mut ex = Explorer {
        traces,
        delay,
        outcomes: BTreeSet::new(),
        visited: HashSet::new(),
        state_cap: 2_000_000,
    };
    let init = ExploreState {
        committed: vec![0; traces.len()],
        memory: BTreeMap::new(),
        flags: BTreeSet::new(),
        reads: BTreeMap::new(),
    };
    ex.dfs(init)?;
    Ok(ex.outcomes)
}

impl<'a> Explorer<'a> {
    fn dfs(&mut self, state: ExploreState) -> Result<(), SimError> {
        if self.visited.contains(&state) {
            return Ok(());
        }
        if self.visited.len() >= self.state_cap {
            return Err(SimError::new("litmus: state space exceeded cap"));
        }
        self.visited.insert(state.clone());

        let mut progressed = false;

        // Individual (non-barrier) commits.
        for (p, trace) in self.traces.iter().enumerate() {
            for (i, op) in trace.iter().enumerate() {
                if !self.committable(&state, p, i) {
                    continue;
                }
                match op {
                    TraceOp::Barrier { .. } => continue, // handled below
                    TraceOp::Wait { loc, .. } if !state.flags.contains(loc) => {
                        continue;
                    }
                    _ => {}
                }
                progressed = true;
                let mut next = state.clone();
                next.committed[p] |= 1 << i;
                match op {
                    TraceOp::Read { loc, .. } => {
                        let v = *next.memory.get(loc).unwrap_or(&0);
                        next.reads.insert((p as u32, i as u32), v);
                    }
                    TraceOp::Write { loc, val, .. } => {
                        next.memory.insert(*loc, *val);
                    }
                    TraceOp::Post { loc, .. } => {
                        next.flags.insert(*loc);
                    }
                    TraceOp::Wait { .. } => {}
                    TraceOp::Barrier { .. } => unreachable!(),
                }
                self.dfs(next)?;
            }
        }

        // Barrier episode: the next barrier of every processor commits
        // together when each is individually committable.
        if let Some(episode) = self.barrier_episode(&state) {
            progressed = true;
            let mut next = state.clone();
            for (p, i) in episode {
                next.committed[p] |= 1 << i;
            }
            self.dfs(next)?;
        }

        if !progressed && self.all_committed(&state) {
            let outcome: Outcome = state.reads.values().copied().collect();
            self.outcomes.insert(outcome);
        }
        // Otherwise: deadlock along this path (e.g. wait with no
        // matching post). Such executions produce no outcome.
        Ok(())
    }

    fn all_committed(&self, state: &ExploreState) -> bool {
        self.traces
            .iter()
            .enumerate()
            .all(|(p, t)| state.committed[p].count_ones() as usize == t.len())
    }

    /// Whether op `i` of proc `p` may commit now (ignoring flag state and
    /// barrier episodes).
    fn committable(&self, state: &ExploreState, p: usize, i: usize) -> bool {
        let mask = state.committed[p];
        if mask & (1 << i) != 0 {
            return false;
        }
        let trace = &self.traces[p];
        let op = &trace[i];
        for (j, earlier) in trace.iter().enumerate().take(i) {
            let committed = mask & (1 << j) != 0;
            if committed {
                continue;
            }
            // SC mode: every earlier op is a predecessor.
            if self.delay.is_none() {
                return false;
            }
            // Issue order: an uncommitted *blocking* op stalls everything
            // after it.
            if earlier.is_blocking() {
                return false;
            }
            // Same-location per-processor order (uniprocessor dependence).
            if let (Some(l1), Some(l2)) = (earlier.data_loc(), op.data_loc()) {
                let write_involved =
                    matches!(earlier, TraceOp::Write { .. }) || matches!(op, TraceOp::Write { .. });
                if l1 == l2 && write_involved {
                    return false;
                }
            }
            // Delay edges (site-level, applied to instances in order).
            if let Some(d) = self.delay {
                if d.contains(earlier.access(), op.access()) {
                    return false;
                }
            }
        }
        true
    }

    /// The next barrier episode if every processor's next barrier is
    /// committable.
    fn barrier_episode(&self, state: &ExploreState) -> Option<Vec<(usize, usize)>> {
        let mut episode = Vec::with_capacity(self.traces.len());
        for (p, trace) in self.traces.iter().enumerate() {
            // First uncommitted barrier of p.
            let i = trace.iter().enumerate().position(|(i, op)| {
                matches!(op, TraceOp::Barrier { .. }) && state.committed[p] & (1 << i) == 0
            })?;
            if !self.committable(state, p, i) {
                return None;
            }
            episode.push((p, i));
        }
        Some(episode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_core::{analyze, DelaySet};
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    const FIGURE1: &str = r#"
        shared int Data; shared int Flag;
        fn main() {
            int v; int w;
            if (MYPROC == 0) { Data = 1; Flag = 1; }
            else { v = Flag; w = Data; }
        }
    "#;

    fn cfg_of(src: &str) -> Cfg {
        lower_main(&prepare_program(src).unwrap()).unwrap()
    }

    #[test]
    fn traces_are_extracted_per_processor() {
        let cfg = cfg_of(FIGURE1);
        let traces = extract_traces(&cfg, 2).unwrap();
        assert_eq!(traces[0].len(), 2, "writer: two writes");
        assert_eq!(traces[1].len(), 2, "reader: two reads");
        assert!(matches!(traces[0][0], TraceOp::Write { val: 1, .. }));
        assert!(matches!(traces[1][0], TraceOp::Read { .. }));
    }

    #[test]
    fn figure1_sc_outcomes_exclude_flag1_data0() {
        let cfg = cfg_of(FIGURE1);
        let sc = sc_outcomes(&cfg, 2).unwrap();
        // Outcomes are (read Flag, read Data).
        assert!(sc.contains(&vec![0, 0]));
        assert!(sc.contains(&vec![0, 1]));
        assert!(sc.contains(&vec![1, 1]));
        assert!(
            !sc.contains(&vec![1, 0]),
            "Flag=1 ⇒ Data=1 under SC: {sc:?}"
        );
    }

    #[test]
    fn figure1_empty_delay_set_violates_sc() {
        let cfg = cfg_of(FIGURE1);
        let empty = DelaySet::new(cfg.accesses.len());
        let weak = weak_outcomes(&cfg, &empty, 2).unwrap();
        assert!(
            weak.contains(&vec![1, 0]),
            "without delays the figure-eight outcome appears: {weak:?}"
        );
        assert!(!is_sc_preserving(&cfg, &empty, 2).unwrap());
    }

    #[test]
    fn figure1_computed_delay_sets_preserve_sc() {
        let cfg = cfg_of(FIGURE1);
        let analysis = analyze(&cfg);
        assert!(is_sc_preserving(&cfg, &analysis.delay_ss, 2).unwrap());
        assert!(is_sc_preserving(&cfg, &analysis.delay_sync, 2).unwrap());
    }

    #[test]
    fn postwait_program_is_sc_with_refined_delays() {
        let src = r#"
            shared int X; shared int Y; flag F;
            fn main() {
                int v; int w;
                if (MYPROC == 0) { X = 1; Y = 2; post F; }
                else { wait F; v = Y; w = X; }
            }
        "#;
        let cfg = cfg_of(src);
        let analysis = analyze(&cfg);
        // The refined set allows the writes (and reads) to overlap...
        let wx = cfg.accesses.ids().next().unwrap();
        let wy = cfg.accesses.ids().nth(1).unwrap();
        assert!(!analysis.delay_sync.contains(wx, wy));
        // ...and it is still SC-preserving.
        assert!(is_sc_preserving(&cfg, &analysis.delay_sync, 2).unwrap());
        // The post-wait protection means the reader always sees both
        // values.
        let weak = weak_outcomes(&cfg, &analysis.delay_sync, 2).unwrap();
        assert_eq!(weak, BTreeSet::from([vec![2, 1]]), "{weak:?}");
    }

    #[test]
    fn barrier_program_is_sc_with_refined_delays() {
        let src = r#"
            shared int A[2];
            fn main() {
                int v;
                A[MYPROC] = MYPROC + 10;
                barrier;
                v = A[(MYPROC + 1) % PROCS];
            }
        "#;
        let cfg = cfg_of(src);
        let analysis = analyze(&cfg);
        assert!(is_sc_preserving(&cfg, &analysis.delay_sync, 2).unwrap());
        let weak = weak_outcomes(&cfg, &analysis.delay_sync, 2).unwrap();
        // Both readers must see their neighbor's barrier-protected write.
        assert_eq!(weak, BTreeSet::from([vec![11, 10]]), "{weak:?}");
    }

    #[test]
    fn dekker_store_buffering_needs_delays() {
        // The classic store-buffer litmus: without delays both reads may
        // return 0.
        let src = r#"
            shared int X; shared int Y;
            fn main() {
                int v;
                if (MYPROC == 0) { X = 1; v = Y; }
                else { Y = 1; v = X; }
            }
        "#;
        let cfg = cfg_of(src);
        let empty = DelaySet::new(cfg.accesses.len());
        let weak = weak_outcomes(&cfg, &empty, 2).unwrap();
        assert!(weak.contains(&vec![0, 0]), "{weak:?}");
        let sc = sc_outcomes(&cfg, 2).unwrap();
        assert!(!sc.contains(&vec![0, 0]), "{sc:?}");
        // Shasha–Snir fixes it.
        let analysis = analyze(&cfg);
        assert!(is_sc_preserving(&cfg, &analysis.delay_ss, 2).unwrap());
    }

    #[test]
    fn sampling_is_a_subset_of_exhaustive_and_finds_violations() {
        let cfg = cfg_of(FIGURE1);
        let empty = DelaySet::new(cfg.accesses.len());
        let exhaustive = weak_outcomes(&cfg, &empty, 2).unwrap();
        let sampled = sample_weak_outcomes(&cfg, &empty, 2, 400, 0xfeed).unwrap();
        assert!(sampled.is_subset(&exhaustive));
        // With 400 seeded walks over a 4-op program the violating outcome
        // shows up.
        assert!(sampled.contains(&vec![1, 0]), "{sampled:?}");
        // Reproducible.
        let again = sample_weak_outcomes(&cfg, &empty, 2, 400, 0xfeed).unwrap();
        assert_eq!(sampled, again);
        // Under the computed delays the sample respects SC too.
        let analysis = analyze(&cfg);
        let safe = sample_weak_outcomes(&cfg, &analysis.delay_ss, 2, 400, 7).unwrap();
        let sc = sc_outcomes(&cfg, 2).unwrap();
        assert!(safe.is_subset(&sc), "{safe:?}");
    }

    #[test]
    fn unsupported_programs_error_cleanly() {
        // Value depends on a read.
        let cfg = cfg_of("shared int X; shared int Y; fn main() { int v; v = X; Y = v; }");
        assert!(extract_traces(&cfg, 2).is_err());
        // Locks.
        let cfg = cfg_of("lock l; fn main() { lock l; unlock l; }");
        assert!(extract_traces(&cfg, 2).is_err());
        // Branch on a read.
        let cfg = cfg_of("shared int X; fn main() { int v; v = X; if (v > 0) { work(1); } }");
        assert!(extract_traces(&cfg, 2).is_err());
    }

    #[test]
    fn three_processor_exploration() {
        let src = r#"
            shared int X;
            fn main() {
                int v;
                if (MYPROC == 0) { X = 1; }
                else { v = X; }
            }
        "#;
        let cfg = cfg_of(src);
        let sc = sc_outcomes(&cfg, 3).unwrap();
        // Two readers, each sees 0 or 1 independently-ish; all four
        // combinations are SC-reachable.
        assert_eq!(sc.len(), 4, "{sc:?}");
    }
}
