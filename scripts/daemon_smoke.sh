#!/usr/bin/env sh
# CI smoke test for the syncoptd analysis daemon.
#
# Usage: scripts/daemon_smoke.sh SYNCOPTC_BIN [SYNCOPTD_BIN]
#
# Starts a daemon on a private socket, routes check / explain / lint
# through `syncoptc --daemon`, and diffs every byte of stdout against
# direct (in-process) mode — the two must be identical. Also verifies
# ping/stats control ops, that `stats --format json` returns a
# `syncopt.metrics.v1` document with the required service metrics, that
# the `metrics` op emits well-shaped Prometheus text, that a repeated
# daemon query is served from the artifact cache (stats hits grow,
# misses do not), that query stdout is byte-identical with telemetry
# enabled and disabled (`--no-telemetry`), and that `shutdown` stops the
# daemon cleanly and removes the socket file.
# See docs/API.md for the syncopt.rpc.v1 protocol and
# docs/OBSERVABILITY.md for the service metrics.
set -eu

BIN="${1:-./target/release/syncoptc}"
DBIN="${2:-$(dirname "$BIN")/syncoptd}"

for b in "$BIN" "$DBIN"; do
    if [ ! -x "$b" ]; then
        echo "daemon_smoke: $b not found or not executable (build with: cargo build --release)" >&2
        exit 2
    fi
done

TMPDIR_SMOKE="$(mktemp -d)"
SOCK="$TMPDIR_SMOKE/syncoptd.sock"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$TMPDIR_SMOKE"
}
trap cleanup EXIT

echo "== start syncoptd =="
"$DBIN" --socket "$SOCK" 2> "$TMPDIR_SMOKE/daemon.log" &
DAEMON_PID=$!

# Wait for the socket to accept connections.
tries=0
until "$BIN" ping --socket "$SOCK" > /dev/null 2>&1; do
    tries=$((tries + 1))
    if [ "$tries" -ge 50 ]; then
        echo "daemon_smoke: daemon did not come up" >&2
        cat "$TMPDIR_SMOKE/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "== direct vs daemon byte-identity (check / explain / lint) =="
for cmd in check explain lint; do
    for fmt in human json; do
        direct="$TMPDIR_SMOKE/direct-$cmd-$fmt.out"
        daemon="$TMPDIR_SMOKE/daemon-$cmd-$fmt.out"
        # figure1.ms is the paper's racy example: `check` exits 1 in both
        # modes. The exit codes must agree, and so must every stdout byte.
        set +e
        "$BIN" "$cmd" programs/figure1.ms --format "$fmt" > "$direct" 2>/dev/null
        direct_rc=$?
        "$BIN" "$cmd" programs/figure1.ms --format "$fmt" --daemon --socket "$SOCK" > "$daemon" 2>/dev/null
        daemon_rc=$?
        set -e
        if [ "$direct_rc" -ne "$daemon_rc" ]; then
            echo "daemon_smoke: $cmd --format $fmt exit codes differ (direct $direct_rc, daemon $daemon_rc)" >&2
            exit 1
        fi
        if ! cmp -s "$direct" "$daemon"; then
            echo "daemon_smoke: $cmd --format $fmt output differs between direct and daemon mode" >&2
            diff "$direct" "$daemon" >&2 || true
            exit 1
        fi
    done
done

echo "== syncopt.metrics.v1 required keys =="
stats1="$TMPDIR_SMOKE/stats1.json"
"$BIN" stats --socket "$SOCK" --format json > "$stats1"
grep -q '"schema":"syncopt.metrics.v1"' "$stats1" || {
    echo "daemon_smoke: stats --format json missing metrics.v1 schema marker" >&2
    exit 1
}
for key in version uptime_ms requests_total; do
    grep -q "\"$key\":" "$stats1" || {
        echo "daemon_smoke: metrics.v1 document missing required key \`$key\`" >&2
        exit 1
    }
done
for metric in rpc.requests_total rpc.request_latency_us rpc.bytes_in \
    rpc.bytes_out rpc.cache_hits_total rpc.cache_misses_total \
    rpc.connections_opened; do
    grep -q "\"$metric" "$stats1" || {
        echo "daemon_smoke: metrics.v1 document missing metric \`$metric\`" >&2
        exit 1
    }
done

echo "== Prometheus exposition shape =="
prom="$TMPDIR_SMOKE/metrics.prom"
"$BIN" metrics --socket "$SOCK" > "$prom"
grep -q '^# TYPE syncopt_uptime_seconds gauge$' "$prom" || {
    echo "daemon_smoke: Prometheus output missing uptime gauge TYPE line" >&2
    exit 1
}
grep -q '^# TYPE syncopt_rpc_requests_total counter$' "$prom" || {
    echo "daemon_smoke: Prometheus output missing requests_total TYPE line" >&2
    exit 1
}
grep -q '^syncopt_rpc_request_latency_us_bucket{.*le="+Inf".*} [0-9]' "$prom" || {
    echo "daemon_smoke: Prometheus output missing +Inf histogram bucket" >&2
    exit 1
}

echo "== cache reuse across requests =="
# Repeat a query: the daemon must answer it from cache (misses stay put).
misses_before=$(sed 's/.*"rpc.cache_misses_total":\([0-9]*\).*/\1/' "$stats1")
"$BIN" check programs/figure1.ms --format json --daemon --socket "$SOCK" > /dev/null 2>&1 || true
stats2="$TMPDIR_SMOKE/stats2.json"
"$BIN" stats --socket "$SOCK" --format json > "$stats2"
misses_after=$(sed 's/.*"rpc.cache_misses_total":\([0-9]*\).*/\1/' "$stats2")
if [ "$misses_before" != "$misses_after" ]; then
    echo "daemon_smoke: repeated check rebuilt artifacts (misses $misses_before -> $misses_after)" >&2
    exit 1
fi

echo "== telemetry on vs off byte-identity =="
SOCK_OFF="$TMPDIR_SMOKE/syncoptd-off.sock"
"$DBIN" --socket "$SOCK_OFF" --no-telemetry 2> "$TMPDIR_SMOKE/daemon-off.log" &
OFF_PID=$!
tries=0
until "$BIN" ping --socket "$SOCK_OFF" > /dev/null 2>&1; do
    tries=$((tries + 1))
    if [ "$tries" -ge 50 ]; then
        echo "daemon_smoke: --no-telemetry daemon did not come up" >&2
        cat "$TMPDIR_SMOKE/daemon-off.log" >&2
        exit 1
    fi
    sleep 0.1
done
for cmd in check explain; do
    on="$TMPDIR_SMOKE/on-$cmd.out"
    off="$TMPDIR_SMOKE/off-$cmd.out"
    "$BIN" "$cmd" programs/figure1.ms --format json --daemon --socket "$SOCK" > "$on" 2>/dev/null || true
    "$BIN" "$cmd" programs/figure1.ms --format json --daemon --socket "$SOCK_OFF" > "$off" 2>/dev/null || true
    if ! cmp -s "$on" "$off"; then
        echo "daemon_smoke: $cmd output differs between telemetry-on and --no-telemetry daemons" >&2
        diff "$on" "$off" >&2 || true
        exit 1
    fi
done
"$BIN" shutdown --socket "$SOCK_OFF" 2>/dev/null
wait "$OFF_PID" || true

echo "== clean shutdown =="
"$BIN" shutdown --socket "$SOCK" 2>/dev/null
wait "$DAEMON_PID"
DAEMON_PID=""
if [ -e "$SOCK" ]; then
    echo "daemon_smoke: socket file survived shutdown" >&2
    exit 1
fi

echo "daemon_smoke: daemon output byte-identical (direct / telemetry on / telemetry off), metrics well-formed, cache reused, clean shutdown"
