#!/usr/bin/env sh
# CI smoke test for the syncoptd analysis daemon.
#
# Usage: scripts/daemon_smoke.sh SYNCOPTC_BIN [SYNCOPTD_BIN]
#
# Starts a daemon on a private socket, routes check / explain / lint
# through `syncoptc --daemon`, and diffs every byte of stdout against
# direct (in-process) mode — the two must be identical. Also verifies
# ping/stats control ops, that a repeated daemon query is served from the
# artifact cache (stats hits grow, misses do not), and that `shutdown`
# stops the daemon cleanly and removes the socket file.
# See docs/API.md for the syncopt.rpc.v1 protocol.
set -eu

BIN="${1:-./target/release/syncoptc}"
DBIN="${2:-$(dirname "$BIN")/syncoptd}"

for b in "$BIN" "$DBIN"; do
    if [ ! -x "$b" ]; then
        echo "daemon_smoke: $b not found or not executable (build with: cargo build --release)" >&2
        exit 2
    fi
done

TMPDIR_SMOKE="$(mktemp -d)"
SOCK="$TMPDIR_SMOKE/syncoptd.sock"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$TMPDIR_SMOKE"
}
trap cleanup EXIT

echo "== start syncoptd =="
"$DBIN" --socket "$SOCK" 2> "$TMPDIR_SMOKE/daemon.log" &
DAEMON_PID=$!

# Wait for the socket to accept connections.
tries=0
until "$BIN" ping --socket "$SOCK" > /dev/null 2>&1; do
    tries=$((tries + 1))
    if [ "$tries" -ge 50 ]; then
        echo "daemon_smoke: daemon did not come up" >&2
        cat "$TMPDIR_SMOKE/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "== direct vs daemon byte-identity (check / explain / lint) =="
for cmd in check explain lint; do
    for fmt in human json; do
        direct="$TMPDIR_SMOKE/direct-$cmd-$fmt.out"
        daemon="$TMPDIR_SMOKE/daemon-$cmd-$fmt.out"
        # figure1.ms is the paper's racy example: `check` exits 1 in both
        # modes. The exit codes must agree, and so must every stdout byte.
        set +e
        "$BIN" "$cmd" programs/figure1.ms --format "$fmt" > "$direct" 2>/dev/null
        direct_rc=$?
        "$BIN" "$cmd" programs/figure1.ms --format "$fmt" --daemon --socket "$SOCK" > "$daemon" 2>/dev/null
        daemon_rc=$?
        set -e
        if [ "$direct_rc" -ne "$daemon_rc" ]; then
            echo "daemon_smoke: $cmd --format $fmt exit codes differ (direct $direct_rc, daemon $daemon_rc)" >&2
            exit 1
        fi
        if ! cmp -s "$direct" "$daemon"; then
            echo "daemon_smoke: $cmd --format $fmt output differs between direct and daemon mode" >&2
            diff "$direct" "$daemon" >&2 || true
            exit 1
        fi
    done
done

echo "== cache reuse across requests =="
stats1="$TMPDIR_SMOKE/stats1.json"
"$BIN" stats --socket "$SOCK" > "$stats1"
grep -q '"schema":"syncopt.rpc.v1"' "$stats1" || {
    echo "daemon_smoke: stats missing rpc schema marker" >&2
    exit 1
}
# Repeat a query: the daemon must answer it from cache (misses stay put).
misses_before=$(sed 's/.*"misses":\([0-9]*\).*/\1/' "$stats1")
"$BIN" check programs/figure1.ms --format json --daemon --socket "$SOCK" > /dev/null 2>&1 || true
stats2="$TMPDIR_SMOKE/stats2.json"
"$BIN" stats --socket "$SOCK" > "$stats2"
misses_after=$(sed 's/.*"misses":\([0-9]*\).*/\1/' "$stats2")
if [ "$misses_before" != "$misses_after" ]; then
    echo "daemon_smoke: repeated check rebuilt artifacts (misses $misses_before -> $misses_after)" >&2
    exit 1
fi

echo "== clean shutdown =="
"$BIN" shutdown --socket "$SOCK" 2>/dev/null
wait "$DAEMON_PID"
DAEMON_PID=""
if [ -e "$SOCK" ]; then
    echo "daemon_smoke: socket file survived shutdown" >&2
    exit 1
fi

echo "daemon_smoke: daemon output byte-identical, cache reused, clean shutdown"
