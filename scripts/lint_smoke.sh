#!/usr/bin/env sh
# CI smoke test for the synchronization lint engine.
#
# Usage: scripts/lint_smoke.sh SYNCOPTC_BIN
#
# Exercises `syncoptc lint` end to end:
#   - a seeded deadlocking program (postwait-deadlock) must FAIL with a
#     rendered D003 error;
#   - every built-in kernel must lint with zero error-severity findings
#     (in particular zero F001 missing-fence errors at every
#     optimization level);
#   - JSON output must parse and carry the `syncopt.lint.v1` schema
#     marker;
#   - `--allow`/`--deny` severity overrides must flip the exit code.
# See docs/DIAGNOSTICS.md#linting for the code families and schema.
set -eu

BIN="${1:-./target/release/syncoptc}"

if [ ! -x "$BIN" ]; then
    echo "lint_smoke: $BIN not found or not executable (build with: cargo build --release)" >&2
    exit 2
fi

TMPDIR_SMOKE="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SMOKE"' EXIT

# Minimal structural JSON check without external tools: python3 when
# available, otherwise a brace-balance sanity pass.
json_parses() {
    if command -v python3 >/dev/null 2>&1; then
        python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$1"
    else
        head -c 1 "$1" | grep -q '{' && tail -c 2 "$1" | grep -q '}'
    fi
}

require() {
    if ! grep -q "$2" "$1"; then
        echo "lint_smoke: $1 is missing $2" >&2
        exit 1
    fi
}

echo "== lint --seeded postwait-deadlock (must fail) =="
out="$TMPDIR_SMOKE/deadlock.txt"
if "$BIN" lint --seeded postwait-deadlock > "$out" 2>&1; then
    echo "lint_smoke: seeded deadlock unexpectedly passed" >&2
    exit 1
fi
require "$out" 'error\[D003\]'

echo "== lint --seeded postwait-deadlock --allow D003 (must pass) =="
"$BIN" lint --seeded postwait-deadlock --allow D003 > /dev/null

echo "== lint --seeded lock-cycle --deny D001 (must fail) =="
if "$BIN" lint --seeded lock-cycle --deny D001 > /dev/null 2>&1; then
    echo "lint_smoke: --deny D001 unexpectedly passed" >&2
    exit 1
fi

echo "== lint --kernels (must pass, zero F001) =="
kernels="$TMPDIR_SMOKE/kernels.json"
"$BIN" lint --kernels --format json > "$kernels"
json_parses "$kernels" || { echo "lint_smoke: $kernels is not valid JSON" >&2; exit 1; }
require "$kernels" '"schema":"syncopt.lint.v1"'
if grep -q '"code":"F001"' "$kernels"; then
    echo "lint_smoke: kernels reported a missing fence (F001)" >&2
    exit 1
fi

echo "== lint programs/figure1.ms --format json =="
file_report="$TMPDIR_SMOKE/figure1.json"
"$BIN" lint programs/figure1.ms --format json > "$file_report"
json_parses "$file_report" || { echo "lint_smoke: $file_report is not valid JSON" >&2; exit 1; }
require "$file_report" '"schema":"syncopt.lint.v1"'
require "$file_report" '"fence_levels"'

echo "lint_smoke: seeded deadlock caught, kernels clean, JSON schema valid"
