#!/usr/bin/env sh
# CI smoke slice for the sharded conservative simulation engine.
#
# Usage: scripts/shard_smoke.sh SYNCOPTC_BIN
#
# Runs one small kernel through `syncoptc run` at --sim-shards 1 and
# --sim-shards 4, and at --sim-shards 4 under the block vs profiled
# partition strategies, and byte-compares the full JSON pipeline reports
# after stripping the `sim.work` engine-counter object plus the
# per-shard `shards` breakdown and its imbalance summary — the only
# surfaces the bit-identity contract excludes (the sharded engine
# schedules horizon control events and never rotates calendar buckets,
# and *where* each processor lives legitimately shifts per-shard load
# and cross-shard traffic). Everything else — exec_cycles, network
# totals, stall breakdown, per-processor accounting, barrier epochs,
# latency histograms — must match byte for byte. A shard-determinism
# regression therefore fails here in seconds, without waiting for the
# full difftest matrix in tests/sim_difftest.rs.
set -eu

BIN="${1:-./target/release/syncoptc}"

if [ ! -x "$BIN" ]; then
    echo "shard_smoke: $BIN not found or not executable (build with: cargo build --release)" >&2
    exit 2
fi

TMPDIR_SMOKE="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SMOKE"' EXIT

# Drop the engine-counter object and the per-shard breakdown (the
# `shards` array holds flat objects only, so a bracket regex suffices);
# everything else is contract surface.
strip_work() {
    sed -E -e 's/"work":\{[^}]*\}//g' \
           -e 's/,"shards":\[[^]]*\]//g' \
           -e 's/,"shard_imbalance_permille":[0-9]+//g' \
           "$1" > "$2"
}

for prog in stencil figure1; do
    src="programs/$prog.ms"
    echo "== shard byte-compare $src =="
    "$BIN" run "$src" --procs 8 --format json > "$TMPDIR_SMOKE/$prog.s1.json"
    "$BIN" run "$src" --procs 8 --sim-shards 4 --format json > "$TMPDIR_SMOKE/$prog.s4.json"
    strip_work "$TMPDIR_SMOKE/$prog.s1.json" "$TMPDIR_SMOKE/$prog.s1.stripped"
    strip_work "$TMPDIR_SMOKE/$prog.s4.json" "$TMPDIR_SMOKE/$prog.s4.stripped"
    if ! cmp -s "$TMPDIR_SMOKE/$prog.s1.stripped" "$TMPDIR_SMOKE/$prog.s4.stripped"; then
        echo "shard_smoke: $src diverges between --sim-shards 1 and 4:" >&2
        diff "$TMPDIR_SMOKE/$prog.s1.stripped" "$TMPDIR_SMOKE/$prog.s4.stripped" >&2 || true
        exit 1
    fi
done

echo "== partition byte-compare programs/stencil.ms (block vs profiled, 4 shards) =="
"$BIN" run programs/stencil.ms --procs 8 --sim-shards 4 --sim-partition block \
    --format json > "$TMPDIR_SMOKE/stencil.block.json"
"$BIN" run programs/stencil.ms --procs 8 --sim-shards 4 --sim-partition profiled \
    --format json > "$TMPDIR_SMOKE/stencil.profiled.json"
strip_work "$TMPDIR_SMOKE/stencil.block.json" "$TMPDIR_SMOKE/stencil.block.stripped"
strip_work "$TMPDIR_SMOKE/stencil.profiled.json" "$TMPDIR_SMOKE/stencil.profiled.stripped"
if ! cmp -s "$TMPDIR_SMOKE/stencil.block.stripped" "$TMPDIR_SMOKE/stencil.profiled.stripped"; then
    echo "shard_smoke: stencil diverges between --sim-partition block and profiled:" >&2
    diff "$TMPDIR_SMOKE/stencil.block.stripped" "$TMPDIR_SMOKE/stencil.profiled.stripped" >&2 || true
    exit 1
fi

echo "shard_smoke: sharded runs byte-identical outside engine counters"
