#!/usr/bin/env sh
# CI smoke slice for the sharded conservative simulation engine.
#
# Usage: scripts/shard_smoke.sh SYNCOPTC_BIN
#
# Runs one small kernel through `syncoptc run` at --sim-shards 1 and
# --sim-shards 4 and byte-compares the full JSON pipeline reports after
# stripping the `sim.work` engine-counter object — the only surface the
# bit-identity contract excludes (the sharded engine schedules horizon
# control events and never rotates calendar buckets, so its work
# counters legitimately differ). Everything else — exec_cycles, network
# totals, stall breakdown, per-processor accounting, barrier epochs,
# latency histograms — must match byte for byte. A shard-determinism
# regression therefore fails here in seconds, without waiting for the
# full difftest matrix in tests/sim_difftest.rs.
set -eu

BIN="${1:-./target/release/syncoptc}"

if [ ! -x "$BIN" ]; then
    echo "shard_smoke: $BIN not found or not executable (build with: cargo build --release)" >&2
    exit 2
fi

TMPDIR_SMOKE="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SMOKE"' EXIT

# Drop the engine-counter object; everything else is contract surface.
strip_work() {
    sed -E 's/"work":\{[^}]*\}//g' "$1" > "$2"
}

for prog in stencil figure1; do
    src="programs/$prog.ms"
    echo "== shard byte-compare $src =="
    "$BIN" run "$src" --procs 8 --format json > "$TMPDIR_SMOKE/$prog.s1.json"
    "$BIN" run "$src" --procs 8 --sim-shards 4 --format json > "$TMPDIR_SMOKE/$prog.s4.json"
    strip_work "$TMPDIR_SMOKE/$prog.s1.json" "$TMPDIR_SMOKE/$prog.s1.stripped"
    strip_work "$TMPDIR_SMOKE/$prog.s4.json" "$TMPDIR_SMOKE/$prog.s4.stripped"
    if ! cmp -s "$TMPDIR_SMOKE/$prog.s1.stripped" "$TMPDIR_SMOKE/$prog.s4.stripped"; then
        echo "shard_smoke: $src diverges between --sim-shards 1 and 4:" >&2
        diff "$TMPDIR_SMOKE/$prog.s1.stripped" "$TMPDIR_SMOKE/$prog.s4.stripped" >&2 || true
        exit 1
    fi
done

echo "shard_smoke: sharded runs byte-identical outside engine counters"
