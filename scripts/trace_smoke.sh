#!/usr/bin/env sh
# CI smoke test for the observability commands.
#
# Usage: scripts/trace_smoke.sh SYNCOPTC_BIN
#
# Runs `syncoptc trace` and `syncoptc explain` on the two standing
# example programs and validates the emitted JSON:
#   - `trace` internally enforces the span/accounting invariant (state
#     spans sum exactly to the per-processor cycle accounting) before it
#     writes anything, so a successful exit already proves it;
#   - both outputs must parse as JSON and carry their schema markers
#     (`syncopt.trace.v1`, `syncopt.explain.v1`);
#   - the trace must contain async message-flow spans (`"ph":"b"`) and
#     per-processor state slices (`"ph":"X"`).
# See docs/OBSERVABILITY.md for the schemas.
set -eu

BIN="${1:-./target/release/syncoptc}"

if [ ! -x "$BIN" ]; then
    echo "trace_smoke: $BIN not found or not executable (build with: cargo build --release)" >&2
    exit 2
fi

TMPDIR_SMOKE="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SMOKE"' EXIT

# Minimal structural JSON check without external tools: python3 when
# available, otherwise a brace-balance sanity pass.
json_parses() {
    if command -v python3 >/dev/null 2>&1; then
        python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$1"
    else
        head -c 1 "$1" | grep -q '{' && tail -c 2 "$1" | grep -q '}'
    fi
}

require() {
    if ! grep -q "$2" "$1"; then
        echo "trace_smoke: $1 is missing $2" >&2
        exit 1
    fi
}

for prog in figure1 stencil; do
    src="programs/$prog.ms"
    trace="$TMPDIR_SMOKE/$prog.trace.json"
    explain="$TMPDIR_SMOKE/$prog.explain.json"

    echo "== trace $src =="
    "$BIN" trace "$src" --procs 4 --out "$trace"
    json_parses "$trace" || { echo "trace_smoke: $trace is not valid JSON" >&2; exit 1; }
    require "$trace" '"schema":"syncopt.trace.v1"'
    require "$trace" '"truncated":false'
    require "$trace" '"ph":"X"'
    require "$trace" '"ph":"b"'

    echo "== explain $src =="
    "$BIN" explain "$src" --procs 4 --format json > "$explain"
    json_parses "$explain" || { echo "trace_smoke: $explain is not valid JSON" >&2; exit 1; }
    require "$explain" '"schema":"syncopt.explain.v1"'
    require "$explain" '"witness"'
done

echo "trace_smoke: trace + explain outputs valid on figure1 and stencil"
