#!/usr/bin/env sh
# Shared CI regression gate for the work-counter benchmark suites.
#
# Usage: scripts/bench_gate.sh SYNCOPTC_BIN
#
# Re-runs the smoke subset of every suite through `syncoptc bench` and
# compares the fresh all-integer work counters against the committed
# baselines (BENCH_delay_scaling.json, BENCH_sim_throughput.json,
# BENCH_sim_parallel.json).
# A counter more than 20% above its baseline fails the gate; wall-clock
# buckets are never compared. See docs/PERFORMANCE.md for the schema and
# the refresh commands.
set -eu

BIN="${1:-./target/release/syncoptc}"

if [ ! -x "$BIN" ]; then
    echo "bench_gate: $BIN not found or not executable (build with: cargo build --release)" >&2
    exit 2
fi

echo "== delay_scaling gate =="
"$BIN" bench --suite delay --smoke --check BENCH_delay_scaling.json

echo "== sim_throughput gate =="
"$BIN" bench --suite sim --smoke --check BENCH_sim_throughput.json

echo "== sim_parallel gate =="
"$BIN" bench --suite sim_parallel --smoke --check BENCH_sim_parallel.json

echo "bench_gate: all suites within tolerance"
