#!/usr/bin/env sh
# Shared CI regression gate for the work-counter benchmark suites.
#
# Usage: scripts/bench_gate.sh SYNCOPTC_BIN
#
# Re-runs the smoke subset of every suite through `syncoptc bench` and
# compares the fresh all-integer work counters against the committed
# baselines (BENCH_delay_scaling.json, BENCH_sim_throughput.json,
# BENCH_sim_parallel.json).
# A counter more than 20% above its baseline fails the gate; wall-clock
# buckets are never compared. See docs/PERFORMANCE.md for the schema and
# the refresh commands.
#
# Also gates the service-telemetry overhead claim: analysis counters in
# query output must be bit-identical whether a request is served
# directly, by a telemetry-enabled daemon, or by a `--no-telemetry`
# daemon (the disabled path takes no timestamps and allocates nothing
# per request — see docs/OBSERVABILITY.md).
set -eu

BIN="${1:-./target/release/syncoptc}"

if [ ! -x "$BIN" ]; then
    echo "bench_gate: $BIN not found or not executable (build with: cargo build --release)" >&2
    exit 2
fi

echo "== delay_scaling gate =="
"$BIN" bench --suite delay --smoke --check BENCH_delay_scaling.json

echo "== sim_throughput gate =="
"$BIN" bench --suite sim --smoke --check BENCH_sim_throughput.json

echo "== sim_parallel gate =="
"$BIN" bench --suite sim_parallel --smoke --check BENCH_sim_parallel.json

echo "== telemetry-off overhead gate =="
DBIN="$(dirname "$BIN")/syncoptd"
if [ -x "$DBIN" ]; then
    TMPDIR_GATE="$(mktemp -d)"
    ON_PID=""
    OFF_PID=""
    cleanup_gate() {
        [ -n "$ON_PID" ] && kill "$ON_PID" 2>/dev/null || true
        [ -n "$OFF_PID" ] && kill "$OFF_PID" 2>/dev/null || true
        rm -rf "$TMPDIR_GATE"
    }
    trap cleanup_gate EXIT
    SOCK_ON="$TMPDIR_GATE/on.sock"
    SOCK_OFF="$TMPDIR_GATE/off.sock"
    "$DBIN" --socket "$SOCK_ON" 2>/dev/null &
    ON_PID=$!
    "$DBIN" --socket "$SOCK_OFF" --no-telemetry 2>/dev/null &
    OFF_PID=$!
    for sock in "$SOCK_ON" "$SOCK_OFF"; do
        tries=0
        until "$BIN" ping --socket "$sock" > /dev/null 2>&1; do
            tries=$((tries + 1))
            if [ "$tries" -ge 50 ]; then
                echo "bench_gate: daemon on $sock did not come up" >&2
                exit 1
            fi
            sleep 0.1
        done
    done
    # Work counters in profile/check JSON are all-integer and
    # deterministic: telemetry must not perturb a single byte.
    for cmd in profile check; do
        "$BIN" "$cmd" programs/stencil.ms --format json > "$TMPDIR_GATE/direct.out" 2>/dev/null || true
        "$BIN" "$cmd" programs/stencil.ms --format json --daemon --socket "$SOCK_ON" > "$TMPDIR_GATE/on.out" 2>/dev/null || true
        "$BIN" "$cmd" programs/stencil.ms --format json --daemon --socket "$SOCK_OFF" > "$TMPDIR_GATE/off.out" 2>/dev/null || true
        for mode in on off; do
            if ! cmp -s "$TMPDIR_GATE/direct.out" "$TMPDIR_GATE/$mode.out"; then
                echo "bench_gate: $cmd counters differ between direct mode and the telemetry-$mode daemon" >&2
                diff "$TMPDIR_GATE/direct.out" "$TMPDIR_GATE/$mode.out" >&2 || true
                exit 1
            fi
        done
    done
    "$BIN" shutdown --socket "$SOCK_ON" 2>/dev/null || true
    "$BIN" shutdown --socket "$SOCK_OFF" 2>/dev/null || true
    wait "$ON_PID" 2>/dev/null || true
    wait "$OFF_PID" 2>/dev/null || true
    ON_PID=""
    OFF_PID=""
    echo "bench_gate: telemetry on/off counters bit-identical to direct mode"
else
    echo "bench_gate: $DBIN not found, skipping telemetry-off gate" >&2
fi

echo "bench_gate: all suites within tolerance"
