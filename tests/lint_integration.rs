//! Integration tests of the synchronization lint engine: seeded-example
//! coverage, fence-coverage soundness across kernels and optimization
//! levels, determinism, the 220-program corpus sweep, and the
//! `syncoptc lint` command-line surface.

use std::path::PathBuf;
use std::process::Command;
use syncopt::core::corpus::{corpus_program, CORPUS_SEEDS};
use syncopt::core::{LintReport, SyncOptions};
use syncopt::frontend::prepare_program;
use syncopt::ir::lower::lower_main;

fn lint_src(src: &str, threads: usize) -> LintReport {
    let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
    syncopt::lint::lint_cfg(
        &cfg,
        &SyncOptions {
            procs: Some(4),
            threads,
            ..SyncOptions::default()
        },
    )
}

fn codes(report: &LintReport) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.code).collect()
}

#[test]
fn seeded_examples_trigger_their_codes_with_witnesses() {
    for ex in syncopt::kernels::seeded::seeded_examples() {
        let report = lint_src(ex.source, 1);
        let hit = report.diagnostics.iter().find(|d| d.code == ex.code);
        let d = hit.unwrap_or_else(|| {
            panic!(
                "{}: expected {}, got {:?}",
                ex.name,
                ex.code,
                codes(&report)
            )
        });
        // Every seeded finding carries a rendered witness (at least one
        // note with the cycle / path / covering explanation).
        assert!(
            !d.notes.is_empty(),
            "{}: {} finding has no witness notes",
            ex.name,
            ex.code
        );
        let rendered = d.render(ex.source, ex.name);
        assert!(
            rendered.contains(ex.code),
            "{}: render missing code\n{rendered}",
            ex.name
        );
    }
}

#[test]
fn kernels_are_free_of_fence_errors_at_every_level() {
    for kernel in syncopt::kernels::all_kernels(4) {
        let report = lint_src(&kernel.source, 1);
        assert_eq!(
            report.fence_levels.len(),
            syncopt::lint::FENCE_LEVELS.len(),
            "{}: every optimization level must be verified",
            kernel.name
        );
        assert!(
            !codes(&report).contains(&"F001"),
            "{}: {:?}",
            kernel.name,
            codes(&report)
        );
    }
}

#[test]
fn lint_is_deterministic_across_reruns_and_threads() {
    let kernel = &syncopt::kernels::all_kernels(4)[0];
    let base = lint_src(&kernel.source, 1)
        .to_json(&kernel.source, "k.ms", 4)
        .to_string();
    for threads in [1, 2, 4] {
        let again = lint_src(&kernel.source, threads)
            .to_json(&kernel.source, "k.ms", 4)
            .to_string();
        assert_eq!(base, again, "threads={threads} diverged");
    }
}

#[test]
fn corpus_sweep_lints_without_panicking() {
    // The full difftest corpus: lint must complete on every program and
    // stay deterministic. Random programs may legitimately trigger any
    // finding; the invariant here is totality, not cleanliness.
    for seed in 0..CORPUS_SEEDS {
        let src = corpus_program(seed);
        let a = lint_src(&src, 1);
        let b = lint_src(&src, 3);
        assert_eq!(
            a.to_json(&src, "corpus.ms", 4).to_string(),
            b.to_json(&src, "corpus.ms", 4).to_string(),
            "seed {seed} not deterministic"
        );
    }
}

// ---- command-line surface ----------------------------------------------

fn syncoptc(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_syncoptc"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("binary should run");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

#[test]
fn lint_cli_reports_seeded_deadlock_and_exits_nonzero() {
    let (ok, stdout, stderr) = syncoptc(&["lint", "--seeded", "postwait-deadlock"]);
    assert!(!ok, "seeded deadlock must fail the lint");
    assert!(stdout.contains("error[D003]"), "{stdout}");
    assert!(stderr.contains("lint failed"), "{stderr}");
}

#[test]
fn lint_cli_kernels_pass_and_emit_schema_json() {
    let (ok, stdout, stderr) = syncoptc(&["lint", "--kernels", "--format", "json"]);
    assert!(ok, "{stderr}");
    assert!(
        stdout.contains("\"schema\":\"syncopt.lint.v1\""),
        "{stdout}"
    );
}

#[test]
fn lint_cli_file_reports_json_schema() {
    let (ok, stdout, stderr) = syncoptc(&["lint", "programs/figure1.ms", "--format", "json"]);
    assert!(ok, "{stderr}");
    assert!(
        stdout.contains("\"schema\":\"syncopt.lint.v1\""),
        "{stdout}"
    );
}

#[test]
fn lint_cli_deny_and_allow_flip_exit_codes() {
    // D001 is a warning by default: exits 0 without --deny, 1 with it.
    let (ok, _, _) = syncoptc(&["lint", "--seeded", "lock-cycle"]);
    assert!(ok, "warning-severity lint must not fail");
    let (ok, stdout, _) = syncoptc(&["lint", "--seeded", "lock-cycle", "--deny", "D001"]);
    assert!(!ok, "--deny D001 must fail:\n{stdout}");
    // D003 is an error by default: --allow demotes it to a note.
    let (ok, stdout, _) = syncoptc(&["lint", "--seeded", "postwait-deadlock", "--allow", "D003"]);
    assert!(ok, "--allow D003 must pass:\n{stdout}");
    assert!(stdout.contains("note[D003]"), "{stdout}");
}

#[test]
fn lint_cli_rejects_unknown_codes_and_examples() {
    let (ok, _, stderr) = syncoptc(&["lint", "--seeded", "no-such-example"]);
    assert!(!ok);
    assert!(stderr.contains("unknown seeded example"), "{stderr}");
    let (ok, _, stderr) = syncoptc(&["lint", "programs/figure1.ms", "--deny", "Z999"]);
    assert!(!ok);
    assert!(stderr.contains("unknown diagnostic code"), "{stderr}");
}

#[test]
fn lint_cli_output_is_byte_identical_across_runs_and_threads() {
    let args = ["lint", "--kernels", "--format", "json"];
    let (_, first, _) = syncoptc(&args);
    let (_, second, _) = syncoptc(&args);
    assert_eq!(first, second, "rerun diverged");
    let (_, wide, _) = syncoptc(&["lint", "--kernels", "--format", "json", "--threads", "4"]);
    assert_eq!(first, wide, "--threads 4 diverged");
}

#[test]
fn check_strict_folds_lint_findings_in() {
    // The seeded redundant-barrier program is race-free, so plain check
    // passes; --strict runs the lint suite and surfaces the L001 notes.
    let ex = syncopt::kernels::seeded::seeded_example("redundant-barrier").unwrap();
    let dir = std::env::temp_dir().join("syncopt_lint_it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("redundant.ms");
    std::fs::write(&path, ex.source).unwrap();
    let p = path.to_str().unwrap();
    let (ok, stdout, _) = syncoptc(&["check", p]);
    assert!(ok, "plain check must pass:\n{stdout}");
    assert!(
        !stdout.contains("L001"),
        "plain check must not lint:\n{stdout}"
    );
    let (ok, stdout, _) = syncoptc(&["check", p, "--strict"]);
    assert!(ok, "notes never fail the check:\n{stdout}");
    assert!(stdout.contains("note[L001]"), "{stdout}");
}
