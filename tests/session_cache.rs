//! Differential tests for the session API's content-addressed cache:
//! cached and incremental analysis must be **byte-identical** to a cold
//! full run — over the five evaluation kernels, the 220-program seeded
//! corpus, and after single-function edits — while the cache counters
//! prove that warm runs actually reused artifacts instead of rebuilding
//! them.

use syncopt::commands::{execute, CmdOut, Format, Query};
use syncopt::core::corpus::{corpus_program, CORPUS_SEEDS};
use syncopt::kernels::all_kernels;
use syncopt::session::{AnalysisSession, SessionOptions};

const COMMANDS: [&str; 4] = ["check", "explain", "lint", "profile"];

fn query(command: &str, name: &str, source: &str, format: Format) -> Query {
    Query {
        command: command.to_string(),
        file: name.to_string(),
        source: Some(source.to_string()),
        format,
        ..Query::default()
    }
}

/// Runs `q` on a fresh session: the ground-truth cold result.
fn cold(q: &Query) -> CmdOut {
    execute(&mut AnalysisSession::new(), q)
}

#[test]
fn kernels_warm_session_matches_cold_runs_byte_for_byte() {
    let kernels = all_kernels(4);
    assert_eq!(kernels.len(), 5, "the paper's five evaluation kernels");
    let mut session = AnalysisSession::new();
    for format in [Format::Human, Format::Json] {
        for kernel in &kernels {
            for command in COMMANDS {
                let q = query(command, kernel.name, &kernel.source, format);
                let reference = cold(&q);
                // First warm-session run: may build, must match bytes.
                assert_eq!(
                    execute(&mut session, &q),
                    reference,
                    "{command} {} (first warm run)",
                    kernel.name
                );
                // Second run: answered from cache, still identical.
                let before = session.cache_stats();
                assert_eq!(
                    execute(&mut session, &q),
                    reference,
                    "{command} {} (cached run)",
                    kernel.name
                );
                let delta = session.cache_stats().since(before);
                assert_eq!(
                    delta.misses, 0,
                    "{command} {}: repeat query must be all cache hits, got {delta:?}",
                    kernel.name
                );
                assert!(
                    delta.hits > 0,
                    "{command} {}: expected cache use",
                    kernel.name
                );
            }
        }
    }
}

#[test]
fn corpus_cached_check_matches_cold_runs() {
    let mut session = AnalysisSession::new();
    for seed in 0..CORPUS_SEEDS {
        let src = corpus_program(seed);
        let name = format!("corpus-{seed}.ms");
        let q = query("check", &name, &src, Format::Json);
        let reference = cold(&q);
        assert_eq!(execute(&mut session, &q), reference, "seed {seed} warm");
        // Every seventh program also goes through the full lint suite.
        if seed % 7 == 0 {
            let lint = query("lint", &name, &src, Format::Json);
            assert_eq!(
                execute(&mut session, &lint),
                cold(&lint),
                "seed {seed} lint"
            );
        }
    }
    // Replaying a prefix of the corpus is pure cache service.
    for seed in 0..10 {
        let src = corpus_program(seed);
        let q = query("check", &format!("corpus-{seed}.ms"), &src, Format::Json);
        let before = session.cache_stats();
        let warm = execute(&mut session, &q);
        assert_eq!(warm, cold(&q), "seed {seed} replay");
        assert_eq!(
            session.cache_stats().since(before).misses,
            0,
            "seed {seed}: replay must not rebuild anything"
        );
    }
    assert!(
        session.cache_stats().hits > 0,
        "the corpus sweep must exercise the cache"
    );
}

const TWO_FN_V1: &str = "shared int X; shared int Y;\n\
     fn helper() { Y = 2; barrier; }\n\
     fn main() { X = 1; helper(); }\n";

// Only `main` changes; `helper` is untouched.
const TWO_FN_V2: &str = "shared int X; shared int Y;\n\
     fn helper() { Y = 2; barrier; }\n\
     fn main() { X = 7; helper(); }\n";

#[test]
fn single_function_edit_matches_cold_and_reuses_unedited_checks() {
    let mut session = AnalysisSession::new();
    for command in COMMANDS {
        let v1 = query(command, "edit.ms", TWO_FN_V1, Format::Json);
        assert_eq!(execute(&mut session, &v1), cold(&v1), "{command} v1");
    }
    let fncheck_hits_before = session.kind_counters().get("cache.fncheck.hits");
    for command in COMMANDS {
        let v2 = query(command, "edit.ms", TWO_FN_V2, Format::Json);
        assert_eq!(
            execute(&mut session, &v2),
            cold(&v2),
            "{command} after single-function edit"
        );
    }
    // The edited program's first compile re-checked only `main`; the
    // verdict for the unedited `helper` was served from cache.
    assert!(
        session.kind_counters().get("cache.fncheck.hits") > fncheck_hits_before,
        "unedited function's check verdict must be reused across the edit"
    );
}

#[test]
fn partition_strategies_share_one_cache_entry() {
    // The partition strategy (like the shard count) only changes *how*
    // the sharded engine computes, never *what* it computes, so it is
    // deliberately excluded from simulation cache keys: a run under any
    // strategy is served from the artifact an earlier strategy built.
    use syncopt::machine::ShardPartition;
    let config = syncopt::MachineConfig::cm5(8);
    let kernel = &all_kernels(8)[0];
    let mut session = AnalysisSession::new();

    let block = SessionOptions {
        procs: Some(8),
        sim_shards: 4,
        sim_partition: ShardPartition::Block,
        ..SessionOptions::default()
    };
    let reference = session.run(&kernel.source, &block, &config).unwrap();

    for partition in [ShardPartition::Cyclic, ShardPartition::Profiled] {
        let opts = SessionOptions {
            sim_partition: partition,
            ..block.clone()
        };
        let before = session.cache_stats();
        let warm = session.run(&kernel.source, &opts, &config).unwrap();
        let delta = session.cache_stats().since(before);
        assert_eq!(
            delta.misses, 0,
            "{partition}: switching partition strategy must not rebuild anything"
        );
        assert!(delta.hits > 0, "{partition}: expected cache service");
        assert_eq!(
            warm.sim.exec_cycles, reference.sim.exec_cycles,
            "{partition}: cached result must be the identical simulation"
        );
        assert_eq!(warm.sim.net, reference.sim.net, "{partition}");
        assert_eq!(warm.sim.stalls, reference.sim.stalls, "{partition}");
    }
}

#[test]
fn annotated_report_proves_warm_rerun_does_less_work() {
    let opts = SessionOptions::default();
    let config = syncopt::MachineConfig::cm5(4);
    let kernel = &all_kernels(4)[0];
    let mut session = AnalysisSession::new();

    let mut cold_run = session.run(&kernel.source, &opts, &config).unwrap();
    session.annotate_report(&mut cold_run.compiled.report);
    let cold_stats = cold_run.compiled.report.cache.unwrap();
    assert!(cold_stats.misses > 0, "cold run builds artifacts");

    let mut warm_run = session.run(&kernel.source, &opts, &config).unwrap();
    session.annotate_report(&mut warm_run.compiled.report);
    let warm_stats = warm_run.compiled.report.cache.unwrap();
    assert_eq!(warm_stats.misses, 0, "warm rerun rebuilds nothing");
    assert!(warm_stats.hits > 0, "warm rerun is served from cache");
    assert!(
        warm_stats.lookups() <= cold_stats.lookups(),
        "warm rerun must not do more lookups than the cold run"
    );

    // The annotation is opt-in: JSON reports stay identical to the
    // pre-session format unless the caller asks for the cache section.
    let plain = session.run(&kernel.source, &opts, &config).unwrap();
    assert!(plain.compiled.report.cache.is_none());
    assert!(!plain
        .compiled
        .report
        .to_json()
        .to_string()
        .contains("\"cache\""));
}
