//! Golden test pinning the Chrome Trace Event Format export
//! (`syncopt.trace.v1`) of `syncoptc trace`.
//!
//! Traces carry no wall-clock data — timestamps are simulated cycles — so
//! the export is byte-for-byte deterministic and the golden file needs no
//! scrubbing. Regenerate after an intentional schema change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test trace_golden
//! ```

use std::path::PathBuf;
use std::process::Command;
use syncopt::core::diag::json::Value;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn trace_json(root: &PathBuf, stem: &str, extra: &[&str]) -> String {
    let rel = format!("programs/{stem}.ms");
    let mut argv = vec!["trace", rel.as_str(), "--procs", "4"];
    argv.extend_from_slice(extra);
    let out = Command::new(env!("CARGO_BIN_EXE_syncoptc"))
        .args(&argv)
        .current_dir(root)
        .output()
        .expect("binary should run");
    assert!(
        out.status.success(),
        "{stem}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("trace output is UTF-8")
}

#[test]
fn figure1_trace_matches_golden() {
    let root = repo_root();
    let transcript = trace_json(&root, "figure1", &[]);
    let golden_path = root.join("tests/golden/figure1.trace.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &transcript).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!("missing golden {golden_path:?} ({e}); run with UPDATE_GOLDEN=1")
    });
    assert_eq!(
        transcript, golden,
        "figure1 Chrome trace diverged from {golden_path:?}"
    );
}

#[test]
fn trace_export_is_deterministic() {
    let root = repo_root();
    let a = trace_json(&root, "stencil", &[]);
    let b = trace_json(&root, "stencil", &[]);
    assert_eq!(a, b, "two identical runs must export identical traces");
}

#[test]
fn trace_has_state_slices_and_async_flows() {
    let root = repo_root();
    let v = Value::parse(trace_json(&root, "figure1", &[]).trim()).expect("valid JSON");
    assert_eq!(
        v.get("schema").and_then(Value::as_str),
        Some("syncopt.trace.v1")
    );
    assert_eq!(v.get("truncated"), Some(&Value::Bool(false)));
    let events = v
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    let ph = |e: &Value| e.get("ph").and_then(Value::as_str).unwrap().to_string();
    let cat = |e: &Value| {
        e.get("cat")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string()
    };
    // Per-processor state slices covering the whole run.
    let slices = events
        .iter()
        .filter(|e| ph(e) == "X" && cat(e) == "state")
        .count();
    assert!(slices > 0, "no state slices");
    // Message-flow async spans come in begin/instant/end triples sharing
    // an id.
    let flow_b = events
        .iter()
        .filter(|e| ph(e) == "b" && cat(e) == "flow")
        .count();
    let flow_e = events
        .iter()
        .filter(|e| ph(e) == "e" && cat(e) == "flow")
        .count();
    assert!(flow_b > 0, "figure1 moves data: flows expected");
    assert_eq!(flow_b, flow_e, "every flow must close");
    // Thread-name metadata for all 4 procs plus the barrier track.
    let meta = events.iter().filter(|e| ph(e) == "M").count();
    assert_eq!(meta, 5);
}

#[test]
fn trace_limit_flag_truncates_and_flags_it() {
    let root = repo_root();
    let v = Value::parse(trace_json(&root, "stencil", &["--trace-limit", "8"]).trim())
        .expect("valid JSON");
    assert_eq!(v.get("truncated"), Some(&Value::Bool(true)));
    assert!(
        v.get("dropped_events")
            .and_then(Value::as_int)
            .is_some_and(|n| n > 0),
        "cap of 8 must drop events on stencil"
    );
}

#[test]
fn state_spans_sum_to_per_proc_accounting() {
    // Library-level restatement of the invariant `syncoptc trace` enforces:
    // for every processor and state, span cycles equal the simulator's
    // cycle accounting exactly.
    use syncopt::{Syncopt, TraceLevel};
    for (stem, procs) in [
        ("figure1", 4),
        ("stencil", 4),
        ("postwait", 2),
        ("allreduce", 8),
    ] {
        let path = repo_root().join(format!("programs/{stem}.ms"));
        let src = std::fs::read_to_string(&path).unwrap();
        let r = Syncopt::new(&src)
            .procs(procs)
            .trace(TraceLevel::Events)
            .run(&syncopt::MachineConfig::cm5(procs))
            .unwrap();
        let trace = r.trace.as_ref().unwrap();
        assert!(!trace.truncated(), "{stem}: raise the default cap");
        syncopt::verify_span_accounting(trace, &r.sim).unwrap_or_else(|e| panic!("{stem}: {e}"));
    }
}
