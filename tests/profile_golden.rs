//! Golden tests pinning the `syncoptc profile --format json` schema
//! (`syncopt.profile_report.v1`, embedding two
//! `syncopt.pipeline_report.v1` documents).
//!
//! The reports are fully deterministic except for the wall-clock `_us`
//! phase timings, which are scrubbed to 0 before comparison. Each
//! `programs/NAME.ms` under test has a golden file
//! `tests/golden/NAME.profile.json`; regenerate after an intentional
//! schema change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test profile_golden
//! ```

use std::path::PathBuf;
use std::process::Command;
use syncopt::core::diag::json::Value;

const PROGRAMS: &[&str] = &["figure1", "stencil"];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn profile_json(root: &PathBuf, stem: &str) -> Value {
    let rel = format!("programs/{stem}.ms");
    let out = Command::new(env!("CARGO_BIN_EXE_syncoptc"))
        .args([
            "profile", &rel, "--procs", "4", "--level", "full", "--format", "json",
        ])
        .current_dir(root)
        .output()
        .expect("binary should run");
    assert!(
        out.status.success(),
        "{stem}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    Value::parse(stdout.trim()).expect("stdout should be valid JSON")
}

/// Zeroes every `*_us` field (the only nondeterministic values in a
/// report) so transcripts diff cleanly across machines.
fn scrub_timings(v: &mut Value) {
    match v {
        Value::Obj(fields) => {
            for (key, val) in fields {
                if key.ends_with("_us") {
                    *val = Value::Int(0);
                } else {
                    scrub_timings(val);
                }
            }
        }
        Value::Arr(items) => items.iter_mut().for_each(scrub_timings),
        _ => {}
    }
}

#[test]
fn profile_json_matches_golden() {
    let root = repo_root();
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut failures = Vec::new();
    for stem in PROGRAMS {
        let mut v = profile_json(&root, stem);
        scrub_timings(&mut v);
        let transcript = format!("{v}\n");
        let golden_path = root.join(format!("tests/golden/{stem}.profile.json"));
        if update {
            std::fs::write(&golden_path, &transcript).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!("missing golden {golden_path:?} ({e}); run with UPDATE_GOLDEN=1")
        });
        if transcript != golden {
            failures.push(format!(
                "{stem}: profile JSON diverged from {golden_path:?}\n\
                 --- golden ---\n{golden}\n--- actual ---\n{transcript}"
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn profile_report_covers_all_four_stages() {
    let root = repo_root();
    let v = profile_json(&root, "figure1");
    assert_eq!(
        v.get("schema").and_then(Value::as_str),
        Some("syncopt.profile_report.v1")
    );
    for side in ["blocking", "optimized"] {
        let report = v.get(side).unwrap_or_else(|| panic!("missing {side}"));
        assert_eq!(
            report.get("schema").and_then(Value::as_str),
            Some("syncopt.pipeline_report.v1"),
            "{side}"
        );
        // Frontend: every phase timed (zeros with tracing off).
        let timings = report.get("timings").expect("timings");
        for phase in [
            "parse_us",
            "typeck_us",
            "lower_us",
            "analyze_us",
            "optimize_us",
            "simulate_us",
        ] {
            assert!(timings.get(phase).is_some(), "{side}: missing {phase}");
        }
        // Analysis: summary stats and work counters.
        assert!(report
            .get("analysis")
            .and_then(|a| a.get("delay_ss"))
            .is_some());
        assert!(report
            .get("counters")
            .and_then(|c| c.get("conflict.pairs"))
            .and_then(Value::as_int)
            .is_some_and(|n| n > 0));
        // Codegen: optimizer action counts.
        assert!(report
            .get("codegen")
            .and_then(|c| c.get("gets_split"))
            .is_some());
        // Machine: simulation section present for a `run`.
        assert!(report
            .get("sim")
            .and_then(|s| s.get("exec_cycles"))
            .is_some());
    }
}

#[test]
fn per_proc_cycles_sum_exactly_to_exec_cycles() {
    let root = repo_root();
    for stem in PROGRAMS {
        let v = profile_json(&root, stem);
        for side in ["blocking", "optimized"] {
            let sim = v.get(side).and_then(|r| r.get("sim")).expect("sim section");
            let exec = sim.get("exec_cycles").and_then(Value::as_int).unwrap();
            let per_proc = sim.get("per_proc").and_then(Value::as_arr).unwrap();
            assert_eq!(per_proc.len(), 4, "{stem}/{side}");
            for p in per_proc {
                let f = |k: &str| p.get(k).and_then(Value::as_int).unwrap();
                let accounted = f("busy")
                    + f("sync")
                    + f("barrier")
                    + f("wait")
                    + f("lock")
                    + f("network_wait")
                    + f("idle");
                assert_eq!(
                    accounted,
                    exec,
                    "{stem}/{side} proc {}: cycle accounting must conserve",
                    f("proc")
                );
            }
        }
    }
}

#[test]
fn profile_comparison_reports_speedup() {
    let root = repo_root();
    let v = profile_json(&root, "figure1");
    let cmp = v.get("comparison").expect("comparison");
    let speedup = cmp.get("speedup_x100").and_then(Value::as_int).unwrap();
    assert!(
        speedup >= 100,
        "optimization never slows figure1: {speedup}"
    );
    let blocking_cycles = v
        .get("blocking")
        .and_then(|r| r.get("sim"))
        .and_then(|s| s.get("exec_cycles"))
        .and_then(Value::as_int)
        .unwrap();
    let optimized_cycles = v
        .get("optimized")
        .and_then(|r| r.get("sim"))
        .and_then(|s| s.get("exec_cycles"))
        .and_then(Value::as_int)
        .unwrap();
    assert_eq!(
        cmp.get("cycles_saved").and_then(Value::as_int).unwrap(),
        blocking_cycles - optimized_cycles
    );
}
