//! Property tests for delay-set provenance (`syncopt::core::explain`).
//!
//! The contract: every pair of `D_SS` is accounted for — kept pairs carry
//! a replayable back-path witness, dropped pairs carry exactly one
//! concrete removal reason — and the partition sizes reconcile with the
//! analysis counters. Checked over the bundled example programs and all
//! five evaluation kernels.

use std::path::PathBuf;
use syncopt::core::explain::{explain, validate_witness, DropReason};
use syncopt::core::SyncOptions;
use syncopt::core::{analyze_with, Analysis};
use syncopt::ir::cfg::Cfg;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn analyzed(src: &str, procs: u32) -> (Cfg, Analysis, SyncOptions) {
    let program = syncopt::frontend::prepare_program(src).unwrap();
    let cfg = syncopt::ir::lower::lower_main(&program).unwrap();
    let opts = SyncOptions {
        procs: Some(procs),
        ..SyncOptions::default()
    };
    let analysis = analyze_with(&cfg, &opts);
    (cfg, analysis, opts)
}

fn check_provenance(name: &str, src: &str, procs: u32) -> (usize, usize) {
    let (cfg, analysis, opts) = analyzed(src, procs);
    let report = explain(&cfg, &analysis, &opts);

    // Partition: kept ∪ dropped = D_SS, sizes reconcile with counters.
    assert_eq!(report.kept.len(), analysis.delay_sync.len(), "{name}");
    assert_eq!(
        report.kept.len() + report.dropped.len(),
        analysis.delay_ss.len(),
        "{name}"
    );
    assert_eq!(
        report.dropped.len() as u64,
        analysis.metrics.get("delay.pairs_dropped"),
        "{name}: dropped pairs must match the delay.pairs_dropped counter"
    );

    // Every kept pair: a witness chain v → … → u that replays on the
    // graph it was found on.
    for k in &report.kept {
        assert_eq!(k.witness.first(), Some(&k.v), "{name} ({}, {})", k.u, k.v);
        assert_eq!(k.witness.last(), Some(&k.u), "{name} ({}, {})", k.u, k.v);
        let conflicts = if k.via_d1 {
            &analysis.conflicts
        } else {
            &analysis.sync.oriented
        };
        assert!(
            validate_witness(&cfg, conflicts, &k.witness),
            "{name}: kept ({}, {}) witness {:?} does not replay",
            k.u,
            k.v,
            k.witness
        );
    }

    // Every dropped pair: exactly one reason, and never the fallback.
    for d in &report.dropped {
        assert_ne!(
            d.reason,
            DropReason::Unexplained,
            "{name}: dropped ({}, {}) has no concrete removal reason",
            d.u,
            d.v
        );
        assert!(
            !analysis.delay_sync.contains(d.u, d.v),
            "{name}: ({}, {}) reported dropped but still in the refined set",
            d.u,
            d.v
        );
    }
    (report.kept.len(), report.dropped.len())
}

#[test]
fn example_programs_are_fully_classified() {
    let root = repo_root();
    for stem in [
        "figure1",
        "figure1_racy",
        "postwait",
        "stencil",
        "allreduce",
    ] {
        let src = std::fs::read_to_string(root.join(format!("programs/{stem}.ms"))).unwrap();
        check_provenance(stem, &src, 4);
    }
}

#[test]
fn evaluation_kernels_are_fully_classified() {
    for kernel in syncopt::kernels::all_kernels(8) {
        check_provenance(kernel.name, &kernel.source, kernel.procs);
    }
}

#[test]
fn every_kernel_has_kept_and_dropped_pairs_to_explain() {
    // The paper's refinement matters on all five kernels: each must show
    // at least one delay that synchronization removed and at least one
    // that survives with a witness.
    for kernel in syncopt::kernels::all_kernels(8) {
        let (kept, dropped) = check_provenance(kernel.name, &kernel.source, kernel.procs);
        assert!(kept > 0, "{}: no kept pair to witness", kernel.name);
        assert!(dropped > 0, "{}: no dropped pair to explain", kernel.name);
    }
}

#[test]
fn explain_json_is_deterministic_across_runs() {
    let root = repo_root();
    let src = std::fs::read_to_string(root.join("programs/postwait.ms")).unwrap();
    let (cfg, analysis, opts) = analyzed(&src, 4);
    let a = explain(&cfg, &analysis, &opts)
        .to_json(&cfg, &src)
        .to_string();
    let b = explain(&cfg, &analysis, &opts)
        .to_json(&cfg, &src)
        .to_string();
    assert_eq!(a, b);
    let parsed = syncopt::core::diag::json::Value::parse(&a).unwrap();
    assert_eq!(
        parsed.get("schema").and_then(|s| s.as_str()),
        Some("syncopt.explain.v1")
    );
}
