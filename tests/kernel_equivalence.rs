//! Cross-crate integration on the five evaluation kernels: every
//! optimization level must preserve the final shared-memory image, respect
//! the barrier-alignment runtime check, and never slow the program down.

use syncopt::machine::MachineConfig;
use syncopt::{DelayChoice, OptLevel, RunResult, Syncopt, SyncoptError};
use syncopt_kernels::{all_kernels, KernelParams};

fn run(
    src: &str,
    config: &MachineConfig,
    level: OptLevel,
    choice: DelayChoice,
) -> Result<RunResult, SyncoptError> {
    Syncopt::new(src).level(level).delay(choice).run(config)
}

fn small_kernels(procs: u32) -> Vec<syncopt_kernels::Kernel> {
    let p = KernelParams {
        procs,
        elements_per_proc: 6,
        steps: 3,
        work_per_element: 40,
    };
    vec![
        syncopt_kernels::ocean::generate(&p),
        syncopt_kernels::em3d::generate(&p),
        syncopt_kernels::epithel::generate(&p),
        syncopt_kernels::cholesky::generate(&p),
        syncopt_kernels::health::generate(&p),
    ]
}

#[test]
fn kernels_produce_identical_memory_at_all_levels() {
    let procs = 4;
    let config = MachineConfig::cm5(procs);
    for kernel in small_kernels(procs) {
        let baseline = run(
            &kernel.source,
            &config,
            OptLevel::Blocking,
            DelayChoice::SyncRefined,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        for level in [OptLevel::Pipelined, OptLevel::OneWay, OptLevel::Full] {
            for choice in [DelayChoice::ShashaSnir, DelayChoice::SyncRefined] {
                let r = run(&kernel.source, &config, level, choice)
                    .unwrap_or_else(|e| panic!("{} {level:?}: {e}", kernel.name));
                assert_eq!(
                    r.sim.memory, baseline.sim.memory,
                    "{} at {level:?}/{choice:?}",
                    kernel.name
                );
                assert!(r.sim.barriers_aligned, "{}", kernel.name);
            }
        }
    }
}

#[test]
fn refined_delays_never_slower_than_baseline_delays() {
    let procs = 8;
    let config = MachineConfig::cm5(procs);
    for kernel in all_kernels(procs) {
        let ss = run(
            &kernel.source,
            &config,
            OptLevel::Pipelined,
            DelayChoice::ShashaSnir,
        )
        .unwrap()
        .sim
        .exec_cycles;
        let refined = run(
            &kernel.source,
            &config,
            OptLevel::Pipelined,
            DelayChoice::SyncRefined,
        )
        .unwrap()
        .sim
        .exec_cycles;
        assert!(
            refined <= ss,
            "{}: refined {refined} vs shasha-snir {ss}",
            kernel.name
        );
    }
}

#[test]
fn one_way_reduces_total_messages_where_stores_apply() {
    let procs = 8;
    let config = MachineConfig::cm5(procs);
    for kernel in all_kernels(procs) {
        let two_way = run(
            &kernel.source,
            &config,
            OptLevel::Pipelined,
            DelayChoice::SyncRefined,
        )
        .unwrap()
        .sim;
        let one_way = run(
            &kernel.source,
            &config,
            OptLevel::OneWay,
            DelayChoice::SyncRefined,
        )
        .unwrap()
        .sim;
        assert!(
            one_way.net.total_messages() <= two_way.net.total_messages(),
            "{}",
            kernel.name
        );
        if one_way.net.store_requests > 0 {
            assert!(
                one_way.net.put_acks < two_way.net.put_acks || two_way.net.put_acks == 0,
                "{}: stores should remove acks",
                kernel.name
            );
        }
    }
}

#[test]
fn kernels_run_on_all_table1_machines() {
    for config in MachineConfig::table1(4) {
        for kernel in small_kernels(4) {
            run(
                &kernel.source,
                &config,
                OptLevel::Full,
                DelayChoice::SyncRefined,
            )
            .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name, config.name));
        }
    }
}

#[test]
fn kernel_simulations_are_deterministic() {
    let config = MachineConfig::cm5(4);
    for kernel in small_kernels(4) {
        let a = run(
            &kernel.source,
            &config,
            OptLevel::Full,
            DelayChoice::SyncRefined,
        )
        .unwrap()
        .sim;
        let b = run(
            &kernel.source,
            &config,
            OptLevel::Full,
            DelayChoice::SyncRefined,
        )
        .unwrap()
        .sim;
        assert_eq!(a.exec_cycles, b.exec_cycles, "{}", kernel.name);
        assert_eq!(a.memory, b.memory, "{}", kernel.name);
        assert_eq!(a.net, b.net, "{}", kernel.name);
    }
}
