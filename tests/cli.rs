//! End-to-end tests of the `syncoptc` command-line tool, run against the
//! sample programs in `programs/`.

use std::path::PathBuf;
use std::process::Command;

fn syncoptc(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_syncoptc"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("binary should run");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn repo_root() -> PathBuf {
    // crates/syncopt/../..
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

#[test]
fn analyze_reports_delay_sets() {
    let (ok, stdout, stderr) = syncoptc(&["analyze", "programs/figure1.ms"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("|D_SS| (Shasha-Snir):  2"), "{stdout}");
    assert!(stdout.contains("Write Data"), "{stdout}");
    assert!(stdout.contains("Read Flag"), "{stdout}");
}

#[test]
fn run_reports_execution_and_memory() {
    let (ok, stdout, stderr) = syncoptc(&[
        "run",
        "programs/allreduce.ms",
        "--procs",
        "8",
        "--level",
        "full",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("barriers aligned:   true"), "{stdout}");
    // sum(1..=8) lands at the root.
    assert!(stdout.contains("Val = [36,"), "{stdout}");
}

#[test]
fn run_honors_machine_selection() {
    let (_, cm5, _) = syncoptc(&["run", "programs/stencil.ms", "--procs", "8"]);
    let (_, t3d, _) = syncoptc(&[
        "run",
        "programs/stencil.ms",
        "--procs",
        "8",
        "--machine",
        "t3d",
    ]);
    assert!(cm5.contains("CM-5"), "{cm5}");
    assert!(t3d.contains("T3D"), "{t3d}");
    let cycles = |s: &str| -> u64 {
        s.lines()
            .find(|l| l.contains("execution:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|n| n.parse().ok())
            .unwrap()
    };
    assert!(cycles(&t3d) < cycles(&cm5), "T3D should be faster");
}

#[test]
fn litmus_detects_sc_preservation() {
    let (ok, stdout, stderr) = syncoptc(&["litmus", "programs/postwait.ms", "--procs", "2"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("refined D preserves SC:      true"), "{stdout}");
}

#[test]
fn opt_dot_emits_graphviz() {
    let (ok, stdout, _) = syncoptc(&["opt", "programs/figure1.ms", "--dot"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"), "{stdout}");
    assert!(stdout.contains("bb0"), "{stdout}");
}

#[test]
fn run_trace_prints_events() {
    let (ok, stdout, _) = syncoptc(&[
        "run",
        "programs/postwait.ms",
        "--procs",
        "2",
        "--trace",
    ]);
    assert!(ok);
    assert!(stdout.contains("service post"), "{stdout}");
    assert!(stdout.contains("finished"), "{stdout}");
}

#[test]
fn analyze_warns_on_orphaned_wait() {
    // Write a temp file with a deadlocking wait.
    let dir = std::env::temp_dir();
    let path = dir.join("syncoptc_cli_test_orphan.ms");
    std::fs::write(&path, "flag F; fn main() { wait F; }").unwrap();
    let (ok, stdout, _) = syncoptc(&["analyze", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("warning:"), "{stdout}");
    assert!(stdout.contains("deadlock"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn bad_usage_fails_with_message() {
    let (ok, _, stderr) = syncoptc(&["frobnicate", "programs/figure1.ms"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");

    let (ok, _, stderr) = syncoptc(&["run", "programs/figure1.ms", "--machine", "pdp11"]);
    assert!(!ok);
    assert!(stderr.contains("unknown machine"), "{stderr}");

    let (ok, _, stderr) = syncoptc(&["run", "does_not_exist.ms"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn frontend_errors_are_rendered_with_position() {
    let dir = std::env::temp_dir();
    let path = dir.join("syncoptc_cli_test_badsyntax.ms");
    std::fs::write(&path, "shared int X;\nfn main() {\n    X = ;\n}\n").unwrap();
    let (ok, _, stderr) = syncoptc(&["analyze", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("3:"), "{stderr}");
    assert!(stderr.contains("syntax error"), "{stderr}");
    let _ = std::fs::remove_file(path);
}
