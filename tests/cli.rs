//! End-to-end tests of the `syncoptc` command-line tool, run against the
//! sample programs in `programs/`.

use std::path::PathBuf;
use std::process::Command;

fn syncoptc(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_syncoptc"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("binary should run");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn repo_root() -> PathBuf {
    // crates/syncopt/../..
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

#[test]
fn analyze_reports_delay_sets() {
    let (ok, stdout, stderr) = syncoptc(&["analyze", "programs/figure1.ms"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("|D_SS| (Shasha-Snir):  2"), "{stdout}");
    assert!(stdout.contains("Write Data"), "{stdout}");
    assert!(stdout.contains("Read Flag"), "{stdout}");
}

#[test]
fn run_reports_execution_and_memory() {
    let (ok, stdout, stderr) = syncoptc(&[
        "run",
        "programs/allreduce.ms",
        "--procs",
        "8",
        "--level",
        "full",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("barriers aligned:   true"), "{stdout}");
    // sum(1..=8) lands at the root.
    assert!(stdout.contains("Val = [36,"), "{stdout}");
}

#[test]
fn run_honors_machine_selection() {
    let (_, cm5, _) = syncoptc(&["run", "programs/stencil.ms", "--procs", "8"]);
    let (_, t3d, _) = syncoptc(&[
        "run",
        "programs/stencil.ms",
        "--procs",
        "8",
        "--machine",
        "t3d",
    ]);
    assert!(cm5.contains("CM-5"), "{cm5}");
    assert!(t3d.contains("T3D"), "{t3d}");
    let cycles = |s: &str| -> u64 {
        s.lines()
            .find(|l| l.contains("execution:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|n| n.parse().ok())
            .unwrap()
    };
    assert!(cycles(&t3d) < cycles(&cm5), "T3D should be faster");
}

#[test]
fn litmus_detects_sc_preservation() {
    let (ok, stdout, stderr) = syncoptc(&["litmus", "programs/postwait.ms", "--procs", "2"]);
    assert!(ok, "{stderr}");
    assert!(
        stdout.contains("refined D preserves SC:      true"),
        "{stdout}"
    );
}

#[test]
fn opt_dot_emits_graphviz() {
    let (ok, stdout, _) = syncoptc(&["opt", "programs/figure1.ms", "--dot"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"), "{stdout}");
    assert!(stdout.contains("bb0"), "{stdout}");
}

#[test]
fn run_trace_prints_events() {
    let (ok, stdout, _) = syncoptc(&["run", "programs/postwait.ms", "--procs", "2", "--trace"]);
    assert!(ok);
    assert!(stdout.contains("service post"), "{stdout}");
    assert!(stdout.contains("finished"), "{stdout}");
}

#[test]
fn trace_rejects_sharded_engine() {
    let (ok, _, stderr) = syncoptc(&[
        "trace",
        "programs/postwait.ms",
        "--procs",
        "2",
        "--sim-shards",
        "4",
    ]);
    assert!(!ok, "trace must reject --sim-shards > 1");
    assert!(
        stderr.contains("trace requires the sequential engine"),
        "{stderr}"
    );
    assert!(stderr.contains("--sim-shards 4"), "{stderr}");
}

#[test]
fn trace_rejects_non_default_partition() {
    let (ok, _, stderr) = syncoptc(&[
        "trace",
        "programs/postwait.ms",
        "--procs",
        "2",
        "--sim-partition",
        "profiled",
    ]);
    assert!(!ok, "trace must reject --sim-partition != block");
    assert!(
        stderr.contains("trace requires the sequential engine"),
        "{stderr}"
    );
    assert!(stderr.contains("--sim-partition profiled"), "{stderr}");
}

#[test]
fn run_partition_strategies_match_sequential_output() {
    let (ok, sequential, stderr) = syncoptc(&["run", "programs/stencil.ms", "--procs", "8"]);
    assert!(ok, "{stderr}");
    for partition in ["block", "cyclic", "profiled"] {
        let (ok, sharded, stderr) = syncoptc(&[
            "run",
            "programs/stencil.ms",
            "--procs",
            "8",
            "--sim-shards",
            "4",
            "--sim-partition",
            partition,
        ]);
        assert!(ok, "{partition}: {stderr}");
        assert_eq!(
            sequential, sharded,
            "{partition}: sharded run output must be identical"
        );
    }
}

#[test]
fn run_rejects_unknown_partition_strategy() {
    let (ok, _, stderr) = syncoptc(&["run", "programs/stencil.ms", "--sim-partition", "striped"]);
    assert!(!ok);
    assert!(stderr.contains("unknown partition strategy"), "{stderr}");
    assert!(stderr.contains("block|cyclic|profiled"), "{stderr}");
}

#[test]
fn run_accepts_sharded_engine_and_matches_sequential() {
    let (ok, sequential, stderr) = syncoptc(&["run", "programs/postwait.ms", "--procs", "2"]);
    assert!(ok, "{stderr}");
    let (ok, sharded, stderr) = syncoptc(&[
        "run",
        "programs/postwait.ms",
        "--procs",
        "2",
        "--sim-shards",
        "2",
    ]);
    assert!(ok, "{stderr}");
    assert_eq!(sequential, sharded, "sharded run output must be identical");
}

#[test]
fn analyze_warns_on_orphaned_wait() {
    // Write a temp file with a deadlocking wait.
    let dir = std::env::temp_dir();
    let path = dir.join("syncoptc_cli_test_orphan.ms");
    std::fs::write(&path, "flag F; fn main() { wait F; }").unwrap();
    let (ok, stdout, _) = syncoptc(&["analyze", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("warning:"), "{stdout}");
    assert!(stdout.contains("deadlock"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn check_passes_synchronized_program() {
    let (ok, stdout, stderr) = syncoptc(&["check", "programs/postwait.ms"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("0 potentially racy"), "{stdout}");
    assert!(stdout.contains("0 error(s)"), "{stdout}");
}

#[test]
fn check_fails_on_racy_program() {
    let (ok, stdout, stderr) = syncoptc(&["check", "programs/figure1_racy.ms"]);
    assert!(!ok, "racy program must exit nonzero");
    assert!(stdout.contains("error[R001]"), "{stdout}");
    assert!(stdout.contains("error[R002]"), "{stdout}");
    assert!(stderr.contains("check failed"), "{stderr}");
}

#[test]
fn check_strict_promotes_warnings() {
    // allreduce has conservative (unproven) race warnings but no errors.
    let (ok, _, _) = syncoptc(&["check", "programs/allreduce.ms"]);
    assert!(ok, "warnings alone must not fail a default check");
    let (ok, stdout, _) = syncoptc(&["check", "programs/allreduce.ms", "--strict"]);
    assert!(!ok, "--strict must fail on warnings");
    assert!(stdout.contains("error[R002]"), "{stdout}");
}

#[test]
fn check_json_output_round_trips() {
    use syncopt::core::diag::json::Value;

    let (ok, stdout, _) = syncoptc(&["check", "programs/figure1_racy.ms", "--format", "json"]);
    assert!(!ok, "exit code is independent of the output format");
    let v = Value::parse(stdout.trim()).expect("stdout should be valid JSON");
    assert_eq!(
        v.get("file").and_then(Value::as_str),
        Some("programs/figure1_racy.ms")
    );
    let summary = v.get("summary").expect("summary object");
    assert_eq!(summary.get("race_free"), Some(&Value::Bool(false)));
    assert!(summary.get("proven_races").and_then(Value::as_int).unwrap() >= 1);
    let diags = v.get("diagnostics").and_then(Value::as_arr).unwrap();
    assert!(!diags.is_empty());
    for d in diags {
        assert!(d.get("code").and_then(Value::as_str).is_some());
        assert!(d.get("severity").and_then(Value::as_str).is_some());
        let span = d.get("span").expect("span object");
        for key in ["start", "end", "line", "col"] {
            assert!(span.get(key).and_then(Value::as_int).is_some(), "{key}");
        }
    }
    // Canonical emission: parsing and re-emitting is a fixpoint.
    assert_eq!(v.to_string(), stdout.trim());
}

#[test]
fn check_kernels_are_race_free() {
    let (ok, stdout, stderr) = syncoptc(&["check", "--kernels", "--procs", "8"]);
    assert!(ok, "{stderr}");
    for name in ["Ocean", "EM3D", "Epithel", "Cholesky", "Health"] {
        assert!(stdout.contains(name), "{stdout}");
    }
    assert!(stdout.contains("all 5 kernel(s) race-free"), "{stdout}");
}

#[test]
fn check_reports_sync_warnings_with_spans() {
    let dir = std::env::temp_dir();
    let path = dir.join("syncoptc_cli_test_check_warn.ms");
    std::fs::write(&path, "flag F; fn main() { wait F; }").unwrap();
    let (ok, stdout, _) = syncoptc(&["check", path.to_str().unwrap()]);
    assert!(ok, "W001 is a warning, not an error");
    assert!(stdout.contains("warning[W001]"), "{stdout}");
    assert!(stdout.contains("wait F"), "{stdout}");
    assert!(stdout.contains('^'), "{stdout}");
    let (ok, _, _) = syncoptc(&["check", path.to_str().unwrap(), "--strict"]);
    assert!(!ok, "--strict promotes W001 to an error");
    let _ = std::fs::remove_file(path);
}

#[test]
fn profile_compares_blocking_and_optimized() {
    let (ok, stdout, stderr) = syncoptc(&[
        "profile",
        "programs/figure1.ms",
        "--procs",
        "4",
        "--level",
        "full",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("profile: blocking vs full"), "{stdout}");
    assert!(stdout.contains("speedup:"), "{stdout}");
    assert!(stdout.contains("--- blocking ---"), "{stdout}");
    assert!(stdout.contains("--- optimized ---"), "{stdout}");
}

#[test]
fn profile_json_round_trips() {
    use syncopt::core::diag::json::Value;

    let (ok, stdout, stderr) = syncoptc(&["profile", "programs/stencil.ms", "--format", "json"]);
    assert!(ok, "{stderr}");
    let v = Value::parse(stdout.trim()).expect("stdout should be valid JSON");
    assert_eq!(
        v.get("schema").and_then(Value::as_str),
        Some("syncopt.profile_report.v1")
    );
    assert!(v.get("blocking").is_some() && v.get("optimized").is_some());
    assert!(v
        .get("comparison")
        .and_then(|c| c.get("speedup_x100"))
        .is_some());
    // Canonical emission: parsing and re-emitting is a fixpoint.
    assert_eq!(v.to_string(), stdout.trim());
}

#[test]
fn run_emit_report_writes_pipeline_report() {
    use syncopt::core::diag::json::Value;

    let path = std::env::temp_dir().join("syncoptc_cli_test_report.json");
    let (ok, _, stderr) = syncoptc(&[
        "run",
        "programs/postwait.ms",
        "--procs",
        "2",
        "--emit-report",
        path.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let text = std::fs::read_to_string(&path).expect("report file written");
    let v = Value::parse(text.trim()).expect("report should be valid JSON");
    assert_eq!(
        v.get("schema").and_then(Value::as_str),
        Some("syncopt.pipeline_report.v1")
    );
    assert!(
        v.get("sim").and_then(|s| s.get("exec_cycles")).is_some(),
        "{text}"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn run_format_json_emits_report_on_stdout() {
    use syncopt::core::diag::json::Value;

    let (ok, stdout, stderr) = syncoptc(&["run", "programs/figure1.ms", "--format", "json"]);
    assert!(ok, "{stderr}");
    let v = Value::parse(stdout.trim()).expect("stdout should be valid JSON");
    assert_eq!(
        v.get("schema").and_then(Value::as_str),
        Some("syncopt.pipeline_report.v1")
    );
    assert!(v
        .get("sim")
        .and_then(|s| s.get("per_proc"))
        .and_then(Value::as_arr)
        .is_some_and(|a| a.len() == 4));
}

#[test]
fn bad_usage_fails_with_message() {
    let (ok, _, stderr) = syncoptc(&["frobnicate", "programs/figure1.ms"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");

    let (ok, _, stderr) = syncoptc(&["run", "programs/figure1.ms", "--machine", "pdp11"]);
    assert!(!ok);
    assert!(stderr.contains("unknown machine"), "{stderr}");

    let (ok, _, stderr) = syncoptc(&["run", "does_not_exist.ms"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn frontend_errors_are_rendered_with_position() {
    let dir = std::env::temp_dir();
    let path = dir.join("syncoptc_cli_test_badsyntax.ms");
    std::fs::write(&path, "shared int X;\nfn main() {\n    X = ;\n}\n").unwrap();
    let (ok, _, stderr) = syncoptc(&["analyze", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("3:"), "{stderr}");
    assert!(stderr.contains("syntax error"), "{stderr}");
    let _ = std::fs::remove_file(path);
}

/// Satellite guarantee of the session/daemon redesign: with
/// `--format json`, every subcommand emits exactly one schema-versioned
/// JSON document on stdout, and nothing else; diagnostics go to stderr.
#[test]
fn every_subcommand_json_output_is_one_schema_versioned_document() {
    use syncopt::core::diag::json::Value;

    let cases: &[&[&str]] = &[
        &["analyze", "programs/figure1.ms"],
        &["opt", "programs/figure1.ms"],
        &["run", "programs/figure1.ms"],
        &["trace", "programs/figure1.ms"],
        &["explain", "programs/figure1.ms"],
        &["profile", "programs/figure1.ms"],
        &["litmus", "programs/postwait.ms", "--procs", "2"],
        &["check", "programs/figure1.ms"],
        &["check", "--kernels"],
        &["lint", "programs/figure1.ms"],
        &["lint", "--kernels"],
        &["lint", "--seeded", "redundant-barrier"],
        &["bench", "--smoke"],
    ];
    for case in cases {
        let mut args: Vec<&str> = case.to_vec();
        args.extend(["--format", "json"]);
        let (ok, stdout, stderr) = syncoptc(&args);
        // Some fixtures legitimately fail (figure1 is racy); the failure
        // must then be on stderr while stdout still carries the document.
        if !ok {
            assert!(
                stderr.contains("syncoptc:"),
                "{case:?}: failure must be reported on stderr: {stderr}"
            );
        }
        let doc = Value::parse(stdout.trim())
            .unwrap_or_else(|e| panic!("{case:?}: stdout is not one JSON document: {e}"));
        let schema = doc.get("schema").and_then(Value::as_str);
        assert!(
            schema.is_some_and(|s| s.starts_with("syncopt.") && s.ends_with(".v1")),
            "{case:?}: missing schema-versioned marker in {doc}"
        );
        // Exactly one document, then nothing.
        assert_eq!(
            stdout,
            format!("{doc}\n"),
            "{case:?}: stdout must be the document and nothing else"
        );
    }
}

/// `check` exit codes must agree between human and JSON formats, with
/// diagnostics on stderr (JSON mode) and the document alone on stdout.
#[test]
fn check_json_and_human_agree_on_exit_code() {
    use syncopt::core::diag::json::Value;

    let dir = std::env::temp_dir();
    let path = dir.join("syncoptc_cli_test_racy.ms");
    std::fs::write(
        &path,
        "shared int X;\nfn main() {\n    X = MYPROC;\n    X = X + 1;\n}\n",
    )
    .unwrap();
    let file = path.to_str().unwrap();

    let (ok_human, _, stderr_human) = syncoptc(&["check", file, "--strict"]);
    let (ok_json, stdout_json, stderr_json) =
        syncoptc(&["check", file, "--strict", "--format", "json"]);
    assert_eq!(ok_human, ok_json, "formats must agree on the exit code");
    assert!(!ok_json, "a racy program under --strict must fail");
    assert!(stderr_human.contains("check failed"), "{stderr_human}");
    assert!(stderr_json.contains("check failed"), "{stderr_json}");
    let doc = Value::parse(stdout_json.trim()).expect("one JSON document");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("syncopt.check.v1")
    );
    assert!(
        doc.get("summary")
            .and_then(|s| s.get("errors"))
            .and_then(Value::as_int)
            .is_some_and(|n| n > 0),
        "{doc}"
    );
    let _ = std::fs::remove_file(path);
}
