//! Drift test: every diagnostic code emitted anywhere in the workspace
//! must be registered in `syncopt::core::KNOWN_CODES` and documented
//! with a `### CODE` heading in `docs/DIAGNOSTICS.md`.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

/// Extracts word-bounded diagnostic-code tokens (`E001`, `W003`,
/// `D001`, ...) from `text`.
fn code_tokens(text: &str) -> BTreeSet<String> {
    let bytes = text.as_bytes();
    let mut out = BTreeSet::new();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    for (i, &b) in bytes.iter().enumerate() {
        if !matches!(b, b'E' | b'W' | b'R' | b'P' | b'D' | b'L' | b'F') {
            continue;
        }
        if i > 0 && is_word(bytes[i - 1]) {
            continue;
        }
        if i + 4 > bytes.len() || !bytes[i + 1..i + 4].iter().all(u8::is_ascii_digit) {
            continue;
        }
        if i + 4 < bytes.len() && is_word(bytes[i + 4]) {
            continue;
        }
        out.insert(text[i..i + 4].to_string());
    }
    out
}

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            // `target/` never appears under crates/*/src or tests/.
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_emitted_code_is_known_and_documented() {
    let root = repo_root();
    let mut files = Vec::new();
    rs_files(&root.join("crates"), &mut files);
    rs_files(&root.join("tests"), &mut files);
    assert!(files.len() > 20, "source scan found too few files");

    let mut emitted = BTreeSet::new();
    for f in &files {
        // Skip build artifacts if a stray target/ dir exists in a crate.
        if f.components().any(|c| c.as_os_str() == "target") {
            continue;
        }
        emitted.extend(code_tokens(&std::fs::read_to_string(f).unwrap()));
    }
    assert!(
        emitted.contains("R001") && emitted.contains("F001"),
        "scan looks broken: {emitted:?}"
    );

    let docs = std::fs::read_to_string(root.join("docs/DIAGNOSTICS.md")).unwrap();
    for code in &emitted {
        assert!(
            syncopt::core::KNOWN_CODES.contains(&code.as_str()),
            "{code} is emitted but missing from syncopt::core::KNOWN_CODES"
        );
        assert!(
            docs.contains(&format!("### {code}")),
            "{code} is emitted but has no `### {code}` entry in docs/DIAGNOSTICS.md"
        );
    }
    // And the registry itself carries no dead codes.
    for code in syncopt::core::KNOWN_CODES {
        assert!(
            emitted.contains(*code),
            "{code} is in KNOWN_CODES but never appears in the sources"
        );
    }
}
