//! Locks in the *shapes* of the paper's evaluation figures as regression
//! tests: if a change to the analysis or optimizer breaks the Figure 12
//! ordering or the Figure 13 scaling separation, these fail.

use syncopt::machine::{
    simulate_configured, simulate_sharded, EngineKind, MachineConfig, SimOutputs,
};
use syncopt::{DelayChoice, OptLevel, RunResult, Syncopt, SyncoptError};
use syncopt_kernels::{all_kernels, epithel, KernelParams};

fn run(
    src: &str,
    config: &MachineConfig,
    level: OptLevel,
    choice: DelayChoice,
) -> Result<RunResult, SyncoptError> {
    Syncopt::new(src).level(level).delay(choice).run(config)
}

fn cycles(src: &str, config: &MachineConfig, level: OptLevel, choice: DelayChoice) -> u64 {
    run(src, config, level, choice)
        .expect("kernel must run")
        .sim
        .exec_cycles
}

/// Figure 12 ordering: unoptimized ≥ pipelined ≥ one-way for every kernel.
#[test]
fn figure12_bar_ordering_holds() {
    let procs = 16;
    let config = MachineConfig::cm5(procs);
    for kernel in all_kernels(procs) {
        let unopt = cycles(
            &kernel.source,
            &config,
            OptLevel::Pipelined,
            DelayChoice::ShashaSnir,
        );
        let pipe = cycles(
            &kernel.source,
            &config,
            OptLevel::Pipelined,
            DelayChoice::SyncRefined,
        );
        let oneway = cycles(
            &kernel.source,
            &config,
            OptLevel::OneWay,
            DelayChoice::SyncRefined,
        );
        assert!(
            pipe <= unopt,
            "{}: pipe {pipe} > unopt {unopt}",
            kernel.name
        );
        assert!(
            oneway <= pipe,
            "{}: oneway {oneway} > pipe {pipe}",
            kernel.name
        );
        // The paper's headline: a real improvement, not noise.
        assert!(
            (oneway as f64) < 0.95 * unopt as f64,
            "{}: expected ≥5% total gain, got {unopt} → {oneway}",
            kernel.name
        );
    }
}

/// Figure 13 separation: at scale, the optimized Epithel clearly beats the
/// unoptimized one, and the unoptimized version has stopped scaling.
#[test]
fn figure13_scaling_separation_holds() {
    let total_elems = 1152u32;
    let params = |procs: u32| KernelParams {
        procs,
        elements_per_proc: total_elems / procs,
        steps: 2,
        work_per_element: 5,
    };
    let t = |procs: u32, level: OptLevel, choice: DelayChoice| {
        let kernel = epithel::generate(&params(procs));
        cycles(&kernel.source, &MachineConfig::cm5(procs), level, choice)
    };
    // Separation at 32 processors.
    let unopt32 = t(32, OptLevel::Pipelined, DelayChoice::ShashaSnir);
    let oneway32 = t(32, OptLevel::OneWay, DelayChoice::SyncRefined);
    assert!(
        (oneway32 as f64) < 0.7 * unopt32 as f64,
        "expected ≥30% separation at 32 procs: {unopt32} vs {oneway32}"
    );
    // The unoptimized version rolls over: 32 procs not much better than 16.
    let unopt16 = t(16, OptLevel::Pipelined, DelayChoice::ShashaSnir);
    assert!(
        unopt32 as f64 > 0.8 * unopt16 as f64,
        "unoptimized should have flattened: T(16)={unopt16}, T(32)={unopt32}"
    );
    // The optimized version keeps scaling: 32 procs clearly beats 16.
    let oneway16 = t(16, OptLevel::OneWay, DelayChoice::SyncRefined);
    assert!(
        (oneway32 as f64) < 0.8 * oneway16 as f64,
        "optimized should keep scaling: T(16)={oneway16}, T(32)={oneway32}"
    );
}

/// Figure 13 is engine-independent: re-deriving its largest point on the
/// sharded conservative engine gives bit-identical cycle counts, so the
/// figure harnesses are free to run `--sim-shards N` for wall-clock and
/// every separation assertion above transfers unchanged.
#[test]
fn figure13_points_survive_the_sharded_engine() {
    let procs = 32u32;
    let kernel = epithel::generate(&KernelParams {
        procs,
        elements_per_proc: 1152 / procs,
        steps: 2,
        work_per_element: 5,
    });
    let config = MachineConfig::cm5(procs);
    for (level, choice) in [
        (OptLevel::Pipelined, DelayChoice::ShashaSnir),
        (OptLevel::OneWay, DelayChoice::SyncRefined),
    ] {
        let compiled = Syncopt::new(&kernel.source)
            .procs(procs)
            .level(level)
            .delay(choice)
            .compile()
            .expect("kernel compiles");
        let sequential = simulate_configured(
            &compiled.optimized.cfg,
            &config,
            EngineKind::Calendar,
            SimOutputs::lean(),
        )
        .expect("sequential run");
        for shards in [2, 4] {
            let sharded =
                simulate_sharded(&compiled.optimized.cfg, &config, shards, SimOutputs::lean())
                    .expect("sharded run");
            assert_eq!(
                sequential.exec_cycles, sharded.exec_cycles,
                "{level:?} s{shards}: exec_cycles"
            );
            assert_eq!(sequential.net, sharded.net, "{level:?} s{shards}: net");
        }
    }
}

/// Delay-set reduction: the central claim, on every kernel.
#[test]
fn delay_sets_shrink_on_every_kernel() {
    for kernel in all_kernels(16) {
        let compiled = Syncopt::new(&kernel.source)
            .procs(16)
            .level(OptLevel::Blocking)
            .compile()
            .unwrap();
        let s = compiled.analysis.stats();
        assert!(
            s.delay_sync < s.delay_ss,
            "{}: {} !< {}",
            kernel.name,
            s.delay_sync,
            s.delay_ss
        );
    }
}

/// Ack elimination: one-way conversion removes *all* acks wherever it
/// applies (Ocean, EM3D, Epithel have barrier-covered puts).
#[test]
fn one_way_eliminates_acks_on_barrier_kernels() {
    let procs = 8;
    let config = MachineConfig::cm5(procs);
    for kernel in all_kernels(procs) {
        if !["Ocean", "EM3D", "Epithel"].contains(&kernel.name) {
            continue;
        }
        let two_way = run(
            &kernel.source,
            &config,
            OptLevel::Pipelined,
            DelayChoice::SyncRefined,
        )
        .unwrap()
        .sim;
        let one_way = run(
            &kernel.source,
            &config,
            OptLevel::OneWay,
            DelayChoice::SyncRefined,
        )
        .unwrap()
        .sim;
        assert!(two_way.net.put_acks > 0, "{}", kernel.name);
        assert!(one_way.net.store_requests > 0, "{}", kernel.name);
        assert!(
            one_way.net.put_acks < two_way.net.put_acks,
            "{}: acks {} → {}",
            kernel.name,
            two_way.net.put_acks,
            one_way.net.put_acks
        );
    }
}
