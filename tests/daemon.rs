//! Integration tests for `syncoptd`: daemon-mode answers must be
//! byte-identical to direct-mode execution, and one daemon must serve
//! many concurrent clients without interleaving or corrupting responses.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::sync::Arc;
use syncopt::client::DaemonClient;
use syncopt::commands::{execute, CmdOut, Format, Query};
use syncopt::core::corpus::corpus_program;
use syncopt::core::CacheStats;
use syncopt::daemon::Daemon;
use syncopt::kernels::all_kernels;
use syncopt::session::AnalysisSession;

fn test_socket(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("syncoptd-it-{}-{name}.sock", std::process::id()))
}

fn start(name: &str) -> (PathBuf, std::thread::JoinHandle<std::io::Result<()>>) {
    let path = test_socket(name);
    let _ = std::fs::remove_file(&path);
    let daemon = Daemon::bind(&path).expect("bind daemon socket");
    let handle = std::thread::spawn(move || daemon.run());
    (path, handle)
}

fn stop(path: &Path, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    DaemonClient::connect(path)
        .expect("connect for shutdown")
        .shutdown()
        .expect("shutdown");
    handle.join().unwrap().expect("daemon exits cleanly");
}

fn query(command: &str, name: &str, source: &str, format: Format) -> Query {
    Query {
        command: command.to_string(),
        file: name.to_string(),
        source: Some(source.to_string()),
        format,
        ..Query::default()
    }
}

#[test]
fn daemon_output_is_byte_identical_to_direct_mode_on_all_kernels() {
    let (path, handle) = start("kernels");
    let mut client = DaemonClient::connect(&path).expect("connect");
    for kernel in all_kernels(4) {
        for command in ["check", "explain", "lint", "profile"] {
            for format in [Format::Human, Format::Json] {
                let q = query(command, kernel.name, &kernel.source, format);
                let direct = execute(&mut AnalysisSession::new(), &q);
                let (remote, _) = client.query(&q).expect(command);
                assert_eq!(
                    remote, direct,
                    "{command} {} must be byte-identical over the daemon",
                    kernel.name
                );
            }
        }
    }
    stop(&path, handle);
}

#[test]
fn daemon_cache_warms_across_clients() {
    let (path, handle) = start("warm");
    let kernel = &all_kernels(4)[0];
    let q = query("check", kernel.name, &kernel.source, Format::Json);

    let (first, cold) = DaemonClient::connect(&path)
        .expect("client 1")
        .query(&q)
        .expect("cold query");
    assert!(cold.misses > 0, "first client builds the artifacts");

    // A *different* connection benefits from the shared session cache.
    let (second, warm) = DaemonClient::connect(&path)
        .expect("client 2")
        .query(&q)
        .expect("warm query");
    assert_eq!(second, first, "cache reuse must not change the bytes");
    assert_eq!(warm.misses, 0, "second client is served from cache");
    assert!(warm.hits > 0);
    stop(&path, handle);
}

/// N parallel clients hammer one daemon with a mixed workload; every
/// response must match the direct-mode result for *that* request — no
/// interleaved, truncated, or cross-wired payloads.
#[test]
fn parallel_clients_get_deterministic_uncorrupted_responses() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 5;

    // Mixed workload: distinct corpus programs + one shared kernel, over
    // several commands, so requests contend on the session lock while
    // carrying different payloads.
    let kernel = Arc::new(all_kernels(4)[0].clone());
    let workload: Arc<Vec<(Query, CmdOut)>> = Arc::new(
        (0..CLIENTS)
            .flat_map(|client| {
                let kernel = Arc::clone(&kernel);
                (0..ROUNDS).map(move |round| {
                    let (command, format) = match round % 3 {
                        0 => ("check", Format::Json),
                        1 => ("lint", Format::Human),
                        _ => ("explain", Format::Json),
                    };
                    if round % 2 == 0 {
                        let seed = (client * ROUNDS + round) as u64;
                        query(
                            command,
                            &format!("corpus-{seed}.ms"),
                            &corpus_program(seed),
                            format,
                        )
                    } else {
                        query(command, kernel.name, &kernel.source, format)
                    }
                })
            })
            .map(|q| {
                let expected = execute(&mut AnalysisSession::new(), &q);
                (q, expected)
            })
            .collect(),
    );

    let (path, handle) = start("parallel");
    let threads: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let path = path.clone();
            let workload = Arc::clone(&workload);
            std::thread::spawn(move || {
                let mut conn = DaemonClient::connect(&path).expect("connect");
                for round in 0..ROUNDS {
                    let (q, expected) = &workload[client * ROUNDS + round];
                    let (got, _) = conn.query(q).expect("query");
                    assert_eq!(
                        &got, expected,
                        "client {client} round {round} ({}) got a wrong or corrupted response",
                        q.command
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread must not panic");
    }
    stop(&path, handle);
}

/// Pins the `daemon.rs` claim that per-request cache deltas are "atomic
/// with respect to the cache": with 8 concurrent clients contending on
/// the shared session, every delta must be internally consistent, and —
/// because each delta is computed under the session lock around exactly
/// one query — the deltas must sum *exactly* to the global cache
/// counters. A race (delta windows overlapping another client's query)
/// would double-count or drop lookups and break the equality.
#[test]
fn concurrent_cache_deltas_sum_to_global_counters() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 5;
    let (path, handle) = start("deltas");
    let kernels = Arc::new(all_kernels(4));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let path = path.clone();
            let kernels = Arc::clone(&kernels);
            std::thread::spawn(move || {
                let mut conn = DaemonClient::connect(&path).expect("connect");
                let mut sum = CacheStats::default();
                for round in 0..ROUNDS {
                    let kernel = &kernels[(client + round) % kernels.len()];
                    let q = query("check", kernel.name, &kernel.source, Format::Json);
                    let (out, delta) = conn.query(&q).expect("query");
                    assert!(out.failure.is_none(), "kernel check must pass");
                    // Internal consistency: every check performs cache
                    // lookups, and nothing can be evicted that was not
                    // first inserted on a miss.
                    assert!(
                        delta.hits + delta.misses > 0,
                        "client {client} round {round}: empty delta"
                    );
                    assert!(
                        delta.evictions <= delta.misses,
                        "client {client} round {round}: more evictions than insertions"
                    );
                    sum.hits += delta.hits;
                    sum.misses += delta.misses;
                    sum.evictions += delta.evictions;
                }
                sum
            })
        })
        .collect();
    let mut total = CacheStats::default();
    for t in threads {
        let sum = t.join().expect("client thread must not panic");
        total.hits += sum.hits;
        total.misses += sum.misses;
        total.evictions += sum.evictions;
    }
    // Queries are the only cache traffic, so the summed deltas must
    // equal the session's global counters exactly.
    let stats = DaemonClient::connect(&path)
        .expect("connect for stats")
        .stats()
        .expect("stats");
    let global = |key: &str| {
        stats
            .get("cache")
            .and_then(|c| c.get(key))
            .and_then(syncopt::core::diag::json::Value::as_int)
            .unwrap_or(-1) as u64
    };
    assert_eq!(global("hits"), total.hits, "hit deltas must tile the total");
    assert_eq!(
        global("misses"),
        total.misses,
        "miss deltas must tile the total"
    );
    assert_eq!(
        global("evictions"),
        total.evictions,
        "eviction deltas must tile the total"
    );
    stop(&path, handle);
}
