//! NOTE: this property-based suite needs the `proptest` crate, which is
//! not available in offline builds. It is compiled only when the custom
//! `proptest` cfg is set:
//!
//!     1. re-add `proptest = "1"` to this crate's [dev-dependencies]
//!     2. RUSTFLAGS="--cfg proptest" cargo test
//!
#![cfg(proptest)]

//! Property-based tests over randomly generated producer/consumer litmus
//! programs:
//!
//! * the refined delay set is always a subset of the Shasha–Snir set;
//! * both computed delay sets are SC-preserving (checked operationally by
//!   the litmus explorer);
//! * the analysis is deterministic.

use proptest::prelude::*;
use syncopt::core::analyze;
use syncopt::frontend::prepare_program;
use syncopt::ir::lower::lower_main;
use syncopt::machine::litmus::is_sc_preserving;

/// One abstract statement of a generated litmus side.
#[derive(Debug, Clone)]
enum Stmt {
    Write { var: usize, val: i64 },
    Read { var: usize },
}

fn stmt_strategy(nvars: usize) -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (0..nvars, 1..5i64).prop_map(|(var, val)| Stmt::Write { var, val }),
        (0..nvars).prop_map(|var| Stmt::Read { var }),
    ]
}

#[derive(Debug, Clone)]
struct LitmusSpec {
    producer: Vec<Stmt>,
    consumer: Vec<Stmt>,
    use_postwait: bool,
    use_barrier: bool,
}

fn spec_strategy() -> impl Strategy<Value = LitmusSpec> {
    let nvars = 3usize;
    (
        prop::collection::vec(stmt_strategy(nvars), 1..4),
        prop::collection::vec(stmt_strategy(nvars), 1..4),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(producer, consumer, use_postwait, use_barrier)| LitmusSpec {
                producer,
                consumer,
                use_postwait,
                use_barrier,
            },
        )
}

fn render(spec: &LitmusSpec) -> String {
    let mut src = String::new();
    src.push_str("shared int V0; shared int V1; shared int V2;\n");
    if spec.use_postwait {
        src.push_str("flag F;\n");
    }
    src.push_str("fn main() {\n    int t;\n");
    src.push_str("    if (MYPROC == 0) {\n");
    for s in &spec.producer {
        match s {
            Stmt::Write { var, val } => src.push_str(&format!("        V{var} = {val};\n")),
            Stmt::Read { var } => src.push_str(&format!("        t = V{var};\n")),
        }
    }
    if spec.use_postwait {
        src.push_str("        post F;\n");
    }
    src.push_str("    } else {\n");
    if spec.use_postwait {
        src.push_str("        wait F;\n");
    }
    for s in &spec.consumer {
        match s {
            Stmt::Write { var, val } => src.push_str(&format!("        V{var} = {val};\n")),
            Stmt::Read { var } => src.push_str(&format!("        t = V{var};\n")),
        }
    }
    src.push_str("    }\n");
    if spec.use_barrier {
        src.push_str("    barrier;\n    t = V0;\n");
    }
    src.push_str("}\n");
    src
}

/// The analysis must stay tractable on programs an order of magnitude
/// larger than the kernels (the SPMD two-copy reduction keeps cycle
/// detection polynomial).
#[test]
fn analysis_scales_to_hundreds_of_accesses() {
    let mut src = String::from("shared int V0; shared int V1; shared int V2; shared int V3;\n");
    src.push_str("flag F; fn main() {\n    int t;\n");
    for i in 0..120 {
        match i % 4 {
            0 => src.push_str(&format!("    V{} = {};\n", i % 4, i)),
            1 => src.push_str(&format!("    t = V{};\n", i % 4)),
            2 => src.push_str("    barrier;\n"),
            _ => src.push_str(&format!("    V{} = t + {};\n", i % 4, i)),
        }
    }
    src.push_str("    if (MYPROC == 0) { post F; } else { wait F; }\n}\n");
    let cfg = lower_main(&prepare_program(&src).unwrap()).unwrap();
    assert!(cfg.accesses.len() >= 120, "{}", cfg.accesses.len());
    let start = std::time::Instant::now();
    let analysis = analyze(&cfg);
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs() < 30,
        "analysis took {elapsed:?} for {} accesses",
        cfg.accesses.len()
    );
    assert!(analysis.delay_sync.is_subset_of(&analysis.delay_ss));
    assert!(analysis.delay_sync.len() < analysis.delay_ss.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn refinement_is_always_a_subset(spec in spec_strategy()) {
        let src = render(&spec);
        let cfg = lower_main(&prepare_program(&src).unwrap()).unwrap();
        let analysis = analyze(&cfg);
        prop_assert!(
            analysis.delay_sync.is_subset_of(&analysis.delay_ss),
            "refined ⊄ baseline on:\n{src}"
        );
    }

    #[test]
    fn computed_delay_sets_preserve_sc(spec in spec_strategy()) {
        let src = render(&spec);
        let cfg = lower_main(&prepare_program(&src).unwrap()).unwrap();
        let analysis = analyze(&cfg);
        let ss_ok = is_sc_preserving(&cfg, &analysis.delay_ss, 2).unwrap();
        prop_assert!(ss_ok, "D_SS violates SC on:\n{src}");
        let sync_ok = is_sc_preserving(&cfg, &analysis.delay_sync, 2).unwrap();
        prop_assert!(sync_ok, "refined D violates SC on:\n{src}");
    }

    #[test]
    fn analysis_is_deterministic(spec in spec_strategy()) {
        let src = render(&spec);
        let cfg = lower_main(&prepare_program(&src).unwrap()).unwrap();
        let a = analyze(&cfg);
        let b = analyze(&cfg);
        prop_assert_eq!(a.delay_ss.pairs(), b.delay_ss.pairs());
        prop_assert_eq!(a.delay_sync.pairs(), b.delay_sync.pairs());
        prop_assert_eq!(a.sync.precedence.pairs(), b.sync.precedence.pairs());
    }

    #[test]
    fn delays_only_relate_program_ordered_accesses(spec in spec_strategy()) {
        let src = render(&spec);
        let cfg = lower_main(&prepare_program(&src).unwrap()).unwrap();
        let analysis = analyze(&cfg);
        let po = syncopt::ir::order::ProgramOrder::compute(&cfg);
        for (u, v) in analysis.delay_ss.pairs() {
            prop_assert!(
                po.access_precedes(&cfg, u, v),
                "delay ({u}, {v}) not in program order on:\n{src}"
            );
        }
    }
}
