//! NOTE: this property-based suite needs the `proptest` crate, which is
//! not available in offline builds. It is compiled only when the custom
//! `proptest` cfg is set:
//!
//!     1. re-add `proptest = "1"` to this crate's [dev-dependencies]
//!     2. RUSTFLAGS="--cfg proptest" cargo test
//!
#![cfg(proptest)]

//! Property-based tests of the optimizer: on randomly generated SPMD
//! programs (loops, barriers, post/wait, affine array traffic), the fully
//! optimized program must compute the same final shared memory as the
//! blocking original, never run slower, and contain no blocking accesses
//! after split-phase conversion.

use proptest::prelude::*;
use syncopt::machine::MachineConfig;
use syncopt::{Compiled, DelayChoice, OptLevel, RunResult, Syncopt, SyncoptError};

fn compile(
    src: &str,
    procs: u32,
    level: OptLevel,
    choice: DelayChoice,
) -> Result<Compiled, SyncoptError> {
    Syncopt::new(src)
        .procs(procs)
        .level(level)
        .delay(choice)
        .compile()
}

fn run(
    src: &str,
    config: &MachineConfig,
    level: OptLevel,
    choice: DelayChoice,
) -> Result<RunResult, SyncoptError> {
    Syncopt::new(src).level(level).delay(choice).run(config)
}

/// One abstract statement of a generated program body.
#[derive(Debug, Clone)]
enum Stmt {
    WriteOwn { arr: usize, off: u64, val: i64 },
    ReadNeighbor { arr: usize, off: u64 },
    ReadOwn { arr: usize, off: u64 },
    Work { cost: u64 },
    Barrier,
}

const B: u64 = 8; // elements per processor per array

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (0..2usize, 0..B, 1..9i64).prop_map(|(arr, off, val)| Stmt::WriteOwn { arr, off, val }),
        (0..2usize, 0..B).prop_map(|(arr, off)| Stmt::ReadNeighbor { arr, off }),
        (0..2usize, 0..B).prop_map(|(arr, off)| Stmt::ReadOwn { arr, off }),
        (10..200u64).prop_map(|cost| Stmt::Work { cost }),
        Just(Stmt::Barrier),
    ]
}

#[derive(Debug, Clone)]
struct ProgSpec {
    body: Vec<Stmt>,
    loop_steps: u64,
    postwait: bool,
}

fn spec_strategy() -> impl Strategy<Value = ProgSpec> {
    (
        prop::collection::vec(stmt_strategy(), 2..8),
        1..4u64,
        any::<bool>(),
    )
        .prop_map(|(body, loop_steps, postwait)| ProgSpec {
            body,
            loop_steps,
            postwait,
        })
}

fn render(spec: &ProgSpec, procs: u32) -> String {
    let n = B * procs as u64;
    let mut src = format!("shared int A0[{n}]; shared int A1[{n}];\n");
    if spec.postwait {
        src.push_str(&format!("flag F[{}];\n", procs));
    }
    src.push_str("fn main() {\n    int t;\n    int step;\n");
    src.push_str(&format!(
        "    for (step = 0; step < {}; step = step + 1) {{\n",
        spec.loop_steps
    ));
    for s in &spec.body {
        match s {
            Stmt::WriteOwn { arr, off, val } => src.push_str(&format!(
                "        A{arr}[MYPROC * {B} + {off}] = {val} + MYPROC;\n"
            )),
            Stmt::ReadNeighbor { arr, off } => src.push_str(&format!(
                "        if (MYPROC < PROCS - 1) {{ t = A{arr}[MYPROC * {B} + {B} + {off}]; }}\n"
            )),
            Stmt::ReadOwn { arr, off } => {
                src.push_str(&format!("        t = A{arr}[MYPROC * {B} + {off}];\n"))
            }
            Stmt::Work { cost } => src.push_str(&format!("        work({cost});\n")),
            Stmt::Barrier => src.push_str("        barrier;\n"),
        }
    }
    src.push_str("        barrier;\n"); // phase end keeps reads/writes sane
    src.push_str("    }\n");
    if spec.postwait {
        src.push_str("    post F[MYPROC];\n    wait F[(MYPROC + 1) % PROCS];\n");
    }
    src.push_str("}\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn optimized_programs_compute_the_same_memory(spec in spec_strategy()) {
        let procs = 4;
        let src = render(&spec, procs);
        let config = MachineConfig::cm5(procs);
        let base = run(&src, &config, OptLevel::Blocking, DelayChoice::SyncRefined)
            .unwrap_or_else(|e| panic!("blocking run failed: {e}\n{src}"));
        for level in [OptLevel::Pipelined, OptLevel::OneWay, OptLevel::Full] {
            let opt = run(&src, &config, level, DelayChoice::SyncRefined)
                .unwrap_or_else(|e| panic!("{level:?} run failed: {e}\n{src}"));
            prop_assert_eq!(
                &opt.sim.memory, &base.sim.memory,
                "memory diverged at {:?} on:\n{}", level, src
            );
            // Split-phase conversion carries a few cycles of counter
            // bookkeeping per access; on purely-local programs there is
            // nothing to overlap, so allow that constant overhead (but no
            // more than 5% + 64 cycles).
            let slack = base.sim.exec_cycles / 20 + 64;
            prop_assert!(
                opt.sim.exec_cycles <= base.sim.exec_cycles + slack,
                "{:?} slower ({} > {} + {}) on:\n{}",
                level, opt.sim.exec_cycles, base.sim.exec_cycles, slack, src
            );
        }
    }

    #[test]
    fn memory_is_machine_independent_for_synchronized_programs(spec in spec_strategy()) {
        // The generated programs are race-free at phase granularity (every
        // loop body ends with a barrier), so the final memory image must
        // not depend on machine timing parameters.
        let src = render(&spec, 4);
        let results: Vec<_> = MachineConfig::table1(4)
            .into_iter()
            .map(|cfg| {
                run(&src, &cfg, OptLevel::Full, DelayChoice::SyncRefined)
                    .unwrap_or_else(|e| panic!("{}: {e}\n{src}", cfg.name))
                    .sim
                    .memory
            })
            .collect();
        prop_assert_eq!(&results[0], &results[1], "CM-5 vs T3D diverged on:\n{}", src);
        prop_assert_eq!(&results[0], &results[2], "CM-5 vs DASH diverged on:\n{}", src);
    }

    #[test]
    fn split_phase_removes_all_blocking_accesses(spec in spec_strategy()) {
        let src = render(&spec, 4);
        let c = compile(&src, 4, OptLevel::Pipelined, DelayChoice::SyncRefined).unwrap();
        for block in &c.optimized.cfg.blocks {
            for instr in &block.instrs {
                prop_assert!(
                    !matches!(
                        instr,
                        syncopt::ir::cfg::Instr::GetShared { .. }
                            | syncopt::ir::cfg::Instr::PutShared { .. }
                    ),
                    "blocking access survived split-phase on:\n{}", src
                );
            }
        }
        c.optimized.cfg.validate().unwrap();
    }

    #[test]
    fn every_initiation_has_a_sync_on_every_path(spec in spec_strategy()) {
        // Structural safety: each get/put counter that appears in the CFG
        // is synced at least once somewhere reachable (stores excepted).
        let src = render(&spec, 4);
        let c = compile(&src, 4, OptLevel::OneWay, DelayChoice::SyncRefined).unwrap();
        use std::collections::HashSet;
        let mut initiated: HashSet<u32> = HashSet::new();
        let mut synced: HashSet<u32> = HashSet::new();
        for block in &c.optimized.cfg.blocks {
            for instr in &block.instrs {
                match instr {
                    syncopt::ir::cfg::Instr::GetInit { ctr, .. }
                    | syncopt::ir::cfg::Instr::PutInit { ctr, .. } => {
                        initiated.insert(ctr.0);
                    }
                    syncopt::ir::cfg::Instr::SyncCtr { ctr } => {
                        synced.insert(ctr.0);
                    }
                    _ => {}
                }
            }
        }
        for ctr in &initiated {
            prop_assert!(
                synced.contains(ctr),
                "counter ctr{} initiated but never synced on:\n{}", ctr, src
            );
        }
    }
}
