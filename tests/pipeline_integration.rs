//! End-to-end pipeline integration: source text → frontend → IR → analysis
//! → codegen → simulation, across optimization levels and machine models.

use syncopt::machine::MachineConfig;
use syncopt::{Compiled, DelayChoice, OptLevel, RunResult, Syncopt, SyncoptError};

fn compile(
    src: &str,
    procs: u32,
    level: OptLevel,
    choice: DelayChoice,
) -> Result<Compiled, SyncoptError> {
    Syncopt::new(src)
        .procs(procs)
        .level(level)
        .delay(choice)
        .compile()
}

fn run(
    src: &str,
    config: &MachineConfig,
    level: OptLevel,
    choice: DelayChoice,
) -> Result<RunResult, SyncoptError> {
    Syncopt::new(src).level(level).delay(choice).run(config)
}

const LEVELS: [OptLevel; 4] = [
    OptLevel::Blocking,
    OptLevel::Pipelined,
    OptLevel::OneWay,
    OptLevel::Full,
];

const PROGRAMS: &[(&str, &str)] = &[
    (
        "producer_consumer",
        r#"
        shared int Data[16]; flag ready;
        fn main() {
            if (MYPROC == 0) {
                int i;
                for (i = 0; i < 16; i = i + 1) { Data[i] = i * i; }
                post ready;
            }
            wait ready;
            int v; v = Data[MYPROC];
            work(v);
        }
        "#,
    ),
    (
        "phase_exchange",
        r#"
        shared double Grid[32]; shared double Next[32];
        fn main() {
            int t;
            double left;
            for (t = 0; t < 3; t = t + 1) {
                left = 0.0;
                if (MYPROC > 0) { left = Grid[MYPROC * 4 - 1]; }
                work(200);
                Next[MYPROC * 4] = left + 1.0;
                barrier;
                Grid[MYPROC * 4] = Next[MYPROC * 4];
                barrier;
            }
        }
        "#,
    ),
    (
        "lock_counter",
        r#"
        shared int Total; lock guard;
        fn main() {
            int i;
            for (i = 0; i < 3; i = i + 1) {
                work(50);
                lock guard;
                int v; v = Total;
                Total = v + 1;
                unlock guard;
            }
        }
        "#,
    ),
    (
        "functions_and_calls",
        r#"
        shared int Acc[8]; flag done[8];
        fn bump(int slot, int amount) {
            int v; v = Acc[slot];
            Acc[slot] = v + amount;
        }
        fn main() {
            bump(MYPROC, 5);
            bump(MYPROC, 7);
            post done[MYPROC];
            wait done[(MYPROC + 1) % PROCS];
        }
        "#,
    ),
];

#[test]
fn every_program_compiles_at_every_level() {
    for (name, src) in PROGRAMS {
        for level in LEVELS {
            let c = compile(src, 8, level, DelayChoice::SyncRefined)
                .unwrap_or_else(|e| panic!("{name} at {level:?}: {e}"));
            c.optimized
                .cfg
                .validate()
                .unwrap_or_else(|e| panic!("{name} at {level:?}: invalid CFG: {e}"));
        }
    }
}

#[test]
fn optimization_levels_preserve_final_memory() {
    let config = MachineConfig::cm5(8);
    for (name, src) in PROGRAMS {
        let baseline = run(src, &config, OptLevel::Blocking, DelayChoice::SyncRefined)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for level in LEVELS {
            for choice in [DelayChoice::ShashaSnir, DelayChoice::SyncRefined] {
                let r = run(src, &config, level, choice)
                    .unwrap_or_else(|e| panic!("{name} at {level:?}/{choice:?}: {e}"));
                assert_eq!(
                    r.sim.memory, baseline.sim.memory,
                    "{name} at {level:?}/{choice:?}: memory diverged"
                );
            }
        }
    }
}

#[test]
fn full_optimization_never_slows_programs_down() {
    let config = MachineConfig::cm5(8);
    for (name, src) in PROGRAMS {
        let blocking = run(src, &config, OptLevel::Blocking, DelayChoice::SyncRefined)
            .unwrap()
            .sim
            .exec_cycles;
        let full = run(src, &config, OptLevel::Full, DelayChoice::SyncRefined)
            .unwrap()
            .sim
            .exec_cycles;
        // Allow the constant split-phase bookkeeping overhead (counters),
        // which purely-local access sequences cannot amortize.
        let slack = blocking / 20 + 64;
        assert!(
            full <= blocking + slack,
            "{name}: full {full} > blocking {blocking} + {slack}"
        );
    }
}

#[test]
fn all_three_machines_run_all_programs() {
    for config in MachineConfig::table1(8) {
        for (name, src) in PROGRAMS {
            let r = run(src, &config, OptLevel::Full, DelayChoice::SyncRefined)
                .unwrap_or_else(|e| panic!("{name} on {}: {e}", config.name));
            assert!(r.sim.barriers_aligned, "{name} on {}", config.name);
        }
    }
}

#[test]
fn faster_machines_run_faster() {
    // T3D has far lower remote latency than CM-5; communication-bound
    // programs must finish sooner.
    let (_, src) = PROGRAMS[1]; // phase_exchange
    let cm5 = run(
        src,
        &MachineConfig::cm5(8),
        OptLevel::Blocking,
        DelayChoice::SyncRefined,
    )
    .unwrap()
    .sim
    .exec_cycles;
    let t3d = run(
        src,
        &MachineConfig::t3d(8),
        OptLevel::Blocking,
        DelayChoice::SyncRefined,
    )
    .unwrap()
    .sim
    .exec_cycles;
    assert!(t3d < cm5, "t3d {t3d} vs cm5 {cm5}");
}

#[test]
fn processor_counts_scale_results() {
    let (_, src) = PROGRAMS[2]; // lock_counter: Total = 3 × procs
    for procs in [2u32, 4, 16] {
        let r = run(
            src,
            &MachineConfig::cm5(procs),
            OptLevel::Full,
            DelayChoice::SyncRefined,
        )
        .unwrap();
        let total = r
            .sim
            .memory
            .iter()
            .find(|(v, _)| r.compiled.source_cfg.vars.info(*v).name == "Total")
            .map(|(_, vals)| vals[0])
            .unwrap();
        assert_eq!(total, syncopt::machine::Value::Int(3 * procs as i64));
    }
}
