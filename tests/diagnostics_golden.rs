//! Golden tests for `syncoptc check` diagnostics over every sample
//! program in `programs/`.
//!
//! Each `programs/NAME.ms` has a golden transcript
//! `tests/golden/NAME.check` holding the exact stdout of
//! `syncoptc check programs/NAME.ms` plus a trailing `exit: N` line.
//! Regenerate after an intentional diagnostics change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test diagnostics_golden
//! ```

use std::path::PathBuf;
use std::process::Command;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

#[test]
fn check_output_matches_golden_transcripts() {
    let root = repo_root();
    let mut programs: Vec<_> = std::fs::read_dir(root.join("programs"))
        .expect("programs/ should exist")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "ms"))
        .collect();
    programs.sort();
    assert!(!programs.is_empty());

    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut failures = Vec::new();
    for program in programs {
        let stem = program.file_stem().unwrap().to_string_lossy().into_owned();
        let rel = format!("programs/{stem}.ms");
        let out = Command::new(env!("CARGO_BIN_EXE_syncoptc"))
            .args(["check", &rel, "--procs", "4"])
            .current_dir(&root)
            .output()
            .expect("binary should run");
        let transcript = format!(
            "{}exit: {}\n",
            String::from_utf8_lossy(&out.stdout),
            out.status.code().unwrap_or(-1)
        );
        let golden_path = root.join(format!("tests/golden/{stem}.check"));
        if update {
            std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
            std::fs::write(&golden_path, &transcript).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!("missing golden {golden_path:?} ({e}); run with UPDATE_GOLDEN=1")
        });
        if transcript != golden {
            failures.push(format!(
                "{stem}: transcript diverged from {golden_path:?}\n\
                 --- golden ---\n{golden}\n--- actual ---\n{transcript}"
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn racy_litmus_reports_proven_races_with_spans() {
    // Independent of the transcripts: the deliberately racy litmus must
    // produce at least one *proven* race whose caret points at the
    // racing statement.
    let root = repo_root();
    let out = Command::new(env!("CARGO_BIN_EXE_syncoptc"))
        .args(["check", "programs/figure1_racy.ms"])
        .current_dir(&root)
        .output()
        .expect("binary should run");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[R001]"), "{stdout}");
    assert!(stdout.contains("error[R002]"), "{stdout}");
    assert!(
        stdout.contains("proven write-write race on `Data`"),
        "{stdout}"
    );
    assert!(stdout.contains("Data = MYPROC;"), "{stdout}");
    assert!(stdout.contains('^'), "{stdout}");
    // Both races anchor at the write on line 8 of the litmus file.
    assert!(stdout.contains("figure1_racy.ms:8:5"), "{stdout}");
}
