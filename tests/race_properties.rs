//! Consistency properties tying the race detector to the delay-set
//! analysis it is built on, checked over a deterministic corpus (the
//! sample programs plus the evaluation kernels at several machine sizes).
//!
//! The central property: a pair the detector calls *ordered by
//! precedence* must have lost a direction in the step-5 oriented
//! conflict set — i.e. it is absent from the oriented set's unordered
//! conflicts. If this ever breaks, the race check and the optimizer
//! disagree about which conflicts synchronization covers.

use syncopt::core::conflict::ConflictSet;
use syncopt::core::races::{classify_races, Confidence, SyncEvidence};
use syncopt::core::sync::{analyze_sync, SyncOptions};
use syncopt::frontend::prepare_program;
use syncopt::ir::cfg::Cfg;
use syncopt::ir::lower::lower_main;

fn corpus() -> Vec<(String, String)> {
    let mut out = Vec::new();
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../programs");
    let mut entries: Vec<_> = std::fs::read_dir(root)
        .expect("programs/ should exist")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "ms"))
        .collect();
    entries.sort();
    for path in entries {
        out.push((
            path.file_name().unwrap().to_string_lossy().into_owned(),
            std::fs::read_to_string(&path).unwrap(),
        ));
    }
    for procs in [2, 4, 8] {
        for k in syncopt::kernels::all_kernels(procs) {
            out.push((format!("{}@{procs}", k.name), k.source));
        }
    }
    out
}

fn lower(src: &str) -> Cfg {
    lower_main(&prepare_program(src).expect("corpus parses")).expect("corpus lowers")
}

#[test]
fn ordered_pairs_are_absent_from_oriented_unordered_conflicts() {
    for (name, src) in corpus() {
        let cfg = lower(&src);
        for procs in [None, Some(4), Some(8)] {
            let opts = SyncOptions {
                procs,
                ..SyncOptions::default()
            };
            let conflicts = ConflictSet::build_bounded(&cfg, procs);
            let sync = analyze_sync(&cfg, &opts);
            let races = classify_races(&cfg, &conflicts, &sync, &opts);
            for o in &races.ordered {
                if let SyncEvidence::Precedence { first, second, .. } = o.evidence {
                    // Step 5 must have dropped the direction precedence
                    // forbids, so the pair is no longer bidirectional in
                    // the oriented conflict set.
                    assert!(
                        !sync.oriented.edge(second, first),
                        "{name} (procs {procs:?}): step 5 should have dropped \
                         the {second}->{first} direction of pair {:?}",
                        o.pair
                    );
                    let (a, b) = o.pair;
                    assert!(
                        !(sync.oriented.edge(a, b) && sync.oriented.edge(b, a)),
                        "{name} (procs {procs:?}): precedence-ordered pair \
                         {:?} kept both directions after orientation",
                        o.pair
                    );
                }
            }
        }
    }
}

#[test]
fn races_and_ordered_partition_the_data_conflicts() {
    for (name, src) in corpus() {
        let cfg = lower(&src);
        let opts = SyncOptions::default();
        let conflicts = ConflictSet::build_bounded(&cfg, opts.procs);
        let sync = analyze_sync(&cfg, &opts);
        let races = classify_races(&cfg, &conflicts, &sync, &opts);
        let data_pairs: Vec<_> = conflicts
            .unordered_pairs()
            .into_iter()
            .filter(|&(a, b)| {
                cfg.accesses.info(a).kind.is_data() && cfg.accesses.info(b).kind.is_data()
            })
            .collect();
        let mut classified: Vec<_> = races
            .races
            .iter()
            .map(|r| r.pair)
            .chain(races.ordered.iter().map(|o| o.pair))
            .collect();
        classified.sort();
        let mut expected = data_pairs;
        expected.sort();
        assert_eq!(classified, expected, "{name}");
    }
}

#[test]
fn kernels_are_race_free_at_every_machine_size() {
    for procs in [2, 4, 8, 16] {
        for k in syncopt::kernels::all_kernels(procs) {
            let cfg = lower(&k.source);
            let opts = SyncOptions {
                procs: Some(procs),
                ..SyncOptions::default()
            };
            let conflicts = ConflictSet::build_bounded(&cfg, opts.procs);
            let sync = analyze_sync(&cfg, &opts);
            let races = classify_races(&cfg, &conflicts, &sync, &opts);
            assert!(races.race_free(), "{}@{procs}: {:?}", k.name, races.races);
        }
    }
}

#[test]
fn proven_races_only_in_sync_free_programs() {
    for (name, src) in corpus() {
        let cfg = lower(&src);
        let races = syncopt::core::detect_races(&cfg, &SyncOptions::default());
        let has_sync = cfg.accesses.iter().any(|(_, i)| i.kind.is_sync());
        for r in &races.races {
            if has_sync {
                assert_eq!(r.confidence, Confidence::UnprovenOrdered, "{name}: {r:?}");
            } else {
                assert_eq!(r.confidence, Confidence::ProvenRacy, "{name}: {r:?}");
            }
        }
    }
}
