//! Differential suite for the simulator's event-queue engines.
//!
//! The calendar-queue engine ([`EngineKind::Calendar`]) is a performance
//! rewrite of the original binary-heap simulator, which is kept compiled
//! as [`EngineKind::ReferenceHeap`]. Both dispatch events in identical
//! `(time, seq)` order, so **every observable output must be
//! bit-identical** — execution time, per-processor cycle accounting,
//! message counts, stall breakdown, the final memory image, and the
//! barrier-site sequences. This suite proves that over the five
//! evaluation kernels × three optimization levels × three machine sizes,
//! and checks the cycle-conservation invariant (per-processor accounted
//! cycles sum exactly to the execution time) on every run of both
//! engines.

use syncopt::machine::{
    simulate_configured, simulate_sharded, simulate_sharded_with, EngineKind, MachineConfig,
    ShardPartition, SimOutputs, SimResult,
};
use syncopt::{DelayChoice, OptLevel, Syncopt};
use syncopt_kernels::{kernels_with, KernelParams};

/// The Figure 12 optimization ladder (duplicated from the bench crate,
/// which depends on this one).
const LEVELS: [(&str, OptLevel, DelayChoice); 3] = [
    ("unoptimized", OptLevel::Pipelined, DelayChoice::ShashaSnir),
    ("pipelined", OptLevel::Pipelined, DelayChoice::SyncRefined),
    ("one-way", OptLevel::OneWay, DelayChoice::SyncRefined),
];

const PROC_COUNTS: [u32; 3] = [1, 4, 16];

fn run_engine(
    source: &str,
    procs: u32,
    level: OptLevel,
    delay: DelayChoice,
    engine: EngineKind,
) -> SimResult {
    let compiled = Syncopt::new(source)
        .procs(procs)
        .level(level)
        .delay(delay)
        .compile()
        .expect("kernel compiles");
    simulate_configured(
        &compiled.optimized.cfg,
        &MachineConfig::cm5(procs),
        engine,
        SimOutputs::full(),
    )
    .expect("kernel simulates")
}

fn assert_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.exec_cycles, b.exec_cycles, "{what}: exec_cycles");
    assert_eq!(a.proc_cycles, b.proc_cycles, "{what}: proc_cycles");
    assert_eq!(a.net, b.net, "{what}: net");
    assert_eq!(a.stalls, b.stalls, "{what}: stalls");
    assert_eq!(a.memory, b.memory, "{what}: memory");
    assert_eq!(a.barriers_aligned, b.barriers_aligned, "{what}: aligned");
    assert_eq!(a.barrier_seqs, b.barrier_seqs, "{what}: barrier_seqs");
    assert_eq!(a.metrics.per_proc, b.metrics.per_proc, "{what}: per_proc");
    assert_eq!(
        a.metrics.barrier_epochs, b.metrics.barrier_epochs,
        "{what}: barrier_epochs"
    );
    assert_eq!(a.metrics.latency, b.metrics.latency, "{what}: latency");
}

fn assert_cycles_conserve(r: &SimResult, what: &str) {
    assert_eq!(r.metrics.per_proc.len(), r.proc_cycles.len(), "{what}");
    for (proc, p) in r.metrics.per_proc.iter().enumerate() {
        let accounted = p.busy + p.sync + p.barrier + p.wait + p.lock + p.network_wait + p.idle;
        assert_eq!(
            accounted, r.exec_cycles,
            "{what} proc {proc}: cycle accounting must conserve"
        );
    }
}

#[test]
fn engines_agree_bit_for_bit_across_kernels_levels_and_sizes() {
    for procs in PROC_COUNTS {
        for kernel in kernels_with(&KernelParams::bench(procs)) {
            for (label, level, delay) in LEVELS {
                let what = format!("{} {label} p{procs}", kernel.name);
                let calendar =
                    run_engine(&kernel.source, procs, level, delay, EngineKind::Calendar);
                let reference = run_engine(
                    &kernel.source,
                    procs,
                    level,
                    delay,
                    EngineKind::ReferenceHeap,
                );
                assert_identical(&calendar, &reference, &what);
                assert_cycles_conserve(&calendar, &what);
                assert_cycles_conserve(&reference, &what);
                // The dense-state engine must never hash in the cycle
                // loop; the reference engine always did.
                assert_eq!(calendar.metrics.work.hash_lookups, 0, "{what}");
                assert!(reference.metrics.work.hash_lookups > 0, "{what}");
                // Same schedule ⇒ same event volume.
                assert_eq!(
                    calendar.metrics.work.events_dequeued, reference.metrics.work.events_dequeued,
                    "{what}"
                );
            }
        }
    }
}

#[test]
fn lean_outputs_change_nothing_but_the_extractions() {
    for kernel in kernels_with(&KernelParams::bench(4)) {
        let compiled = Syncopt::new(&kernel.source)
            .procs(4)
            .level(OptLevel::OneWay)
            .compile()
            .expect("kernel compiles");
        let config = MachineConfig::cm5(4);
        let full = simulate_configured(
            &compiled.optimized.cfg,
            &config,
            EngineKind::Calendar,
            SimOutputs::full(),
        )
        .unwrap();
        let lean = simulate_configured(
            &compiled.optimized.cfg,
            &config,
            EngineKind::Calendar,
            SimOutputs::lean(),
        )
        .unwrap();
        assert_eq!(full.exec_cycles, lean.exec_cycles, "{}", kernel.name);
        assert_eq!(full.net, lean.net, "{}", kernel.name);
        assert_eq!(full.stalls, lean.stalls, "{}", kernel.name);
        assert!(!full.memory.is_empty(), "{}", kernel.name);
        assert!(lean.memory.is_empty(), "{}", kernel.name);
        assert!(lean.barrier_seqs.is_empty(), "{}", kernel.name);
    }
}

/// Machine sizes for the sharded-engine matrix. The two large sizes run
/// with trimmed kernel parameters (see [`shard_params`]) so the debug
/// build stays test-sized while still exercising the multi-window,
/// multi-mailbox regime the small sizes cannot reach.
const SHARD_PROC_COUNTS: [u32; 4] = [4, 16, 64, 256];

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Kernel sizing for the sharded matrix: the standard bench shape below
/// 64 processors, and a trimmed shape above — event volume on the
/// lockstep kernels grows quadratically with the machine size, and the
/// matrix multiplies every run by four shard counts.
fn shard_params(procs: u32) -> KernelParams {
    if procs >= 64 {
        KernelParams {
            procs,
            elements_per_proc: 2,
            steps: 2,
            work_per_element: 40,
        }
    } else {
        KernelParams::bench(procs)
    }
}

/// The tentpole guarantee: the sharded conservative-lookahead engine is
/// bit-identical to the calendar engine at every shard count, across
/// kernels, optimization levels, and machine sizes up to 256 simulated
/// processors — and every sharded run conserves cycles per processor.
#[test]
fn sharded_engine_is_bit_identical_to_calendar_at_every_shard_count() {
    for procs in SHARD_PROC_COUNTS {
        let config = MachineConfig::cm5(procs);
        for kernel in kernels_with(&shard_params(procs)) {
            for (label, level, delay) in LEVELS {
                let compiled = Syncopt::new(&kernel.source)
                    .procs(procs)
                    .level(level)
                    .delay(delay)
                    .compile()
                    .expect("kernel compiles");
                let calendar = simulate_configured(
                    &compiled.optimized.cfg,
                    &config,
                    EngineKind::Calendar,
                    SimOutputs::full(),
                )
                .expect("calendar engine runs");
                for shards in SHARD_COUNTS {
                    let what = format!("{} {label} p{procs} s{shards}", kernel.name);
                    let sharded = simulate_sharded(
                        &compiled.optimized.cfg,
                        &config,
                        shards,
                        SimOutputs::full(),
                    )
                    .expect("sharded engine runs");
                    assert_identical(&calendar, &sharded, &what);
                    assert_cycles_conserve(&sharded, &what);
                }
            }
        }
    }
}

/// The partition axis: every strategy — contiguous Block, round-robin
/// Cyclic, and the traffic-profiled greedy assignment — produces
/// bit-identical observables on every kernel at 2, 4, and 8 shards, and
/// conserves cycles per processor. Only *where* each simulated processor
/// lives changes; the dispatch order (and thus every counter the user
/// can see) does not.
#[test]
fn partition_strategies_are_bit_identical_to_calendar() {
    let procs = 16;
    let config = MachineConfig::cm5(procs);
    for kernel in kernels_with(&shard_params(procs)) {
        let compiled = Syncopt::new(&kernel.source)
            .procs(procs)
            .level(OptLevel::OneWay)
            .delay(DelayChoice::SyncRefined)
            .compile()
            .expect("kernel compiles");
        let calendar = simulate_configured(
            &compiled.optimized.cfg,
            &config,
            EngineKind::Calendar,
            SimOutputs::full(),
        )
        .expect("calendar engine runs");
        for partition in ShardPartition::ALL {
            for shards in [2usize, 4, 8] {
                let what = format!("{} p{procs} s{shards} {partition}", kernel.name);
                let sharded = simulate_sharded_with(
                    &compiled.optimized.cfg,
                    &config,
                    shards,
                    partition,
                    SimOutputs::full(),
                )
                .expect("sharded engine runs");
                assert_identical(&calendar, &sharded, &what);
                assert_cycles_conserve(&sharded, &what);
                // Per-shard event counts always sum to the global count,
                // no matter how processors are distributed.
                let shard_events: u64 = sharded.metrics.shards.iter().map(|s| s.events).sum();
                assert_eq!(
                    shard_events, sharded.metrics.work.events_dequeued,
                    "{what}: shard event accounting"
                );
            }
        }
    }
}

#[test]
fn parallel_sweep_reports_are_thread_count_invariant() {
    let serial = syncopt::simbench::run_sim_bench(true, 1).expect("sim bench runs");
    let threaded = syncopt::simbench::run_sim_bench(true, 4).expect("sim bench runs");
    assert_eq!(serial.configs.len(), threaded.configs.len());
    for (a, b) in serial.configs.iter().zip(threaded.configs.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.exec_cycles, b.exec_cycles, "{}", a.id);
        assert_eq!(a.counters, b.counters, "{}", a.id);
    }
}
