//! Integration tests for the `syncoptd` service telemetry layer:
//! `syncopt.metrics.v1` stats, Prometheus text exposition, the request
//! log → `daemon-trace` timeline with exact span accounting, metric-name
//! drift against `docs/OBSERVABILITY.md`, and byte-identity of query
//! responses with telemetry on, off, and in direct mode.

#![cfg(unix)]

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use syncopt::client::DaemonClient;
use syncopt::commands::{execute, Format, Query};
use syncopt::core::diag::json::Value;
use syncopt::daemon::Daemon;
use syncopt::kernels::all_kernels;
use syncopt::session::AnalysisSession;
use syncopt::telemetry::{
    daemon_chrome_trace, parse_reqlog, verify_reqlog_accounting, TelemetryConfig, METRICS_SCHEMA,
    SERVICE_METRIC_NAMES, SERVICE_VERSION,
};

fn test_socket(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("syncoptd-svc-{}-{name}.sock", std::process::id()))
}

fn start_with(
    name: &str,
    telemetry: Option<TelemetryConfig>,
) -> (PathBuf, std::thread::JoinHandle<std::io::Result<()>>) {
    let path = test_socket(name);
    let _ = std::fs::remove_file(&path);
    let daemon =
        Daemon::bind_with(&path, AnalysisSession::new(), telemetry).expect("bind daemon socket");
    let handle = std::thread::spawn(move || daemon.run());
    (path, handle)
}

fn stop(path: &Path, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    DaemonClient::connect(path)
        .expect("connect for shutdown")
        .shutdown()
        .expect("shutdown");
    handle.join().unwrap().expect("daemon exits cleanly");
}

fn check_query(name: &str, source: &str) -> Query {
    Query {
        command: "check".to_string(),
        file: name.to_string(),
        source: Some(source.to_string()),
        format: Format::Json,
        ..Query::default()
    }
}

/// Serves every evaluation kernel, then asserts the `stats` op returns a
/// `syncopt.metrics.v1` document with per-op request counts and
/// non-empty latency histograms (the PR's headline acceptance check).
#[test]
fn stats_returns_metrics_v1_with_per_op_counts_and_histograms() {
    let (path, handle) = start_with("metricsv1", Some(TelemetryConfig::default()));
    let mut client = DaemonClient::connect(&path).expect("connect");
    let kernels = all_kernels(4);
    for kernel in &kernels {
        let (out, _) = client
            .query(&check_query(kernel.name, &kernel.source))
            .expect("check");
        assert!(out.failure.is_none(), "{} must check clean", kernel.name);
    }
    let stats = client.stats().expect("stats");
    assert!(stats.get("uptime_ms").and_then(Value::as_int).is_some());
    assert_eq!(
        stats.get("version").and_then(Value::as_str),
        Some(SERVICE_VERSION)
    );
    let served = stats.get("requests_total").and_then(Value::as_int).unwrap();
    assert!(
        served >= kernels.len() as i64,
        "requests_total {served} must count the kernel queries"
    );

    let doc = stats.get("metrics").expect("metrics document");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some(METRICS_SCHEMA)
    );
    let registry = doc.get("metrics").expect("registry snapshot");
    let checks = registry
        .get("counters")
        .and_then(|c| c.get("rpc.requests_total{op=\"check\"}"))
        .and_then(Value::as_int);
    assert_eq!(
        checks,
        Some(kernels.len() as i64),
        "per-op counter must count one check per kernel"
    );
    let hist = registry
        .get("histograms")
        .and_then(|h| h.get("rpc.request_latency_us{op=\"check\"}"))
        .expect("per-op latency histogram");
    assert_eq!(
        hist.get("count").and_then(Value::as_int),
        Some(kernels.len() as i64)
    );
    assert!(
        hist.get("sum_us").and_then(Value::as_int).unwrap_or(0) > 0,
        "latency histogram must be non-empty: {hist}"
    );
    let buckets = hist.get("buckets").and_then(Value::as_arr).unwrap();
    let filled: i64 = buckets.iter().filter_map(Value::as_int).sum();
    assert_eq!(
        filled,
        kernels.len() as i64,
        "every observation lands in a bucket"
    );

    // Every metric the registry actually carries must be declared in
    // SERVICE_METRIC_NAMES (the documented glossary).
    for section in ["counters", "gauges", "histograms"] {
        let Some(Value::Obj(fields)) = registry.get(section) else {
            panic!("registry section {section} missing");
        };
        for (key, _) in fields {
            let base = key.split('{').next().unwrap();
            assert!(
                SERVICE_METRIC_NAMES.contains(&base),
                "daemon emits undeclared metric `{base}` (add it to \
                 SERVICE_METRIC_NAMES and docs/OBSERVABILITY.md)"
            );
        }
    }
    stop(&path, handle);
}

/// The `metrics` op must emit well-formed Prometheus text exposition:
/// every line is a `# TYPE` comment or a `name[{labels}] value` sample,
/// histogram buckets are cumulative and end at `+Inf` = `_count`.
#[test]
fn prometheus_exposition_is_well_formed() {
    let (path, handle) = start_with("prom", Some(TelemetryConfig::default()));
    let mut client = DaemonClient::connect(&path).expect("connect");
    let kernel = &all_kernels(4)[0];
    client
        .query(&check_query(kernel.name, &kernel.source))
        .expect("check");
    let text = client.metrics().expect("metrics");
    assert!(text.contains("# TYPE syncopt_rpc_requests_total counter"));
    let mut typed = BTreeSet::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().expect("TYPE name");
            let kind = parts.next().expect("TYPE kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "bad TYPE kind: {line}"
            );
            assert!(typed.insert(name.to_string()), "duplicate TYPE for {name}");
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("sample must be `name value`");
        value
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("unparsable sample value in `{line}`: {e}"));
        assert!(
            name.starts_with("syncopt_"),
            "unprefixed sample name: {line}"
        );
        samples.push(name.to_string());
    }
    // Every sample's family (name up to the first `{`, minus histogram
    // suffixes) must have exactly one TYPE comment.
    for name in &samples {
        let base = name.split('{').next().unwrap();
        let family = base
            .strip_suffix("_bucket")
            .or_else(|| base.strip_suffix("_sum"))
            .or_else(|| base.strip_suffix("_count"))
            .unwrap_or(base);
        assert!(
            typed.contains(family),
            "sample {name} has no # TYPE comment for {family}"
        );
    }
    // Histogram buckets are cumulative, ending at +Inf == _count.
    let hist_prefix = "syncopt_rpc_request_latency_us_bucket{op=\"check\",le=";
    let bucket_counts: Vec<u64> = text
        .lines()
        .filter(|l| l.starts_with(hist_prefix))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
        .collect();
    assert!(
        !bucket_counts.is_empty(),
        "no buckets for the check histogram"
    );
    assert!(
        bucket_counts.windows(2).all(|w| w[0] <= w[1]),
        "bucket counts must be cumulative: {bucket_counts:?}"
    );
    let count_line = "syncopt_rpc_request_latency_us_count{op=\"check\"} ";
    let total: u64 = text
        .lines()
        .find(|l| l.starts_with(count_line))
        .and_then(|l| l.rsplit_once(' ').unwrap().1.parse().ok())
        .expect("histogram _count sample");
    assert_eq!(
        *bucket_counts.last().unwrap(),
        total,
        "+Inf bucket must equal _count"
    );
    stop(&path, handle);
}

/// The serving-timeline acceptance check: 8 concurrent clients × 5
/// rounds against a request-logging daemon; the log parses, every
/// request's phase spans sum exactly to its recorded wall time, and the
/// Chrome Trace export carries one slice per request plus the nested
/// phase slices.
#[test]
fn request_log_accounts_spans_and_exports_a_timeline() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 5;
    let log =
        std::env::temp_dir().join(format!("syncoptd-svc-{}-reqlog.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log);
    let (path, handle) = start_with(
        "timeline",
        Some(TelemetryConfig {
            log: Some(log.clone()),
            slow_us: None,
            scrub: false,
        }),
    );
    let kernels = Arc::new(all_kernels(4));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let path = path.clone();
            let kernels = Arc::clone(&kernels);
            std::thread::spawn(move || {
                let mut conn = DaemonClient::connect(&path).expect("connect");
                for round in 0..ROUNDS {
                    let kernel = &kernels[(client + round) % kernels.len()];
                    conn.query(&check_query(kernel.name, &kernel.source))
                        .expect("query");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread must not panic");
    }
    stop(&path, handle);

    let text = std::fs::read_to_string(&log).expect("request log exists");
    let entries = parse_reqlog(&text).expect("request log parses");
    let queries = entries.iter().filter(|e| e.op == "check").count();
    assert_eq!(queries, CLIENTS * ROUNDS, "one log line per query");
    // Request spans sum exactly to recorded wall time, ids monotonic.
    verify_reqlog_accounting(&entries).expect("span accounting");

    let trace = daemon_chrome_trace(&entries);
    assert_eq!(
        trace.get("schema").and_then(Value::as_str),
        Some(syncopt::TRACE_SCHEMA)
    );
    assert_eq!(
        trace.get("requests").and_then(Value::as_int),
        Some(entries.len() as i64)
    );
    let conns: BTreeSet<u64> = entries.iter().map(|e| e.conn).collect();
    assert!(
        conns.len() >= CLIENTS,
        "at least one track per client, got {}",
        conns.len()
    );
    let events = trace.get("traceEvents").and_then(Value::as_arr).unwrap();
    // One meta per connection, plus per request: 1 slice + 3 phases.
    assert_eq!(events.len(), conns.len() + entries.len() * 4);
    let _ = std::fs::remove_file(&log);
}

/// Telemetry is strictly observational: query responses must be
/// byte-identical across direct mode, a telemetry-enabled daemon, and a
/// `--no-telemetry` daemon — and the disabled daemon must reject the
/// `metrics` op while still answering `stats` with service fields.
#[test]
fn responses_are_byte_identical_with_telemetry_on_off_and_direct() {
    let (on_path, on_handle) = start_with("ident-on", Some(TelemetryConfig::default()));
    let (off_path, off_handle) = start_with("ident-off", None);
    let mut on = DaemonClient::connect(&on_path).expect("connect on");
    let mut off = DaemonClient::connect(&off_path).expect("connect off");
    for kernel in all_kernels(4).iter().take(3) {
        for command in ["check", "explain", "profile"] {
            for format in [Format::Human, Format::Json] {
                let q = Query {
                    command: command.to_string(),
                    format,
                    ..check_query(kernel.name, &kernel.source)
                };
                let direct = execute(&mut AnalysisSession::new(), &q);
                let (with_telemetry, _) = on.query(&q).expect(command);
                let (without_telemetry, _) = off.query(&q).expect(command);
                assert_eq!(
                    with_telemetry, direct,
                    "{command} {}: telemetry daemon must match direct mode",
                    kernel.name
                );
                assert_eq!(
                    without_telemetry, with_telemetry,
                    "{command} {}: telemetry must not change a single byte",
                    kernel.name
                );
            }
        }
    }
    let err = off.metrics().expect_err("metrics op needs telemetry");
    assert!(err.contains("telemetry"), "got: {err}");
    let stats = off.stats().expect("stats works without telemetry");
    assert!(stats.get("metrics").is_none(), "no metrics doc when off");
    assert_eq!(
        stats.get("version").and_then(Value::as_str),
        Some(SERVICE_VERSION)
    );
    stop(&on_path, on_handle);
    stop(&off_path, off_handle);
}

/// Drift test (the `tests/diagnostic_codes.rs` pattern): every service
/// metric named in the sources must be declared in
/// `SERVICE_METRIC_NAMES`, and every declared metric must be documented
/// with a backticked entry in `docs/OBSERVABILITY.md`.
#[test]
fn every_service_metric_is_declared_and_documented() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    // Scan the syncopt sources for `"rpc.<...>"` string literals.
    let mut emitted = BTreeSet::new();
    let dir = root.join("crates/syncopt/src");
    let mut stack = vec![dir];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let text = std::fs::read_to_string(&path).unwrap();
                for (i, _) in text.match_indices("\"rpc.") {
                    // Take the base metric name only: stop at the first
                    // character outside [a-z_.] so labeled literals like
                    // "rpc.request_latency_us{op=\"check\"}" yield their
                    // family name rather than a label fragment.
                    let rest = &text[i + 1..];
                    let end = rest
                        .find(|c: char| !(c.is_ascii_lowercase() || c == '_' || c == '.'))
                        .unwrap_or(rest.len());
                    emitted.insert(rest[..end].to_string());
                }
            }
        }
    }
    assert!(
        emitted.contains("rpc.requests_total"),
        "scan looks broken: {emitted:?}"
    );
    for name in &emitted {
        assert!(
            SERVICE_METRIC_NAMES.contains(&name.as_str()),
            "`{name}` is emitted but missing from SERVICE_METRIC_NAMES"
        );
    }
    let docs = std::fs::read_to_string(root.join("docs/OBSERVABILITY.md")).unwrap();
    for name in SERVICE_METRIC_NAMES {
        assert!(
            docs.contains(&format!("`{name}`")),
            "`{name}` is declared but has no glossary entry in docs/OBSERVABILITY.md"
        );
        assert!(
            emitted.contains(*name),
            "`{name}` is declared in SERVICE_METRIC_NAMES but never used in the sources"
        );
    }
}
