//! Operational soundness of the computed delay sets: for each litmus
//! program, every weak-machine outcome admitted under the delay set must
//! be sequentially consistent — and where the paper says no delays are
//! needed, the empty set must suffice.

use syncopt::core::{analyze, DelaySet};
use syncopt::frontend::prepare_program;
use syncopt::ir::cfg::Cfg;
use syncopt::ir::lower::lower_main;
use syncopt::machine::litmus::{is_sc_preserving, sc_outcomes, weak_outcomes};

fn cfg_of(src: &str) -> Cfg {
    lower_main(&prepare_program(src).unwrap()).unwrap()
}

/// The programs of the paper's semantic figures plus classic litmuses.
const CASES: &[(&str, &str, u32)] = &[
    (
        "figure1",
        r#"
        shared int Data; shared int Flag;
        fn main() {
            int v; int w;
            if (MYPROC == 0) { Data = 1; Flag = 1; }
            else { v = Flag; w = Data; }
        }
        "#,
        2,
    ),
    (
        "dekker",
        r#"
        shared int X; shared int Y;
        fn main() {
            int v;
            if (MYPROC == 0) { X = 1; v = Y; }
            else { Y = 1; v = X; }
        }
        "#,
        2,
    ),
    (
        "figure5_postwait",
        r#"
        shared int X; shared int Y; flag F;
        fn main() {
            int v; int w;
            if (MYPROC == 0) { X = 1; Y = 2; post F; }
            else { wait F; v = Y; w = X; }
        }
        "#,
        2,
    ),
    (
        "barrier_exchange",
        r#"
        shared int A[2];
        fn main() {
            int v;
            A[MYPROC] = MYPROC + 10;
            barrier;
            v = A[(MYPROC + 1) % PROCS];
        }
        "#,
        2,
    ),
    (
        "iriw_like",
        r#"
        shared int X; shared int Y;
        fn main() {
            int v; int w;
            if (MYPROC == 0) { X = 1; }
            else if (MYPROC == 1) { Y = 1; }
            else if (MYPROC == 2) { v = X; w = Y; }
            else { v = Y; w = X; }
        }
        "#,
        4,
    ),
    (
        "message_chain_3proc",
        r#"
        shared int D; shared int F1; shared int F2;
        fn main() {
            int v; int w;
            if (MYPROC == 0) { D = 7; F1 = 1; }
            else if (MYPROC == 1) { v = F1; F2 = 1; }
            else { v = F2; w = D; }
        }
        "#,
        3,
    ),
];

/// More classic litmus shapes, all checked for SC preservation under the
/// computed delay sets.
const EXTRA_CASES: &[(&str, &str, u32)] = &[
    (
        "load_buffering",
        r#"
        shared int X; shared int Y;
        fn main() {
            int v;
            if (MYPROC == 0) { v = X; Y = 1; }
            else { v = Y; X = 1; }
        }
        "#,
        2,
    ),
    (
        "message_passing_with_two_flags",
        r#"
        shared int D1; shared int D2; shared int F;
        fn main() {
            int a; int b; int c;
            if (MYPROC == 0) { D1 = 1; D2 = 2; F = 1; }
            else { a = F; b = D2; c = D1; }
        }
        "#,
        2,
    ),
    (
        "write_chain_3proc",
        r#"
        shared int X;
        fn main() {
            int v;
            if (MYPROC == 0) { X = 1; }
            else if (MYPROC == 1) { v = X; X = 2; }
            else { v = X; }
        }
        "#,
        3,
    ),
    (
        "double_barrier_phases",
        r#"
        shared int A[3];
        fn main() {
            int v;
            A[MYPROC] = MYPROC + 1;
            barrier;
            v = A[(MYPROC + 1) % PROCS];
            barrier;
            A[MYPROC] = 0;
            work(v);
        }
        "#,
        3,
    ),
    (
        "post_chain",
        r#"
        shared int D; flag F1; flag F2;
        fn main() {
            int v;
            if (MYPROC == 0) { D = 5; post F1; }
            else if (MYPROC == 1) { wait F1; post F2; }
            else { wait F2; v = D; }
        }
        "#,
        3,
    ),
];

#[test]
fn extra_litmus_cases_preserve_sc() {
    for (name, src, procs) in EXTRA_CASES {
        let cfg = cfg_of(src);
        let analysis = analyze(&cfg);
        assert!(
            is_sc_preserving(&cfg, &analysis.delay_ss, *procs)
                .unwrap_or_else(|e| panic!("{name}: {e}")),
            "{name}: D_SS"
        );
        assert!(
            is_sc_preserving(&cfg, &analysis.delay_sync, *procs).unwrap(),
            "{name}: refined D"
        );
    }
}

#[test]
fn post_chain_transfers_the_value() {
    // The two-hop flag chain must force the final reader to see D = 5.
    let (_, src, procs) = EXTRA_CASES[4];
    let cfg = cfg_of(src);
    let analysis = analyze(&cfg);
    let weak = weak_outcomes(&cfg, &analysis.delay_sync, procs).unwrap();
    assert_eq!(weak.len(), 1, "{weak:?}");
    assert!(weak.contains(&vec![5]), "{weak:?}");
}

#[test]
fn double_barrier_pipeline_is_deterministic() {
    let (_, src, procs) = EXTRA_CASES[3];
    let cfg = cfg_of(src);
    let analysis = analyze(&cfg);
    let weak = weak_outcomes(&cfg, &analysis.delay_sync, procs).unwrap();
    // Each processor deterministically reads its neighbor's phase-1 value.
    assert_eq!(weak.len(), 1, "{weak:?}");
}

#[test]
fn computed_delay_sets_preserve_sc_on_all_cases() {
    for (name, src, procs) in CASES {
        let cfg = cfg_of(src);
        let analysis = analyze(&cfg);
        assert!(
            is_sc_preserving(&cfg, &analysis.delay_ss, *procs)
                .unwrap_or_else(|e| panic!("{name}: {e}")),
            "{name}: D_SS not SC-preserving"
        );
        assert!(
            is_sc_preserving(&cfg, &analysis.delay_sync, *procs).unwrap(),
            "{name}: refined D not SC-preserving"
        );
    }
}

#[test]
fn racy_cases_need_their_delays() {
    // figure1 and dekker genuinely require delays: the empty set violates.
    for (name, src, procs) in &CASES[..2] {
        let cfg = cfg_of(src);
        let empty = DelaySet::new(cfg.accesses.len());
        assert!(
            !is_sc_preserving(&cfg, &empty, *procs).unwrap(),
            "{name}: empty delay set should violate SC"
        );
    }
}

#[test]
fn synchronized_cases_need_only_sync_delays() {
    // figure5 and barrier_exchange are fully synchronized: the refined set
    // contains only pairs that involve a synchronization access.
    for (name, src, procs) in &CASES[2..4] {
        let cfg = cfg_of(src);
        let analysis = analyze(&cfg);
        for (u, v) in analysis.delay_sync.pairs() {
            let ku = cfg.accesses.info(u).kind;
            let kv = cfg.accesses.info(v).kind;
            assert!(
                ku.is_sync() || kv.is_sync(),
                "{name}: data-data delay ({ku:?}, {kv:?}) survived refinement"
            );
        }
        assert!(is_sc_preserving(&cfg, &analysis.delay_sync, *procs).unwrap());
    }
}

#[test]
fn figure1_delays_are_individually_necessary() {
    // Minimality in the Shasha–Snir sense: dropping either of the two
    // delay pairs re-admits a non-SC outcome.
    let (_, src, procs) = &CASES[0];
    let cfg = cfg_of(src);
    let analysis = analyze(&cfg);
    let pairs = analysis.delay_sync.pairs();
    assert_eq!(pairs.len(), 2);
    for skip in 0..pairs.len() {
        let mut weakened = DelaySet::new(cfg.accesses.len());
        for (i, (u, v)) in pairs.iter().enumerate() {
            if i != skip {
                weakened.insert(*u, *v);
            }
        }
        assert!(
            !is_sc_preserving(&cfg, &weakened, *procs).unwrap(),
            "dropping pair {skip} should break SC"
        );
    }
}

#[test]
fn weak_outcomes_shrink_as_delays_grow() {
    for (name, src, procs) in CASES {
        let cfg = cfg_of(src);
        let analysis = analyze(&cfg);
        let empty = DelaySet::new(cfg.accesses.len());
        let all = weak_outcomes(&cfg, &empty, *procs).unwrap();
        let with_sync = weak_outcomes(&cfg, &analysis.delay_sync, *procs).unwrap();
        let with_ss = weak_outcomes(&cfg, &analysis.delay_ss, *procs).unwrap();
        assert!(
            with_ss.is_subset(&with_sync) || with_ss == with_sync,
            "{name}: D_SS admits outcomes the refined set forbids?"
        );
        assert!(
            with_sync.is_subset(&all),
            "{name}: delays must only remove behaviors"
        );
        // SC outcomes are always weakly reachable (delays never kill legal
        // behavior entirely).
        let sc = sc_outcomes(&cfg, *procs).unwrap();
        assert!(
            sc.is_subset(&all),
            "{name}: SC outcomes must be weakly reachable with no delays"
        );
    }
}
