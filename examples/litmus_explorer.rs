//! Litmus exploration: see exactly which weak-memory outcomes a delay set
//! admits, the way Figure 1 of the paper motivates cycle detection.
//!
//! We take the store-buffer (Dekker) litmus and progressively strengthen
//! the enforcement: no delays, then just one of the two needed delays,
//! then the full Shasha–Snir set — watching the non-SC outcome disappear.
//!
//! Run with: `cargo run --example litmus_explorer`

use syncopt::core::{analyze, DelaySet};
use syncopt::frontend::prepare_program;
use syncopt::ir::lower::lower_main;
use syncopt::machine::litmus::{sc_outcomes, weak_outcomes};

const SRC: &str = r#"
    shared int X; shared int Y;
    fn main() {
        int v;
        if (MYPROC == 0) { X = 1; v = Y; }
        else { Y = 1; v = X; }
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = lower_main(&prepare_program(SRC)?)?;
    let analysis = analyze(&cfg);

    let sc = sc_outcomes(&cfg, 2)?;
    println!("SC outcomes (read Y, read X): {sc:?}");
    println!("  — [0, 0] is impossible under SC: someone wrote first.\n");

    let none = DelaySet::new(cfg.accesses.len());
    println!(
        "weak outcomes, no delays:      {:?}",
        weak_outcomes(&cfg, &none, 2)?
    );

    // Enforce only processor 0's write→read order.
    let mut half = DelaySet::new(cfg.accesses.len());
    let pairs = analysis.delay_ss.pairs();
    half.insert(pairs[0].0, pairs[0].1);
    println!(
        "weak outcomes, half enforced:  {:?}",
        weak_outcomes(&cfg, &half, 2)?
    );

    println!(
        "weak outcomes, full D_SS:      {:?}",
        weak_outcomes(&cfg, &analysis.delay_ss, 2)?
    );

    let ok = weak_outcomes(&cfg, &analysis.delay_ss, 2)?.is_subset(&sc);
    println!("\nD_SS preserves sequential consistency: {ok}");
    Ok(())
}
