//! Code-generation walkthrough (§6, Figure 8 flavor): shows the CFG before
//! and after split-phase conversion, sync motion, and one-way conversion.
//!
//! The program pulls a remote value, does unrelated work, publishes a
//! result to the neighbor, and meets a barrier. Watch the `sync_ctr` ride
//! away from its `get_ctr`, duplicate across the conditional, and the
//! `put_ctr` become a `store` at the barrier.
//!
//! Run with: `cargo run --example codegen_walkthrough`

use syncopt::ir::print::cfg_to_string;
use syncopt::{OptLevel, Syncopt, SyncoptError};

const SRC: &str = r#"
    shared double A[64]; shared double B[64];
    fn main() {
        double x;
        x = A[MYPROC + 1];      // remote pull
        work(500);              // overlap candidate
        if (MYPROC % 2 == 0) {
            work(100);          // the conditional from Figure 8
        }
        B[MYPROC + 1] = x * 2.0; // remote publish
        work(200);
        barrier;                 // completion point for the publish
        double y;
        y = B[MYPROC];
        if (y > 0.0) { work(10); }
    }
"#;

fn main() -> Result<(), SyncoptError> {
    let blocking = Syncopt::new(SRC)
        .procs(8)
        .level(OptLevel::Blocking)
        .compile()?;
    println!("==== source CFG (blocking accesses) ====\n");
    println!("{}", cfg_to_string(&blocking.source_cfg));

    let optimized = Syncopt::new(SRC)
        .procs(8)
        .level(OptLevel::OneWay)
        .compile()?;
    println!("==== optimized CFG (split-phase, one-way) ====\n");
    println!("{}", cfg_to_string(&optimized.optimized.cfg));

    println!(
        "==== optimizer statistics ====\n{:#?}",
        optimized.optimized.stats
    );

    // And the payoff, measured:
    let config = syncopt::machine::MachineConfig::cm5(8);
    let base = Syncopt::new(SRC).level(OptLevel::Blocking).run(&config)?;
    let fast = Syncopt::new(SRC).level(OptLevel::OneWay).run(&config)?;
    println!(
        "\nblocking: {} cycles   optimized: {} cycles   ({:.1}% faster)",
        base.sim.exec_cycles,
        fast.sim.exec_cycles,
        100.0 * (base.sim.exec_cycles - fast.sim.exec_cycles) as f64 / base.sim.exec_cycles as f64
    );
    Ok(())
}
