//! Walkthrough of the paper's §5.1 example (Figure 5): how post-wait
//! synchronization analysis removes spurious delay edges.
//!
//! The producer writes `X` and `Y` and posts `F`; the consumer waits on
//! `F` and reads `Y` then `X`. Shasha–Snir alone finds cycles between the
//! data accesses and forces each write (and read) to complete before the
//! next — serializing the communication. The synchronization analysis
//! derives the precedence relation `R` through the post→wait edge and
//! shows only the delays *against the synchronization operations* are
//! needed.
//!
//! Run with: `cargo run --example postwait_analysis`

use syncopt::core::{analyze, DelaySet};
use syncopt::frontend::prepare_program;
use syncopt::ir::access::AccessKind;
use syncopt::ir::cfg::Cfg;
use syncopt::ir::lower::lower_main;

const SRC: &str = r#"
    shared int X; shared int Y; flag F;
    fn main() {
        int v; int w;
        if (MYPROC == 0) {
            X = 1;      // a1
            Y = 2;      // a2
            post F;     // a3
        } else {
            wait F;     // a4
            v = Y;      // a5
            w = X;      // a6
        }
    }
"#;

fn label(cfg: &Cfg, a: syncopt::ir::ids::AccessId) -> String {
    let info = cfg.accesses.info(a);
    let var = info
        .var
        .map(|v| cfg.vars.info(v).name.clone())
        .unwrap_or_default();
    format!("{a}:{:?} {var}", info.kind)
}

fn print_delays(cfg: &Cfg, title: &str, d: &DelaySet) {
    println!("{title} ({} pairs):", d.len());
    for (u, v) in d.pairs() {
        println!("  {}  →  {}", label(cfg, u), label(cfg, v));
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = lower_main(&prepare_program(SRC)?)?;
    let analysis = analyze(&cfg);

    print_delays(&cfg, "Shasha–Snir delay set D_SS", &analysis.delay_ss);
    print_delays(
        &cfg,
        "initial sync delay set D1 (step 2)",
        &analysis.sync.d1,
    );

    println!(
        "precedence relation R (step 3+4, {} pairs):",
        analysis.sync.precedence.len()
    );
    for (a, b) in analysis.sync.precedence.pairs() {
        println!("  {}  happens-before  {}", label(&cfg, a), label(&cfg, b));
    }
    println!();

    print_delays(&cfg, "refined delay set D (step 6)", &analysis.delay_sync);

    // The paper's claim, mechanically checked:
    let writes: Vec<_> = cfg
        .accesses
        .iter()
        .filter(|(_, i)| i.kind == AccessKind::Write)
        .map(|(id, _)| id)
        .collect();
    let gone = !analysis.delay_sync.contains(writes[0], writes[1]);
    println!(
        "producer writes may pipeline: {} (they could not under D_SS: {})",
        gone,
        analysis.delay_ss.contains(writes[0], writes[1]),
    );
    Ok(())
}
