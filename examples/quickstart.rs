//! Quickstart: compile and run the paper's Figure 1 program.
//!
//! The producer writes `Data` then `Flag`; the consumer reads `Flag` then
//! `Data`. This is the canonical sequential-consistency figure-eight: both
//! program edges need delay constraints. We compute the delay sets, show
//! them, and execute the program on a simulated CM-5.
//!
//! Run with: `cargo run --example quickstart`

use syncopt::machine::MachineConfig;
use syncopt::{OptLevel, Syncopt, SyncoptError};

const SRC: &str = r#"
    shared int Data; shared int Flag;
    fn main() {
        int v; int w;
        if (MYPROC == 0) {
            Data = 1;
            Flag = 1;
        } else {
            v = Flag;
            w = Data;
        }
    }
"#;

fn main() -> Result<(), SyncoptError> {
    // 1. Compile: parse → type check → lower → analyze → optimize.
    let pipeline = Syncopt::new(SRC).procs(2).level(OptLevel::Pipelined);
    let compiled = pipeline.compile()?;
    let stats = compiled.analysis.stats();
    println!("access sites:        {}", stats.accesses);
    println!("conflicting pairs:   {}", stats.conflict_pairs);
    println!("Shasha-Snir delays:  {}", stats.delay_ss);
    println!("refined delays:      {}", stats.delay_sync);
    println!();
    println!("delay pairs (refined):");
    for (u, v) in compiled.analysis.delay_sync.pairs() {
        let iu = compiled.source_cfg.accesses.info(u);
        let iv = compiled.source_cfg.accesses.info(v);
        let name = |i: &syncopt::ir::access::AccessInfo| {
            let var = i
                .var
                .map(|v| compiled.source_cfg.vars.info(v).name.clone())
                .unwrap_or_default();
            format!("{:?} {var}", i.kind)
        };
        println!("  {} must complete before {}", name(iu), name(iv));
    }

    // 2. Run on a 2-processor CM-5 (same configured pipeline).
    let result = pipeline.run(&MachineConfig::cm5(2))?;
    println!();
    println!("execution:           {} cycles", result.sim.exec_cycles);
    println!("messages on wire:    {}", result.sim.net.total_messages());
    println!("final shared memory:");
    for (var, vals) in &result.sim.memory {
        println!(
            "  {} = {:?}",
            result.compiled.source_cfg.vars.info(*var).name,
            vals
        );
    }
    Ok(())
}
