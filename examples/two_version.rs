//! The paper's §5.2 two-version compilation, end to end.
//!
//! Barrier alignment is undecidable, so the compiler emits an *optimistic*
//! version (barriers assumed aligned) guarded by a runtime check, plus a
//! conservative fallback. This example runs one program where the check
//! passes and one where it fails, showing the machinery select the right
//! version — and what the optimistic assumption is worth.
//!
//! Run with: `cargo run --example two_version`

use syncopt::machine::MachineConfig;
use syncopt::{DelayChoice, OptLevel, Syncopt, SyncoptError, VersionUsed};

const ALIGNED: &str = r#"
    shared double G[64];
    fn main() {
        int t;
        double l0; double l1; double l2;
        for (t = 0; t < 4; t = t + 1) {
            l0 = 0.0; l1 = 0.0; l2 = 0.0;
            if (MYPROC > 0) {
                l0 = G[MYPROC * 8 - 1];
                l1 = G[MYPROC * 8 - 2];
                l2 = G[MYPROC * 8 - 3];
            }
            work(400);
            barrier;
            // Phase 2: write the edge cells the right neighbor reads in
            // the next iteration's phase 1.
            G[MYPROC * 8 + 7] = (l0 + l1) * 0.3;
            G[MYPROC * 8 + 6] = (l1 + l2) * 0.3;
            G[MYPROC * 8 + 5] = l2 * 0.3;
            barrier;
        }
    }
"#;

// Same barrier COUNT everywhere, but different sites per branch: the
// static analysis cannot align them and the dynamic check refuses them.
const MISALIGNED: &str = r#"
    shared int X;
    fn main() {
        int v;
        if (MYPROC == 0) {
            X = 1;
            barrier;
            work(10);
            barrier;
        } else {
            barrier;
            barrier;
            v = X;
            work(v);
        }
    }
"#;

fn main() -> Result<(), SyncoptError> {
    let config = MachineConfig::cm5(8);

    let r = Syncopt::new(ALIGNED)
        .level(OptLevel::OneWay)
        .run_two_version(&config)?;
    println!("aligned stencil:");
    println!("  version used:   {:?}", r.used);
    println!("  execution:      {} cycles", r.sim.exec_cycles);
    assert_eq!(r.used, VersionUsed::Optimized);

    // What did optimism buy? Compare with a barrier-blind compilation.
    let blind = Syncopt::new(ALIGNED)
        .level(OptLevel::Pipelined)
        .delay(DelayChoice::ShashaSnir)
        .run(&config)?;
    println!(
        "  vs Shasha-Snir: {} cycles ({:.1}% saved)\n",
        blind.sim.exec_cycles,
        100.0 * (blind.sim.exec_cycles.saturating_sub(r.sim.exec_cycles)) as f64
            / blind.sim.exec_cycles as f64
    );

    let config2 = MachineConfig::cm5(2);
    let r = Syncopt::new(MISALIGNED)
        .level(OptLevel::OneWay)
        .run_two_version(&config2)?;
    println!("misaligned branches:");
    println!("  version used:   {:?}", r.used);
    println!("  execution:      {} cycles", r.sim.exec_cycles);
    assert_eq!(r.used, VersionUsed::Conservative);
    if let Some(reason) = &r.fallback {
        println!("  fallback cause: {reason}");
    }
    Ok(())
}
