//! End-to-end kernel demo: the Cholesky evaluation kernel (§8) at its
//! three optimization levels on a simulated CM-5, plus the analysis
//! numbers behind the speedup.
//!
//! Run with: `cargo run --example cholesky_pipeline`

use syncopt::kernels::{cholesky, KernelParams};
use syncopt::machine::MachineConfig;
use syncopt::{DelayChoice, OptLevel, Syncopt, SyncoptError};

fn main() -> Result<(), SyncoptError> {
    let procs = 16;
    let kernel = cholesky::generate(&KernelParams::evaluation(procs));
    println!("generated kernel ({} processors):\n", procs);
    println!("{}", kernel.source);

    let config = MachineConfig::cm5(procs);
    let configs = [
        ("blocking", OptLevel::Blocking, DelayChoice::SyncRefined),
        (
            "unoptimized (D_SS)",
            OptLevel::Pipelined,
            DelayChoice::ShashaSnir,
        ),
        ("pipelined", OptLevel::Pipelined, DelayChoice::SyncRefined),
        ("one-way", OptLevel::OneWay, DelayChoice::SyncRefined),
        ("full (elim)", OptLevel::Full, DelayChoice::SyncRefined),
    ];
    let mut first = None;
    for (name, level, choice) in configs {
        let r = Syncopt::new(&kernel.source)
            .level(level)
            .delay(choice)
            .run(&config)?;
        let base = *first.get_or_insert(r.sim.exec_cycles);
        println!(
            "{name:>20}: {:>9} cycles  (norm {:.3})  msgs {:>5}  sync-stall {:>8}",
            r.sim.exec_cycles,
            r.sim.exec_cycles as f64 / base as f64,
            r.sim.net.total_messages(),
            r.sim.stalls.sync,
        );
        if name == "pipelined" {
            let s = r.compiled.analysis.stats();
            println!(
                "{:>20}  |D_SS| = {}, |D| = {}, |R| = {}",
                "", s.delay_ss, s.delay_sync, s.precedence_pairs
            );
        }
    }
    Ok(())
}
